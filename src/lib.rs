//! # TOB-SVD — Total-Order Broadcast with Single-Vote Decisions in the Sleepy Model
//!
//! Facade crate for the full reproduction of the paper
//! *TOB-SVD: Total-Order Broadcast with Single-Vote Decisions in the
//! Sleepy Model* (D'Amato, Saltini, Tran, Zanolini — ICDCS 2025,
//! arXiv:2310.11331).
//!
//! The repository is a Cargo workspace; this crate re-exports every member
//! under a stable module path so downstream users can depend on a single
//! crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `tobsvd-types` | time, logs, blocks, views, messages, wire codec |
//! | [`crypto`] | `tobsvd-crypto` | SHA-256, simulated signatures, hash VRF |
//! | [`sim`] | `tobsvd-sim` | discrete-event sleepy-model simulator |
//! | [`ga`] | `tobsvd-ga` | Graded Agreement primitives (Figures 1–2, §4) |
//! | [`protocol`] | `tobsvd-core` | the TOB-SVD protocol (Figure 4) |
//! | [`adversary`] | `tobsvd-adversary` | Byzantine strategies and churn generators |
//! | [`baselines`] | `tobsvd-baselines` | Table 1 comparison protocols |
//! | [`analysis`] | `tobsvd-analysis` | statistics and table rendering |
//! | [`runtime`] | `tobsvd-runtime` | real TCP multi-node deployment |
//! | [`finality`] | `tobsvd-finality` | ebb-and-flow finality gadget (paper intro) |
//! | [`storage`] | `tobsvd-storage` | durable WAL + snapshot checkpoints + crash recovery |
//! | [`sweep`] | `tobsvd-sweep` | declarative scenario matrices + parallel sweep runner |
//! | [`check`] | `tobsvd-check` | randomized schedule-exploration model checker + shrinker |
//! | [`audit`] | `tobsvd-audit` | determinism & panic-safety lint pass over the workspace itself |
//!
//! # Quickstart
//!
//! Run a fault-free 8-validator network for 12 views and read back the
//! decided log:
//!
//! ```
//! use tob_svd::protocol::TobSimulationBuilder;
//!
//! let report = TobSimulationBuilder::new(8)
//!     .views(12)
//!     .seed(7)
//!     .run()
//!     .expect("simulation runs");
//! assert!(report.max_decided_len() > 1);
//! report.assert_safety();
//! ```

#![forbid(unsafe_code)]

pub use tobsvd_adversary as adversary;
pub use tobsvd_analysis as analysis;
pub use tobsvd_audit as audit;
pub use tobsvd_baselines as baselines;
pub use tobsvd_check as check;
pub use tobsvd_core as protocol;
pub use tobsvd_crypto as crypto;
pub use tobsvd_finality as finality;
pub use tobsvd_ga as ga;
#[cfg(feature = "runtime")]
pub use tobsvd_runtime as runtime;
pub use tobsvd_sim as sim;
pub use tobsvd_storage as storage;
pub use tobsvd_sweep as sweep;
pub use tobsvd_types as types;
