//! Crypto-operation budget regression for the verification fast path.
//!
//! The receive pipeline is dedup-before-verify: per validator, a
//! verified-id set (seeded only post-verify) lets duplicate copies of a
//! broadcast skip signature checking entirely, sender keys come from a
//! process-wide cache instead of per-delivery derivation, and VRF checks
//! memoize per `(sender, view)`. This suite pins the resulting budget on
//! a fault-free 50-view n=8 run:
//!
//! * **≤ 1 signature verification per unique message id per validator**
//!   (exactly 1 in a fault-free run — no forged frames to reject);
//! * **`sig_verify_skips` tiles the duplicate deliveries**: together the
//!   two counters account for every delivered copy, so no delivery can
//!   dodge the accounting (or sneak in an unverified processing path);
//! * VRF verifications stay within one per `(sender, view)` pair per
//!   validator, with the memo absorbing proposal duplicates.
//!
//! A regression that re-verifies per delivery fails the first bound by
//! an order of magnitude (gossip fan-out makes duplicates dominate);
//! a regression that skips verification of *fresh* ids breaks the
//! tiling.

use tob_svd::protocol::{TobSimulationBuilder, TxWorkload};

const N: usize = 8;
const VIEWS: u64 = 50;

#[test]
fn one_signature_verify_per_unique_message_per_validator() {
    // Per-vote baseline: this test pins the dedup-before-verify budget
    // under the paper's gossip echo, where duplicate copies dominate.
    // (The aggregation plane removes the echo — and with it the
    // duplicates — which `certificate_counters_tile_under_churn` below
    // covers.)
    let report = TobSimulationBuilder::new(N)
        .views(VIEWS)
        .seed(5)
        .certificates(false)
        .workload(TxWorkload::PerView { count: 4, size: 128 })
        .run()
        .expect("fault-free run");
    report.assert_safety();
    let m = &report.report.metrics;
    assert!(report.decided_blocks() >= VIEWS - 2, "fault-free run decides nearly every view");

    // Per validator: verifications = unique verified ids (≤ 1 each),
    // and the fast path actually fired (there are duplicates to skip).
    for stats in report.validators.iter().flatten() {
        let c = &stats.crypto;
        assert_eq!(
            c.sig_verifies, c.verified_ids as u64,
            "{}: one verification per unique message id",
            stats.validator
        );
        assert_eq!(
            c.verified_ids, c.unique_messages_seen,
            "{}: the verified-id set and gossip's seen set cover the same ids \
             (fetch-plane ids are retained by neither)",
            stats.validator
        );
        assert!(
            c.sig_verify_skips > c.sig_verifies,
            "{}: duplicates must dominate under gossip fan-out \
             ({} skips vs {} verifies)",
            stats.validator,
            c.sig_verify_skips,
            c.sig_verifies
        );
        // VRF budget: at most one verification per proposing sender per
        // live view (views + warm-up slack).
        assert!(
            c.vrf_verifies <= (N as u64) * (VIEWS + 2),
            "{}: VRF verifies {} exceed the (sender, view) budget",
            stats.validator,
            c.vrf_verifies
        );
    }

    // Aggregate tiling: every delivered copy was either verified or
    // skipped — the two counters partition the deliveries exactly
    // (always-awake run: no buffered copies counted at a later wake).
    assert_eq!(
        m.sig_verifies + m.sig_verify_skips,
        m.deliveries,
        "sig_verifies + sig_verify_skips must tile deliveries"
    );

    // Aggregate = sum of per-validator counters (the engine's Context
    // plumbing loses nothing).
    let per_validator_verifies: u64 = report
        .validators
        .iter()
        .flatten()
        .map(|s| s.crypto.sig_verifies)
        .sum();
    let per_validator_skips: u64 = report
        .validators
        .iter()
        .flatten()
        .map(|s| s.crypto.sig_verify_skips)
        .sum();
    assert_eq!(m.sig_verifies, per_validator_verifies);
    assert_eq!(m.sig_verify_skips, per_validator_skips);

    // The saving is real: with n=8 gossip fan-out, duplicate copies are
    // the overwhelming majority of deliveries.
    let skip_fraction = m.sig_verify_skips as f64 / m.deliveries as f64;
    assert!(
        skip_fraction >= 0.7,
        "expected ≥70% of deliveries to skip crypto, got {:.1}%",
        skip_fraction * 100.0
    );
}

/// The budget holds under churn too — waking validators receive bursts
/// of buffered duplicates, which must all hit the skip path (buffered
/// copies were counted as deliveries when they arrived, so exact tiling
/// is not required here; the per-validator unique-id bound is). This
/// scenario uses buffered sleep semantics, so it produces no fetch
/// traffic — asserted below, because fetch frames verify without being
/// retained and would legitimately break the strict equality.
#[test]
fn budget_holds_with_sleep_churn() {
    use tob_svd::sim::ParticipationSchedule;
    use tob_svd::types::{Time, ValidatorId};

    let delta = 8u64;
    let mut part = ParticipationSchedule::always_awake(N);
    // Two sleepers with staggered naps.
    part.set_intervals(
        ValidatorId::new(2),
        vec![(Time::ZERO, Time::new(40 * delta)), (Time::new(60 * delta), Time::new(100_000))],
    );
    part.set_intervals(
        ValidatorId::new(5),
        vec![(Time::ZERO, Time::new(80 * delta)), (Time::new(110 * delta), Time::new(100_000))],
    );
    let report = TobSimulationBuilder::new(N)
        .views(VIEWS)
        .seed(9)
        .participation(part)
        .run()
        .expect("churn run");
    report.assert_safety();
    // Precondition for the strict equality below: no fetch-plane frames
    // (those verify with retain=false and would put sig_verifies above
    // verified_ids by exactly their count — correct, but not what this
    // scenario is calibrated to measure).
    assert_eq!(report.report.metrics.block_request_broadcasts, 0, "buffered churn needs no fetches");
    assert_eq!(report.report.metrics.block_response_broadcasts, 0);
    for stats in report.validators.iter().flatten() {
        let c = &stats.crypto;
        assert_eq!(
            c.sig_verifies, c.verified_ids as u64,
            "{}: one verification per unique message id even across naps",
            stats.validator
        );
    }
}

/// Certificate-era churn: with the aggregation plane on (the default)
/// and validators sleeping mid-view while certificates are in flight,
/// the engine-level aggregates must still equal the per-validator sums
/// — no counter tick may be lost when a context is applied for a
/// validator that naps right after, and no certificate broadcast may be
/// double-counted across the sleep boundary.
#[test]
fn certificate_counters_tile_under_churn() {
    use tob_svd::sim::ParticipationSchedule;
    use tob_svd::types::{Time, ValidatorId};

    let delta = 8u64;
    let mut part = ParticipationSchedule::always_awake(N);
    // Nap boundaries deliberately *inside* views (not on view starts),
    // so certificates assembled at phase boundaries are in flight to
    // validators that sleep before the next boundary.
    part.set_intervals(
        ValidatorId::new(1),
        vec![(Time::ZERO, Time::new(30 * delta + 3)), (Time::new(70 * delta + 5), Time::new(100_000))],
    );
    part.set_intervals(
        ValidatorId::new(6),
        vec![(Time::ZERO, Time::new(90 * delta + 2)), (Time::new(130 * delta + 1), Time::new(100_000))],
    );
    let report = TobSimulationBuilder::new(N)
        .views(VIEWS)
        .seed(11)
        .participation(part)
        .run()
        .expect("churn run");
    report.assert_safety();
    let m = &report.report.metrics;

    // Certificates were genuinely in flight.
    assert!(m.certificate_broadcasts > 0, "aggregation plane must be active");
    assert!(m.certificate_bytes > 0, "certificate deliveries must be byte-accounted");
    assert!(m.agg_verify_skips > 0, "subset-skip fast path must fire");

    // Engine aggregates = per-validator sums, for every counter the
    // aggregation plane touches.
    let sum =
        |f: fn(&tob_svd::protocol::CryptoStats) -> u64| -> u64 {
            report.validators.iter().flatten().map(|s| f(&s.crypto)).sum()
        };
    assert_eq!(m.agg_verifies, sum(|c| c.agg_verifies), "agg_verifies must tile");
    assert_eq!(m.agg_verify_skips, sum(|c| c.agg_verify_skips), "agg_verify_skips must tile");
    assert_eq!(m.sig_verifies, sum(|c| c.sig_verifies), "sig_verifies must tile");
    assert_eq!(m.sig_verify_skips, sum(|c| c.sig_verify_skips), "sig_verify_skips must tile");
    assert_eq!(
        m.certificate_broadcasts,
        sum(|c| c.certificates_emitted),
        "every certificate broadcast is one validator's emission, counted once"
    );
}
