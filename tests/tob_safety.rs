//! Safety (Theorem 4) under every adversary in the toolkit, at the
//! corruption bound of the (5Δ, 2Δ, ½)-sleepy model.
//!
//! "If two honest validators deliver logs Λ₁ and Λ₂, then Λ₁ and Λ₂ are
//! compatible." The engine's `DecisionObserver` checks this online for
//! every decision of every honest validator; `assert_safety` fails the
//! test on the first conflicting pair.

use proptest::prelude::*;
use tob_svd::adversary::{LateVoter, SilentNode, SplitBrainNode, SplitDelay};
use tob_svd::protocol::{TobConfig, TobSimulationBuilder, TxWorkload};
use tob_svd::sim::{DelayPolicy, UniformDelay, WorstCaseDelay};
use tob_svd::types::ValidatorId;

fn halves(n: usize) -> (Vec<ValidatorId>, Vec<ValidatorId>) {
    (
        ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect(),
        ValidatorId::all(n).filter(|v| v.index() % 2 == 1).collect(),
    )
}

/// Builds a run with `byz` Byzantine validators of the given strategy mix.
fn run_with_adversary(
    n: usize,
    byz: usize,
    strategy: &str,
    seed: u64,
    delay: Box<dyn DelayPolicy>,
    views: u64,
) -> tob_svd::protocol::TobReport {
    let (ha, hb) = halves(n);
    let mut builder = TobSimulationBuilder::new(n)
        .views(views)
        .seed(seed)
        .workload(TxWorkload::PerView { count: 1, size: 32 })
        .delay(delay);
    for (k, v) in ValidatorId::all(n).skip(n - byz).enumerate() {
        let cfg = TobConfig::new(n);
        let (a, b) = (ha.clone(), hb.clone());
        let strategy = match strategy {
            "mixed" => ["split", "silent", "late"][k % 3],
            s => s,
        };
        builder = match strategy {
            "split" => builder.byzantine(
                v,
                Box::new(move |store| Box::new(SplitBrainNode::new(v, cfg, store, a, b))),
            ),
            "silent" => builder.byzantine(v, Box::new(|_| Box::new(SilentNode))),
            "late" => builder.byzantine(
                v,
                Box::new(move |store| Box::new(LateVoter::new(v, cfg, store))),
            ),
            other => unreachable!("unknown strategy {other}"),
        };
    }
    builder.run().expect("valid configuration")
}

#[test]
fn safety_under_split_brain_at_the_bound() {
    for (n, seed) in [(5usize, 1u64), (7, 2), (9, 3), (9, 4)] {
        let byz = (n - 1) / 2;
        let report = run_with_adversary(n, byz, "split", seed, Box::new(WorstCaseDelay), 30);
        report.assert_safety();
        assert!(
            report.decided_blocks() > 0,
            "n={n}: liveness must survive the split-brain adversary"
        );
    }
}

#[test]
fn safety_under_silent_omission() {
    let report = run_with_adversary(9, 4, "silent", 5, Box::new(UniformDelay), 20);
    report.assert_safety();
    // Omission-only adversaries cannot even slow the chain: all honest
    // proposals reach all honest voters, so every view decides.
    assert!(
        report.decided_blocks() >= report.views - 1,
        "omission faults must not affect per-view decisions: {} of {}",
        report.decided_blocks(),
        report.views
    );
}

#[test]
fn safety_under_late_voters() {
    let report = run_with_adversary(7, 3, "late", 6, Box::new(WorstCaseDelay), 25);
    report.assert_safety();
    assert!(report.decided_blocks() > 0);
}

#[test]
fn safety_under_mixed_strategies() {
    let report = run_with_adversary(9, 4, "mixed", 7, Box::new(UniformDelay), 25);
    report.assert_safety();
    assert!(report.decided_blocks() > 0);
}

#[test]
fn safety_with_adversarial_network_split() {
    // The delay adversary keeps even validators a full Δ ahead of odd
    // ones while split-brain equivocators work on top.
    let n = 9;
    let fast: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect();
    let report = run_with_adversary(
        n,
        4,
        "split",
        8,
        Box::new(SplitDelay::new(fast)),
        30,
    );
    report.assert_safety();
    assert!(report.decided_blocks() > 0);
}

#[test]
fn per_validator_decisions_are_monotone_prefixes() {
    let report = run_with_adversary(7, 3, "split", 9, Box::new(WorstCaseDelay), 20);
    report.assert_safety();
    // Every validator's final decided log is a prefix of the longest.
    let longest = report.report.longest_decided.expect("some decision");
    for rec in &report.report.latest_decisions {
        assert!(
            rec.log.is_prefix_of(&longest, &report.store)
                || longest.is_prefix_of(&rec.log, &report.store),
            "{}'s decision {} incompatible with longest {}",
            rec.validator,
            rec.log,
            longest
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Randomized safety sweep: any byzantine count up to the bound, any
    /// strategy mix, any delay policy, any seed — no conflicting
    /// decisions, ever.
    #[test]
    fn randomized_safety_sweep(
        n in 4usize..10,
        byz_frac in 0.0f64..1.0,
        strategy in prop_oneof![Just("split"), Just("silent"), Just("late"), Just("mixed")],
        delay_sel in 0u8..3,
        seed in any::<u64>(),
    ) {
        let max_byz = (n - 1) / 2;
        let byz = ((byz_frac * (max_byz + 1) as f64) as usize).min(max_byz);
        let delay: Box<dyn DelayPolicy> = match delay_sel {
            0 => Box::new(UniformDelay),
            1 => Box::new(WorstCaseDelay),
            _ => Box::new(SplitDelay::new(
                ValidatorId::all(n).filter(|v| v.index() < n / 2),
            )),
        };
        let report = run_with_adversary(n, byz, strategy, seed, delay, 12);
        prop_assert!(report.report.safe, "violations: {:?}", report.report.violations);
    }
}
