//! Threshold tightness: the protocol's guarantees at, below and above
//! the ½ corruption bound of the (T_b, T_s, ½)-sleepy model.

use tob_svd::adversary::{GaEquivocator, SplitBrainNode};
use tob_svd::ga::{GaHarness, GaKind};
use tob_svd::protocol::{TobConfig, TobSimulationBuilder, TxWorkload};
use tob_svd::sim::compliance::{check, SleepyParams};
use tob_svd::sim::{CorruptionSchedule, ParticipationSchedule, SimConfig, WorstCaseDelay};
use tob_svd::types::{Delta, InstanceId, Log, Time, ValidatorId, View};

/// f = ⌊(n−1)/2⌋ is compliant with everyone awake; f = ⌈n/2⌉ is not.
#[test]
fn compliance_boundary() {
    let delta = Delta::default();
    let params = SleepyParams::half(5 * delta.ticks(), 2 * delta.ticks());
    for n in 3usize..12 {
        let part = ParticipationSchedule::always_awake(n);
        let ok_f = (n - 1) / 2;
        let corr = CorruptionSchedule::from_genesis(
            ValidatorId::all(n).skip(n - ok_f),
        );
        assert!(
            check(&part, &corr, params, Time::new(300)).is_none(),
            "n={n}, f={ok_f} must be compliant"
        );
        let bad_f = n / 2 + (n % 2); // ⌈n/2⌉
        let corr = CorruptionSchedule::from_genesis(
            ValidatorId::all(n).skip(n - bad_f),
        );
        assert!(
            check(&part, &corr, params, Time::new(300)).is_some(),
            "n={n}, f={bad_f} must violate Condition (1)"
        );
    }
}

/// Below the bound: Validity holds — unanimous honest inputs always
/// come out, whatever one under-threshold Byzantine coalition votes.
#[test]
fn validity_below_threshold() {
    for n in [4usize, 6, 8] {
        let f = (n - 1) / 2;
        let cfg = SimConfig::new(n).with_seed(n as u64);
        let mut h = GaHarness::new(cfg, GaKind::Three);
        let store = h.store().clone();
        let base = Log::genesis(&store).extend_empty(&store, ValidatorId::new(90), View::new(1));
        let conflicting =
            Log::genesis(&store).extend_empty(&store, ValidatorId::new(91), View::new(1));
        let all: Vec<ValidatorId> = ValidatorId::all(n).collect();
        for v in ValidatorId::all(n) {
            if v.index() >= n - f {
                h.byzantine(
                    v,
                    Box::new(GaEquivocator::new(
                        v,
                        InstanceId(0),
                        Time::ZERO,
                        conflicting,
                        all.clone(),
                        conflicting,
                        Vec::new(),
                    )),
                );
            } else {
                h.input(v, base);
            }
        }
        let result = h.run();
        for i in 0..n - f {
            for g in 0..3u8 {
                assert_eq!(
                    result.outputs[i][g as usize],
                    Some(base),
                    "n={n}, f={f}: honest v{i} must output the base at grade {g}"
                );
            }
        }
    }
}

/// At the bound (f = h): Validity dies — the unanimous honest branch is
/// vetoed and only the genesis prefix survives.
#[test]
fn validity_dies_at_f_equals_h() {
    let n = 6;
    let f = 3;
    let cfg = SimConfig::new(n).with_seed(9);
    let mut h = GaHarness::new(cfg, GaKind::Three);
    let store = h.store().clone();
    let base = Log::genesis(&store).extend_empty(&store, ValidatorId::new(90), View::new(1));
    let conflicting =
        Log::genesis(&store).extend_empty(&store, ValidatorId::new(91), View::new(1));
    let all: Vec<ValidatorId> = ValidatorId::all(n).collect();
    for v in ValidatorId::all(n) {
        if v.index() >= n - f {
            h.byzantine(
                v,
                Box::new(GaEquivocator::new(
                    v,
                    InstanceId(0),
                    Time::ZERO,
                    conflicting,
                    all.clone(),
                    conflicting,
                    Vec::new(),
                )),
            );
        } else {
            h.input(v, base);
        }
    }
    let result = h.run();
    for i in 0..n - f {
        let out = result.outputs[i][2];
        assert!(
            !matches!(out, Some(o) if base.is_prefix_of(&o, &result.store)),
            "v{i}: the honest branch must be vetoed at f = h, got {out:?}"
        );
    }
}

/// Above the bound, the TOB chain stops growing (liveness death), while
/// the per-instance quorum-intersection arguments keep the observed
/// executions conflict-free for this adversary.
#[test]
fn chain_halts_above_threshold() {
    let n = 6;
    let f = 3; // f = h: over the model bound
    let half_a: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect();
    let half_b: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 1).collect();
    let mut builder = TobSimulationBuilder::new(n)
        .views(15)
        .seed(10)
        .workload(TxWorkload::PerView { count: 1, size: 32 })
        .delay(Box::new(WorstCaseDelay));
    for v in ValidatorId::all(n).skip(n - f) {
        let (a, b) = (half_a.clone(), half_b.clone());
        builder = builder.byzantine(
            v,
            Box::new(move |store| Box::new(SplitBrainNode::new(v, TobConfig::new(n), store, a, b))),
        );
    }
    let report = builder.run().expect("runs");
    // Liveness: gone. With f = h every vote count ties at best; no lock
    // and no decision ever forms beyond genesis.
    assert_eq!(
        report.decided_blocks(),
        0,
        "no block should decide at f = h, got {}",
        report.decided_blocks()
    );
    // This particular adversary also never managed to split decisions
    // (there were none) — the recorded execution stays safe.
    report.assert_safety();
}

/// Liveness degrades gracefully as f approaches the bound: more
/// Byzantine split-brains → fewer good-leader views → fewer blocks.
#[test]
fn graceful_degradation_toward_the_bound() {
    let n = 9;
    let views = 30u64;
    let mut decided = Vec::new();
    for f in [0usize, 2, 4] {
        let half_a: Vec<ValidatorId> =
            ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect();
        let half_b: Vec<ValidatorId> =
            ValidatorId::all(n).filter(|v| v.index() % 2 == 1).collect();
        let mut builder = TobSimulationBuilder::new(n)
            .views(views)
            .seed(31)
            .delay(Box::new(WorstCaseDelay));
        for v in ValidatorId::all(n).skip(n - f) {
            let (a, b) = (half_a.clone(), half_b.clone());
            builder = builder.byzantine(
                v,
                Box::new(move |store| {
                    Box::new(SplitBrainNode::new(v, TobConfig::new(n), store, a, b))
                }),
            );
        }
        let report = builder.run().expect("runs");
        report.assert_safety();
        decided.push(report.decided_blocks());
    }
    assert!(
        decided[0] >= decided[1] && decided[1] >= decided[2],
        "block count should fall with f: {decided:?}"
    );
    assert!(decided[2] > 0, "below the bound the chain still grows");
}
