//! Property tests of the delta-sync wire codec: announcements
//! round-trip to synced receivers, cold receivers get actionable
//! `MissingBlocks` errors, fetch responses transfer ranges across
//! stores, and mutations are rejected or break signatures.

use proptest::prelude::*;
use tob_svd::crypto::{AggregateSignature, Keypair};
use tob_svd::types::{
    wire, BlockStore, InstanceId, Log, Payload, SignedMessage, SignerSet, Transaction,
    ValidatorId, View,
};

#[derive(Clone, Debug)]
struct MsgSpec {
    sender: u32,
    tag: u8,
    instance: u64,
    /// Blocks on the carried log: per block, (proposer, tx sizes).
    blocks: Vec<(u32, Vec<u16>)>,
}

fn msg_spec() -> impl Strategy<Value = MsgSpec> {
    (
        0u32..16,
        0u8..8,
        0u64..100,
        proptest::collection::vec(
            (0u32..16, proptest::collection::vec(1u16..600, 0..4)),
            0..5,
        ),
    )
        .prop_map(|(sender, tag, instance, blocks)| MsgSpec { sender, tag, instance, blocks })
}

fn build_message(spec: &MsgSpec, store: &BlockStore) -> SignedMessage {
    let mut log = Log::genesis(store);
    for (i, (proposer, tx_sizes)) in spec.blocks.iter().enumerate() {
        let txs: Vec<Transaction> = tx_sizes
            .iter()
            .enumerate()
            .map(|(j, size)| Transaction::synthetic((i * 100 + j) as u64, *size as usize))
            .collect();
        log = log.extend(store, ValidatorId::new(*proposer), View::new(i as u64 + 1), txs);
    }
    let sender = ValidatorId::new(spec.sender);
    let payload = match spec.tag {
        0 => Payload::Log { instance: InstanceId(spec.instance), log },
        1 => {
            let (vrf, proof) =
                tob_svd::protocol::leader::vrf_for(sender, View::new(spec.instance));
            Payload::Proposal { view: View::new(spec.instance), log, vrf, proof }
        }
        2 => Payload::Vote { instance: InstanceId(spec.instance), log },
        3 => Payload::Recovery { from_view: View::new(spec.instance), log },
        4 => Payload::FinalityVote { epoch: spec.instance, log },
        5 => Payload::BlockRequest { tip: log.tip(), from_height: 1 + spec.instance % 4 },
        7 => certificate_over(InstanceId(spec.instance), log, spec.sender),
        _ if log.len() > 1 => {
            Payload::BlockResponse { tip: log.tip(), from_height: 1, count: log.len() - 1 }
        }
        // A response must carry at least one block; fall back to a
        // request for empty chains.
        _ => Payload::BlockRequest { tip: log.tip(), from_height: 1 },
    };
    let kp = Keypair::from_seed(sender.key_seed());
    SignedMessage::sign(&kp, sender, payload)
}

/// A quorum certificate over `Payload::Log { instance, log }` votes from
/// three validators starting at `first_signer` — genuine signatures, so
/// decoded certificates aggregate-verify like live ones.
fn certificate_over(instance: InstanceId, log: Log, first_signer: u32) -> Payload {
    let mut signers = SignerSet::empty();
    let mut sigs = Vec::new();
    for i in first_signer..first_signer + 3 {
        let v = ValidatorId::new(i);
        let vkp = Keypair::from_seed(v.key_seed());
        let vote = SignedMessage::sign(&vkp, v, Payload::Log { instance, log });
        sigs.push(*vote.signature());
        signers.insert(v);
    }
    let agg = AggregateSignature::aggregate(&sigs.iter().collect::<Vec<_>>())
        .expect("three votes aggregate");
    Payload::Certificate { instance, log, signers, agg }
}

/// A receiver store holding everything the message's wire frame does
/// *not* carry: the chain below the announcement's inline window. Fetch
/// payloads are self-contained, so the receiver starts cold.
fn synced_receiver(msg: &SignedMessage, store: &BlockStore) -> BlockStore {
    let rx = BlockStore::new();
    if let Some(log) = msg.payload().log() {
        let keep = log.len().saturating_sub(1 + wire::INLINE_WINDOW);
        if let Some(ids) = store.chain_range(log.tip(), 1) {
            for id in ids.iter().take(keep as usize) {
                rx.insert(store.get(*id).unwrap().as_ref().clone()).expect("prefix transfers");
            }
        }
    }
    rx
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Round trip to a synced receiver preserves the payload and the
    /// signature's validity; the inline window fills the receiver's
    /// store up to the announced tip.
    #[test]
    fn roundtrip_across_stores(spec in msg_spec()) {
        let tx_store = BlockStore::new();
        let msg = build_message(&spec, &tx_store);
        let bytes = wire::encode_message(&msg, &tx_store).expect("encode");
        prop_assert_eq!(bytes.len() as u64, wire::encoded_len(&msg, &tx_store).expect("len"));

        let rx_store = synced_receiver(&msg, &tx_store);
        let decoded = wire::decode_message(bytes, &rx_store).expect("well-formed");
        prop_assert_eq!(decoded.sender(), msg.sender());
        prop_assert_eq!(decoded.payload(), msg.payload());
        let kp = Keypair::from_seed(msg.sender().key_seed());
        prop_assert!(decoded.verify(&kp.public()));
        // The receiver's store now resolves the whole announced chain.
        if let Some(log) = decoded.payload().log() {
            prop_assert_eq!(rx_store.height(log.tip()), Some(log.len() - 1));
        }
    }

    /// A cold receiver either decodes (fetch payloads and short chains
    /// are self-contained) or gets the recoverable `MissingBlocks`
    /// error naming the block to fetch — never anything else.
    #[test]
    fn cold_receiver_errors_are_actionable(spec in msg_spec()) {
        let tx_store = BlockStore::new();
        let msg = build_message(&spec, &tx_store);
        let bytes = wire::encode_message(&msg, &tx_store).expect("encode");
        let cold = BlockStore::new();
        match wire::decode_message(bytes, &cold) {
            Ok(decoded) => prop_assert_eq!(decoded.payload(), msg.payload()),
            Err(wire::WireError::MissingBlocks { missing, from_height }) => {
                // The named block really is part of the referenced chain
                // and the hint is a sane start.
                prop_assert!(tx_store.contains(missing));
                prop_assert!(from_height >= 1);
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Every strict prefix of an encoding fails to decode (no partial
    /// parses).
    #[test]
    fn truncation_always_fails(spec in msg_spec(), cut_frac in 0.0f64..1.0) {
        let store = BlockStore::new();
        let msg = build_message(&spec, &store);
        let bytes = wire::encode_message(&msg, &store).expect("encode");
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let rx = synced_receiver(&msg, &store);
        prop_assert!(wire::decode_message(bytes.slice(..cut), &rx).is_err());
    }

    /// Flipping any single byte either makes the message undecodable or
    /// breaks its signature — the wire format carries no malleability
    /// (in particular the advisory ancestor-hash list is
    /// integrity-checked against the reconstructed chain).
    #[test]
    fn single_byte_flips_never_verify(spec in msg_spec(), pos_frac in 0.0f64..1.0) {
        let store = BlockStore::new();
        let msg = build_message(&spec, &store);
        let mut bytes = wire::encode_message(&msg, &store).expect("encode").to_vec();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 0x01;
        let rx = synced_receiver(&msg, &store);
        match wire::decode_message(bytes.into(), &rx) {
            Err(_) => {} // rejected outright: fine
            Ok(decoded) => {
                let kp = Keypair::from_seed(decoded.sender().key_seed());
                prop_assert!(
                    !decoded.verify(&kp.public()),
                    "tampered byte {pos} still verifies"
                );
            }
        }
    }

    /// Fuzz smoke: arbitrary byte-mutation storms (flips, truncations,
    /// garbage suffixes) over encodings of every payload variant —
    /// announcements, both fetch payloads and quorum certificates —
    /// must never panic the decoder: it returns `Ok` or `Err`, nothing
    /// else. (`tag` in the spec ranges over all 8 variants.)
    #[test]
    fn decode_never_panics_on_mutated_bytes(
        spec in msg_spec(),
        flips in proptest::collection::vec((any::<u16>(), 1u8..=255), 1..8),
        action in 0u8..4,
        amount in any::<u16>(),
    ) {
        let store = BlockStore::new();
        let msg = build_message(&spec, &store);
        let mut bytes = wire::encode_message(&msg, &store).expect("encode").to_vec();
        match action {
            0 => {
                for (pos, val) in &flips {
                    let i = *pos as usize % bytes.len();
                    bytes[i] ^= val;
                }
            }
            1 => bytes.truncate(amount as usize % (bytes.len() + 1)),
            2 => bytes.extend(flips.iter().map(|(_, v)| *v)),
            _ => {
                // Flip, then cut: mutated length fields meet a short
                // buffer.
                for (pos, val) in &flips {
                    let i = *pos as usize % bytes.len();
                    bytes[i] ^= val;
                }
                bytes.truncate(amount as usize % (bytes.len() + 1));
            }
        }
        let rx = synced_receiver(&msg, &store);
        // The assertion is the return itself: a panic fails the case
        // (the harness catches unwinds and reports the input).
        let _ = wire::decode_message(bytes.into(), &rx);
    }
}

/// Exhaustive (non-random) coverage: every `Payload` variant
/// round-trips, and every strict prefix of its encoding is rejected.
#[test]
fn every_variant_roundtrips_and_rejects_truncation() {
    let store = BlockStore::new();
    let mut log = Log::genesis(&store);
    for i in 0..3u64 {
        log = log.extend(
            &store,
            ValidatorId::new(i as u32),
            View::new(i + 1),
            vec![Transaction::synthetic(i, 24)],
        );
    }
    let sender = ValidatorId::new(3);
    let (vrf, proof) = tob_svd::protocol::leader::vrf_for(sender, View::new(9));
    let payloads = [
        Payload::Log { instance: InstanceId(9), log },
        Payload::Proposal { view: View::new(9), log, vrf, proof },
        Payload::Vote { instance: InstanceId(9), log },
        Payload::Recovery { from_view: View::new(9), log },
        Payload::FinalityVote { epoch: 9, log },
        Payload::BlockRequest { tip: log.tip(), from_height: 2 },
        Payload::BlockResponse { tip: log.tip(), from_height: 1, count: log.len() - 1 },
        certificate_over(InstanceId(9), log, 0),
    ];
    let kp = Keypair::from_seed(sender.key_seed());
    for payload in payloads {
        let msg = SignedMessage::sign(&kp, sender, payload);
        let bytes = wire::encode_message(&msg, &store).expect("encode");
        assert_eq!(bytes.len() as u64, wire::encoded_len(&msg, &store).expect("len"));

        let rx = synced_receiver(&msg, &store);
        let decoded = wire::decode_message(bytes.clone(), &rx)
            .unwrap_or_else(|e| panic!("{payload:?} failed to decode: {e}"));
        assert_eq!(decoded.payload(), &payload, "identity broken for {payload:?}");
        assert_eq!(decoded.sender(), sender);
        assert!(decoded.verify(&kp.public()), "signature broken for {payload:?}");

        for cut in 0..bytes.len() {
            let rx = synced_receiver(&msg, &store);
            assert!(
                wire::decode_message(bytes.slice(..cut), &rx).is_err(),
                "{payload:?}: {cut}-byte prefix of {} decoded",
                bytes.len()
            );
        }
    }
}

/// The delta-sync catch-up flow across stores, end to end at the codec
/// level: a cold receiver decodes an announcement, learns exactly which
/// block it is missing, fetches the range, and can then decode the
/// original announcement.
#[test]
fn announcement_then_fetch_then_replay_converges_stores() {
    let store = BlockStore::new();
    let mut log = Log::genesis(&store);
    for i in 0..6u64 {
        log = log.extend(
            &store,
            ValidatorId::new(0),
            View::new(i + 1),
            vec![Transaction::synthetic(i, 32)],
        );
    }
    let sender = ValidatorId::new(0);
    let kp = Keypair::from_seed(sender.key_seed());
    let announcement = SignedMessage::sign(
        &kp,
        sender,
        Payload::Log { instance: InstanceId(6), log },
    );
    let frame = wire::encode_message(&announcement, &store).expect("encode");

    let rx = BlockStore::new();
    let Err(wire::WireError::MissingBlocks { missing, from_height }) =
        wire::decode_message(frame.clone(), &rx)
    else {
        panic!("cold receiver must report missing blocks");
    };
    assert_eq!(from_height, 1);

    // The "peer" serves the requested range.
    let response = SignedMessage::sign(
        &kp,
        sender,
        Payload::BlockResponse {
            tip: missing,
            from_height,
            count: store.height(missing).unwrap() - from_height + 1,
        },
    );
    let resp_frame = wire::encode_message(&response, &store).expect("encode");
    wire::decode_message(resp_frame, &rx).expect("response decodes into the cold store");

    // Replaying the parked announcement now succeeds.
    let decoded = wire::decode_message(frame, &rx).expect("replay decodes");
    assert_eq!(decoded.payload(), announcement.payload());
    assert_eq!(rx.height(log.tip()), Some(log.len() - 1));
    // Content survived the transfer: all six transactions are present.
    assert_eq!(rx.transactions_on_chain(log.tip()).len(), 6);
}

#[test]
fn decoder_enforces_limits() {
    // A log-length field beyond MAX_LOG_LEN must be rejected without
    // attempting allocation.
    let store = BlockStore::new();
    let msg = build_message(
        &MsgSpec { sender: 0, tag: 0, instance: 1, blocks: vec![] },
        &store,
    );
    let mut bytes = wire::encode_message(&msg, &store).expect("encode").to_vec();
    // Layout: version(1) + sender(4) + tag(1) + instance(8) + len(8).
    let len_off = 1 + 4 + 1 + 8;
    bytes[len_off..len_off + 8].copy_from_slice(&u64::MAX.to_be_bytes());
    let rx = BlockStore::new();
    assert!(matches!(
        wire::decode_message(bytes.into(), &rx),
        Err(wire::WireError::LimitExceeded(_))
    ));
}
