//! Property tests of the wire codec: arbitrary messages round-trip
//! across independent stores; mutations are rejected or break
//! signatures.

use proptest::prelude::*;
use tob_svd::crypto::Keypair;
use tob_svd::types::{
    wire, BlockStore, InstanceId, Log, Payload, SignedMessage, Transaction, ValidatorId, View,
};

#[derive(Clone, Debug)]
struct MsgSpec {
    sender: u32,
    tag: u8,
    instance: u64,
    /// Blocks on the carried log: per block, (proposer, tx sizes).
    blocks: Vec<(u32, Vec<u16>)>,
}

fn msg_spec() -> impl Strategy<Value = MsgSpec> {
    (
        0u32..16,
        0u8..5,
        0u64..100,
        proptest::collection::vec(
            (0u32..16, proptest::collection::vec(1u16..600, 0..4)),
            0..5,
        ),
    )
        .prop_map(|(sender, tag, instance, blocks)| MsgSpec { sender, tag, instance, blocks })
}

fn build_message(spec: &MsgSpec, store: &BlockStore) -> SignedMessage {
    let mut log = Log::genesis(store);
    for (i, (proposer, tx_sizes)) in spec.blocks.iter().enumerate() {
        let txs: Vec<Transaction> = tx_sizes
            .iter()
            .enumerate()
            .map(|(j, size)| Transaction::synthetic((i * 100 + j) as u64, *size as usize))
            .collect();
        log = log.extend(store, ValidatorId::new(*proposer), View::new(i as u64 + 1), txs);
    }
    let sender = ValidatorId::new(spec.sender);
    let payload = match spec.tag {
        0 => Payload::Log { instance: InstanceId(spec.instance), log },
        1 => {
            let (vrf, proof) =
                tob_svd::protocol::leader::vrf_for(sender, View::new(spec.instance));
            Payload::Proposal { view: View::new(spec.instance), log, vrf, proof }
        }
        2 => Payload::Vote { instance: InstanceId(spec.instance), log },
        3 => Payload::Recovery { from_view: View::new(spec.instance), log },
        _ => Payload::FinalityVote { epoch: spec.instance, log },
    };
    let kp = Keypair::from_seed(sender.key_seed());
    SignedMessage::sign(&kp, sender, payload)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Round trip across independent stores preserves the payload and
    /// the signature's validity.
    #[test]
    fn roundtrip_across_stores(spec in msg_spec()) {
        let tx_store = BlockStore::new();
        let msg = build_message(&spec, &tx_store);
        let bytes = wire::encode_message(&msg, &tx_store);

        let rx_store = BlockStore::new();
        let decoded = wire::decode_message(bytes, &rx_store).expect("well-formed");
        prop_assert_eq!(decoded.sender(), msg.sender());
        prop_assert_eq!(decoded.payload(), msg.payload());
        let kp = Keypair::from_seed(msg.sender().key_seed());
        prop_assert!(decoded.verify(&kp.public()));
        // The receiver's store now resolves the whole chain.
        let log = decoded.payload().log();
        prop_assert_eq!(rx_store.height(log.tip()), Some(log.len() - 1));
    }

    /// Every strict prefix of an encoding fails to decode (no partial
    /// parses).
    #[test]
    fn truncation_always_fails(spec in msg_spec(), cut_frac in 0.0f64..1.0) {
        let store = BlockStore::new();
        let msg = build_message(&spec, &store);
        let bytes = wire::encode_message(&msg, &store);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let rx = BlockStore::new();
        prop_assert!(wire::decode_message(bytes.slice(..cut), &rx).is_err());
    }

    /// Flipping any single byte either makes the message undecodable or
    /// breaks its signature — the wire format carries no malleability.
    #[test]
    fn single_byte_flips_never_verify(spec in msg_spec(), pos_frac in 0.0f64..1.0) {
        let store = BlockStore::new();
        let msg = build_message(&spec, &store);
        let mut bytes = wire::encode_message(&msg, &store).to_vec();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 0x01;
        let rx = BlockStore::new();
        match wire::decode_message(bytes.into(), &rx) {
            Err(_) => {} // rejected outright: fine
            Ok(decoded) => {
                let kp = Keypair::from_seed(decoded.sender().key_seed());
                prop_assert!(
                    !decoded.verify(&kp.public()),
                    "tampered byte {pos} still verifies"
                );
            }
        }
    }

    /// Fuzz smoke: arbitrary byte-mutation storms (flips, truncations,
    /// garbage suffixes) over encodings of every payload variant must
    /// never panic the decoder — it returns `Ok` or `Err`, nothing
    /// else. (`tag` in the spec ranges over all 5 variants.)
    #[test]
    fn decode_never_panics_on_mutated_bytes(
        spec in msg_spec(),
        flips in proptest::collection::vec((any::<u16>(), 1u8..=255), 1..8),
        action in 0u8..4,
        amount in any::<u16>(),
    ) {
        let store = BlockStore::new();
        let msg = build_message(&spec, &store);
        let mut bytes = wire::encode_message(&msg, &store).to_vec();
        match action {
            0 => {
                for (pos, val) in &flips {
                    let i = *pos as usize % bytes.len();
                    bytes[i] ^= val;
                }
            }
            1 => bytes.truncate(amount as usize % (bytes.len() + 1)),
            2 => bytes.extend(flips.iter().map(|(_, v)| *v)),
            _ => {
                // Flip, then cut: mutated length fields meet a short
                // buffer.
                for (pos, val) in &flips {
                    let i = *pos as usize % bytes.len();
                    bytes[i] ^= val;
                }
                bytes.truncate(amount as usize % (bytes.len() + 1));
            }
        }
        let rx = BlockStore::new();
        // The assertion is the return itself: a panic fails the case
        // (the harness catches unwinds and reports the input).
        let _ = wire::decode_message(bytes.into(), &rx);
    }
}

/// Exhaustive (non-random) coverage: every `Payload` variant
/// round-trips across independent stores, and every strict prefix of
/// its encoding is rejected.
#[test]
fn every_variant_roundtrips_and_rejects_truncation() {
    let store = BlockStore::new();
    let mut log = Log::genesis(&store);
    for i in 0..3u64 {
        log = log.extend(
            &store,
            ValidatorId::new(i as u32),
            View::new(i + 1),
            vec![Transaction::synthetic(i, 24)],
        );
    }
    let sender = ValidatorId::new(3);
    let (vrf, proof) = tob_svd::protocol::leader::vrf_for(sender, View::new(9));
    let payloads = [
        Payload::Log { instance: InstanceId(9), log },
        Payload::Proposal { view: View::new(9), log, vrf, proof },
        Payload::Vote { instance: InstanceId(9), log },
        Payload::Recovery { from_view: View::new(9), log },
        Payload::FinalityVote { epoch: 9, log },
    ];
    let kp = Keypair::from_seed(sender.key_seed());
    for payload in payloads {
        let msg = SignedMessage::sign(&kp, sender, payload);
        let bytes = wire::encode_message(&msg, &store);

        let rx = BlockStore::new();
        let decoded = wire::decode_message(bytes.clone(), &rx)
            .unwrap_or_else(|e| panic!("{payload:?} failed to decode: {e}"));
        assert_eq!(decoded.payload(), &payload, "identity broken for {payload:?}");
        assert_eq!(decoded.sender(), sender);
        assert!(decoded.verify(&kp.public()), "signature broken for {payload:?}");

        for cut in 0..bytes.len() {
            let rx = BlockStore::new();
            assert!(
                wire::decode_message(bytes.slice(..cut), &rx).is_err(),
                "{payload:?}: {cut}-byte prefix of {} decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn decoder_enforces_limits() {
    // A log-length field beyond MAX_LOG_LEN must be rejected without
    // attempting allocation.
    let store = BlockStore::new();
    let msg = build_message(
        &MsgSpec { sender: 0, tag: 0, instance: 1, blocks: vec![] },
        &store,
    );
    let mut bytes = wire::encode_message(&msg, &store).to_vec();
    // Layout: version(1) + sender(4) + tag(1) + instance(8) + len(8).
    let len_off = 1 + 4 + 1 + 8;
    bytes[len_off..len_off + 8].copy_from_slice(&u64::MAX.to_be_bytes());
    let rx = BlockStore::new();
    assert!(matches!(
        wire::decode_message(bytes.into(), &rx),
        Err(wire::WireError::LimitExceeded(_))
    ));
}
