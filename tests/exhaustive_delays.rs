//! Exhaustive model checking of the 2-grade GA over link-delay
//! schedules.
//!
//! Randomized tests sample the adversary's delay choices; this test
//! *enumerates* them: for a 4-validator instance (two honest validators
//! split across conflicting branches, one honest swing vote, one
//! Byzantine targeted equivocator), every directed link is assigned
//! either the fastest (1 tick) or the slowest (Δ) delay — all 2¹²
//! combinations. Every execution must satisfy Consistency, Graded
//! Delivery, Uniqueness and Integrity.
//!
//! This covers, among others, the exact schedule family from the
//! Theorem 1 proof narrative: one validator sees support early and
//! another learns of equivocations only at the last allowed moment.

use tob_svd::adversary::{FnDelay, GaEquivocator};
use tob_svd::ga::{GaHarness, GaKind};
use tob_svd::sim::SimConfig;
use tob_svd::types::{InstanceId, Log, Time, ValidatorId, View};

const N: usize = 4;

/// Directed-link index for (from, to), skipping self-links.
fn link_index(from: ValidatorId, to: ValidatorId) -> usize {
    let f = from.index();
    let t = to.index();
    let t_adj = if t > f { t - 1 } else { t };
    f * (N - 1) + t_adj
}

#[test]
fn all_link_delay_combinations_preserve_ga2_properties() {
    let combos = 1u32 << (N * (N - 1)); // 2^12
    let mut checked = 0u32;
    for mask in 0..combos {
        let cfg = SimConfig::new(N).with_seed(1);
        let mut h = GaHarness::new(cfg, GaKind::Two);
        let store = h.store().clone();
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
        let b = g.extend_empty(&store, ValidatorId::new(9), View::new(1));

        h.input(ValidatorId::new(0), a);
        h.input(ValidatorId::new(1), b);
        h.input(ValidatorId::new(2), a);
        h.byzantine(
            ValidatorId::new(3),
            Box::new(GaEquivocator::new(
                ValidatorId::new(3),
                InstanceId(0),
                Time::ZERO,
                a,
                vec![ValidatorId::new(0), ValidatorId::new(2)],
                b,
                vec![ValidatorId::new(1)],
            )),
        );
        h.delay(Box::new(FnDelay(
            move |_m: &tob_svd::types::SignedMessage, from, to, _at, delta: tob_svd::types::Delta| {
                if mask & (1 << link_index(from, to)) != 0 {
                    delta.ticks()
                } else {
                    1
                }
            },
        )));
        let result = h.run();

        let honest = [0usize, 1, 2];
        // Consistency + Uniqueness at grade 1.
        for &i in &honest {
            for &j in &honest {
                if let (Some(x), Some(y)) = (result.outputs[i][1], result.outputs[j][1]) {
                    assert!(
                        x.compatible(&y, &result.store),
                        "mask {mask:#014b}: grade-1 conflict {x} vs {y}"
                    );
                }
            }
        }
        // Graded Delivery 1 → 0.
        for &i in &honest {
            if let Some(hi) = result.outputs[i][1] {
                for &j in &honest {
                    if result.participated[j][0] {
                        let lo = result.outputs[j][0];
                        assert!(
                            matches!(lo, Some(lo) if hi.is_prefix_of(&lo, &result.store)),
                            "mask {mask:#014b}: v{i} grade-1 {hi} not delivered at v{j} grade 0 ({lo:?})"
                        );
                    }
                }
            }
        }
        // Integrity: outputs extend some honest input.
        let inputs = [a, b, a];
        for &i in &honest {
            for gr in 0..2usize {
                if let Some(out) = result.outputs[i][gr] {
                    assert!(
                        inputs.iter().any(|inp| out.is_prefix_of(inp, &result.store)),
                        "mask {mask:#014b}: v{i} grade-{gr} output {out} beyond honest inputs"
                    );
                }
            }
        }
        checked += 1;
    }
    assert_eq!(checked, combos);
}

/// A focused sub-family with the swing validator asleep at Δ (cannot
/// participate at grade 1): Graded Delivery obligations shrink with
/// participation exactly as specified, under all byz-link delays.
#[test]
fn delay_combinations_with_reduced_participation() {
    use tob_svd::sim::ParticipationSchedule;
    // Only the 6 links out of the Byzantine validator are enumerated
    // (64 combos); honest links stay fast.
    for mask in 0u32..64 {
        let cfg = SimConfig::new(N).with_seed(2);
        let mut h = GaHarness::new(cfg, GaKind::Two);
        let store = h.store().clone();
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
        let b = g.extend_empty(&store, ValidatorId::new(9), View::new(1));
        h.input(ValidatorId::new(0), a);
        h.input(ValidatorId::new(1), a);
        h.input(ValidatorId::new(2), b);
        h.byzantine(
            ValidatorId::new(3),
            Box::new(GaEquivocator::new(
                ValidatorId::new(3),
                InstanceId(0),
                Time::ZERO,
                a,
                vec![ValidatorId::new(0)],
                b,
                vec![ValidatorId::new(1), ValidatorId::new(2)],
            )),
        );
        // v2 misses the Δ snapshot (asleep for one tick around it).
        let mut part = ParticipationSchedule::always_awake(N);
        let delta = tob_svd::types::Delta::default().ticks();
        part.set_intervals(
            ValidatorId::new(2),
            vec![
                (Time::ZERO, Time::new(delta)),
                (Time::new(delta + 1), Time::new(10 * delta)),
            ],
        );
        h.participation(part);
        h.delay(Box::new(FnDelay(
            move |m: &tob_svd::types::SignedMessage, _from, to: ValidatorId, _at, d: tob_svd::types::Delta| {
                if m.sender() == ValidatorId::new(3) {
                    let bit = to.index().min(2);
                    if mask & (1 << bit) != 0 {
                        return d.ticks();
                    }
                }
                1
            },
        )));
        let result = h.run();
        // v2 must not participate at grade 1.
        assert!(!result.participated[2][1], "mask {mask}: v2 missed the snapshot");
        // The remaining obligations still hold.
        for i in [0usize, 1] {
            if let Some(hi) = result.outputs[i][1] {
                for j in [0usize, 1, 2] {
                    if result.participated[j][0] {
                        let lo = result.outputs[j][0];
                        assert!(
                            matches!(lo, Some(lo) if hi.is_prefix_of(&lo, &result.store)),
                            "mask {mask}: graded delivery broken at v{j}"
                        );
                    }
                }
            }
        }
    }
}
