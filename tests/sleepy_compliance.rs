//! Property tests of the Condition (1) compliance checker against a
//! direct transcription of the paper's definition, plus unit coverage
//! of the (T_b, T_s, ρ) parameter behaviour.

use proptest::prelude::*;
use tob_svd::sim::compliance::{active_sets, check, honest_throughout_bruteforce, SleepyParams};
use tob_svd::sim::{CorruptionSchedule, ParticipationSchedule};
use tob_svd::types::{Delta, Time, ValidatorId};

#[derive(Clone, Debug)]
struct RandomSchedules {
    n: usize,
    /// Per-validator awake intervals as (start, len) pairs.
    intervals: Vec<Vec<(u64, u64)>>,
    /// Corruption schedule times (validator index, scheduled tick).
    corruptions: Vec<(usize, u64)>,
    t_b: u64,
    t_s: u64,
}

fn schedules() -> impl Strategy<Value = RandomSchedules> {
    (2usize..7)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(
                    proptest::collection::vec((0u64..60, 1u64..40), 0..3),
                    n,
                ),
                proptest::collection::vec((0..n, 0u64..50), 0..3),
                0u64..20,
                0u64..10,
            )
        })
        .prop_map(|(n, intervals, corruptions, t_b, t_s)| RandomSchedules {
            n,
            intervals,
            corruptions,
            t_b,
            t_s,
        })
}

fn build(rs: &RandomSchedules) -> (ParticipationSchedule, CorruptionSchedule) {
    let mut part = ParticipationSchedule::always_awake(rs.n);
    for (i, ivs) in rs.intervals.iter().enumerate() {
        if ivs.is_empty() {
            continue; // keep always-awake default
        }
        let intervals: Vec<(Time, Time)> = ivs
            .iter()
            .map(|(s, l)| (Time::new(*s), Time::new(s + l)))
            .collect();
        part.set_intervals(ValidatorId::new(i as u32), intervals);
    }
    let mut corr = CorruptionSchedule::none();
    for (i, t) in &rs.corruptions {
        corr.schedule(ValidatorId::new(*i as u32), Time::new(*t), Delta::new(8));
    }
    (part, corr)
}

/// Direct transcription of Condition (1) at a single time `t`.
fn condition1_direct(
    part: &ParticipationSchedule,
    corr: &CorruptionSchedule,
    params: SleepyParams,
    t: Time,
    n: usize,
) -> bool {
    let b_end = t + params.t_b;
    let byz: Vec<ValidatorId> = corr.byzantine_at(b_end);
    let from = t.saturating_sub(Time::new(params.t_s));
    let h_window = honest_throughout_bruteforce(part, corr, from, t);
    let mut active: Vec<ValidatorId> = h_window;
    for b in &byz {
        if !active.contains(b) {
            active.push(*b);
        }
    }
    let _ = n;
    (byz.len() as f64) < params.rho * (active.len() as f64)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// `active_sets` agrees with the direct set construction at every
    /// tick of the horizon.
    #[test]
    fn active_sets_match_direct_definition(rs in schedules()) {
        let (part, corr) = build(&rs);
        let params = SleepyParams::half(rs.t_b, rs.t_s);
        for t in (0..80u64).step_by(3) {
            let t = Time::new(t);
            let (byz, active) = active_sets(&part, &corr, params, t, rs.n);
            let b_direct = corr.byzantine_at(t + params.t_b).len();
            let from = t.saturating_sub(Time::new(params.t_s));
            let h_direct = honest_throughout_bruteforce(&part, &corr, from, t);
            let mut union = h_direct.clone();
            for b in corr.byzantine_at(t + params.t_b) {
                if !union.contains(&b) {
                    union.push(b);
                }
            }
            prop_assert_eq!(byz, b_direct, "byzantine count at {}", t);
            prop_assert_eq!(active, union.len(), "active count at {}", t);
        }
    }

    /// The checker's verdict equals checking the direct transcription at
    /// every tick.
    #[test]
    fn checker_matches_direct_condition(rs in schedules()) {
        let (part, corr) = build(&rs);
        let params = SleepyParams::half(rs.t_b, rs.t_s);
        let horizon = Time::new(60);
        let verdict = check(&part, &corr, params, horizon);
        let first_direct_violation = (0..=horizon.ticks())
            .map(Time::new)
            .find(|t| !condition1_direct(&part, &corr, params, *t, rs.n));
        match (verdict, first_direct_violation) {
            (None, None) => {}
            (Some(v), Some(t)) => prop_assert_eq!(v.at, t),
            (v, d) => prop_assert!(false, "checker {:?} vs direct {:?}", v, d),
        }
    }

    /// Monotonicity in ρ: lowering the failure ratio can only introduce
    /// violations, never remove them.
    #[test]
    fn monotone_in_rho(rs in schedules()) {
        let (part, corr) = build(&rs);
        let horizon = Time::new(60);
        let strict = SleepyParams { t_b: rs.t_b, t_s: rs.t_s, rho: 0.3 };
        let loose = SleepyParams { t_b: rs.t_b, t_s: rs.t_s, rho: 0.5 };
        if check(&part, &corr, loose, horizon).is_some() {
            prop_assert!(
                check(&part, &corr, strict, horizon).is_some(),
                "violation at ρ=.5 must persist at ρ=.3"
            );
        }
    }

    /// Growing T_b can only make compliance harder (B_{t+T_b} grows).
    #[test]
    fn monotone_in_tb(rs in schedules()) {
        let (part, corr) = build(&rs);
        let horizon = Time::new(60);
        let small = SleepyParams::half(rs.t_b, rs.t_s);
        let large = SleepyParams::half(rs.t_b + 15, rs.t_s);
        if check(&part, &corr, small, horizon).is_some() {
            prop_assert!(check(&part, &corr, large, horizon).is_some());
        }
    }
}

#[test]
fn tob_svd_model_parameters() {
    // The (5Δ, 2Δ, ½) model of Theorem 3, at Δ = 8 ticks.
    let delta = Delta::new(8);
    let params = SleepyParams::half(5 * delta.ticks(), 2 * delta.ticks());
    let n = 9;
    // 4 of 9 Byzantine with everyone awake: compliant.
    let part = ParticipationSchedule::always_awake(n);
    let corr = CorruptionSchedule::from_genesis((5..9).map(ValidatorId::new));
    assert!(check(&part, &corr, params, Time::new(500)).is_none());
    // A fifth corruption tips it over.
    let corr = CorruptionSchedule::from_genesis((4..9).map(ValidatorId::new));
    assert!(check(&part, &corr, params, Time::new(500)).is_some());
}

#[test]
fn stabilization_window_matters_for_compliance() {
    // A validator that wakes shortly before t only counts once it has
    // been awake for T_s; with T_s = 2Δ the margin matters near the
    // corruption bound.
    let delta = Delta::new(8);
    let n = 5;
    let corr = CorruptionSchedule::from_genesis((3..5).map(ValidatorId::new));
    let mut part = ParticipationSchedule::always_awake(n);
    // v2 awake only from t = 100.
    part.set_intervals(ValidatorId::new(2), vec![(Time::new(100), Time::new(10_000))]);

    // With T_s = 0, v2 counts from t = 100: 2 byz of 5 active → compliant
    // from then on, but during [0, 100) only 2 honest are awake: 2 !< 2.
    let no_stab = SleepyParams::half(5 * delta.ticks(), 0);
    let v = check(&part, &corr, no_stab, Time::new(300)).expect("violation before v2 wakes");
    assert_eq!(v.at, Time::ZERO);

    // Wake v2 from the start: compliant even with stabilization.
    let part_all = ParticipationSchedule::always_awake(n);
    let with_stab = SleepyParams::half(5 * delta.ticks(), 2 * delta.ticks());
    assert!(check(&part_all, &corr, with_stab, Time::new(300)).is_none());
}
