//! End-to-end test of the real TCP runtime: the sans-io validator
//! deciding over actual sockets, with agreement across processes'
//! independent stores.

use std::time::Duration;

use tob_svd::runtime::{ClusterConfig, LocalCluster};

#[test]
fn four_node_cluster_decides_and_agrees() {
    let report = LocalCluster::run(
        ClusterConfig::new(4).views(5).tick(Duration::from_millis(8)),
    )
    .expect("cluster runs");
    report.assert_agreement();
    assert!(
        report.min_decided_len() > 1,
        "every node must decide ≥ 1 block: {:?}",
        report.outcomes()
    );
    // One vote per view, sharp: the single-vote property over a real
    // network.
    for o in report.outcomes() {
        assert!(
            o.votes_cast >= 4 && o.votes_cast <= 7,
            "{:?}: ~one vote per view expected",
            o
        );
        assert!(o.frames.0 > 0 && o.frames.1 > 0, "mesh traffic must flow");
    }
}

#[test]
fn nodes_progress_in_lockstep() {
    let report = LocalCluster::run(
        ClusterConfig::new(3).views(6).tick(Duration::from_millis(8)),
    )
    .expect("cluster runs");
    report.assert_agreement();
    // With a healthy localhost mesh every node should be within one
    // block of the front.
    assert!(
        report.max_decided_len() - report.min_decided_len() <= 1,
        "nodes too far apart: {:?}",
        report.outcomes()
    );
}
