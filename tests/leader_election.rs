//! Lemma 2 — "Any view has a good leader with probability greater than
//! ½" — and the mild-adaptivity requirement behind it.

use tob_svd::adversary::AdaptiveLeaderCorruptor;
use tob_svd::protocol::{leader, TobSimulationBuilder, TxWorkload};
use tob_svd::sim::{CorruptionSchedule, ParticipationSchedule};
use tob_svd::types::{Delta, Time, ValidatorId, View};

#[test]
fn good_leader_fraction_exceeds_half_at_the_bound() {
    // Monte Carlo over the VRF lottery: n validators, f = (n−1)/2
    // Byzantine from genesis, everyone awake. A view is good iff the
    // highest VRF among all n belongs to an honest validator:
    // p = h/(h+f) > ½.
    for n in [5usize, 9, 15, 21] {
        let f = (n - 1) / 2;
        let h = n - f;
        let honest: Vec<ValidatorId> = ValidatorId::all(n).take(h).collect();
        let byz: Vec<ValidatorId> = ValidatorId::all(n).skip(h).collect();
        let views = 4000u64;
        let good = (0..views)
            .filter(|v| leader::good_leader(View::new(*v), &honest, &byz).is_some())
            .count() as f64
            / views as f64;
        let expect = h as f64 / n as f64;
        assert!(
            good > 0.5,
            "n={n}: good-leader fraction {good:.3} must exceed 1/2"
        );
        assert!(
            (good - expect).abs() < 0.04,
            "n={n}: fraction {good:.3} far from h/n = {expect:.3}"
        );
    }
}

#[test]
fn all_asleep_views_run_without_panicking_and_have_no_leader() {
    // Every validator sleeps through views 2 and 3 (an empty candidate
    // set for the Lemma 2 pool). The run must complete gracefully, the
    // asleep views must report no good leader, and the protocol must
    // resume deciding once everyone wakes up.
    let n = 5usize;
    let views = 8u64;
    let delta = Delta::default();
    let blackout_start = View::new(2).start_time(delta);
    let blackout_end = View::new(4).start_time(delta);
    let horizon = View::new(views + 1).start_time(delta) + delta.ticks() * 2;
    let mut part = ParticipationSchedule::always_awake(n);
    for v in ValidatorId::all(n) {
        part.set_intervals(v, vec![(Time::ZERO, blackout_start), (blackout_end, horizon)]);
    }
    let report = TobSimulationBuilder::new(n)
        .views(views)
        .seed(13)
        .participation(part)
        .workload(TxWorkload::PerView { count: 1, size: 16 })
        .run()
        .expect("all-asleep views must not abort the run");
    report.assert_safety();
    for (view, leader) in &report.good_leaders {
        if view.number() == 2 || view.number() == 3 {
            assert_eq!(*leader, None, "asleep view {view:?} cannot have a good leader");
        } else {
            assert!(leader.is_some(), "awake view {view:?} should have a good leader");
        }
    }
    assert!(
        report.good_leader_fraction() < 1.0 && report.good_leader_fraction() > 0.5,
        "fraction {}",
        report.good_leader_fraction()
    );
    // Liveness resumes after the blackout.
    assert!(report.decided_blocks() > 0, "nothing decided despite awake views");
}

#[test]
fn mild_adaptivity_lets_the_proposed_view_succeed() {
    // The adaptive corruptor sees the winning proposal at t_v and
    // corrupts its sender — but the corruption lands at t_v + Δ, after
    // the proposal reached every honest validator. The proposing view
    // still decides; only *future* views lose that validator.
    let n = 9;
    let budget = 3; // stays under the Condition (1) bound
    let report = TobSimulationBuilder::new(n)
        .views(20)
        .seed(9)
        .workload(TxWorkload::PerView { count: 1, size: 32 })
        .controller(Box::new(AdaptiveLeaderCorruptor::new(Delta::default(), budget)))
        .run()
        .expect("runs");
    report.assert_safety();
    // The corruptor burns its whole budget on the first views' leaders…
    let corrupted = report
        .good_leaders
        .iter()
        .filter(|(v, _)| v.number() < 3)
        .count();
    assert_eq!(corrupted, 3);
    // …but the chain keeps growing: mild adaptivity cannot stop the
    // views it reacts to, and the budget bounds the long-run damage.
    assert!(
        report.decided_blocks() >= report.views - 4,
        "only {} blocks over {} views",
        report.decided_blocks(),
        report.views
    );
}

#[test]
fn corrupted_leaders_reduce_future_good_views() {
    // Ground truth via `good_leader`: corrupting the k all-time-best VRF
    // holders of a view window lowers the good fraction, but it stays
    // above ½ while f < h.
    let n = 11;
    let views: Vec<View> = (0..1000).map(View::new).collect();
    let all: Vec<ValidatorId> = ValidatorId::all(n).collect();

    let baseline = views
        .iter()
        .filter(|v| leader::good_leader(**v, &all, &[]).is_some())
        .count();
    assert_eq!(baseline, views.len(), "no corruption → every view is good");

    let byz: Vec<ValidatorId> = all[6..].to_vec(); // f = 5 < h = 6
    let honest: Vec<ValidatorId> = all[..6].to_vec();
    let good = views
        .iter()
        .filter(|v| leader::good_leader(**v, &honest, &byz).is_some())
        .count() as f64
        / views.len() as f64;
    assert!(good > 0.5 && good < 0.65, "fraction {good} should be ≈ 6/11");
}

#[test]
fn good_leader_definition_uses_corruption_at_tv_plus_delta() {
    // A validator whose corruption lands *between* t_v and t_v + Δ is
    // not a good leader for view v (B_{t_v+Δ} counts it), matching the
    // paper's definition — this is where mild adaptivity bites.
    let n = 5;
    let delta = Delta::new(8);
    let all: Vec<ValidatorId> = ValidatorId::all(n).collect();
    let view = View::new(7);
    let t_v = view.start_time(delta);
    let winner = all
        .iter()
        .copied()
        .max_by_key(|v| leader::vrf_for(*v, view).0)
        .unwrap();

    let mut corr = CorruptionSchedule::none();
    // Scheduled right at t_v: effective at t_v + Δ.
    corr.schedule(winner, t_v, delta);
    let part = ParticipationSchedule::always_awake(n);
    let awake = part.awake_honest_at(t_v, &corr);
    assert!(awake.contains(&winner), "still honest at t_v");
    let byz = corr.byzantine_at(t_v + delta);
    assert_eq!(byz, vec![winner]);
    assert_eq!(
        leader::good_leader(view, &awake, &byz),
        None,
        "the view's winner is in B_(t_v+Δ): no good leader"
    );
    // One tick later and the corruption misses the window.
    let mut corr_late = CorruptionSchedule::none();
    corr_late.schedule(winner, t_v + 1u64, delta);
    let byz_late = corr_late.byzantine_at(t_v + delta);
    assert!(byz_late.is_empty());
    assert_eq!(leader::good_leader(view, &awake, &byz_late), Some(winner));
    let _ = Time::ZERO;
}

#[test]
fn vrf_priorities_are_deterministic_and_verifiable() {
    for v in 0..6u32 {
        for view in 0..6u64 {
            let (out, proof) = leader::vrf_for(ValidatorId::new(v), View::new(view));
            assert!(leader::verify_vrf(ValidatorId::new(v), View::new(view), &out, &proof));
            // Re-evaluation matches (determinism = the adversary cannot
            // grind; fixed before corruption choices).
            let (out2, _) = leader::vrf_for(ValidatorId::new(v), View::new(view));
            assert_eq!(out, out2);
        }
    }
}
