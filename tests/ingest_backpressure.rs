//! End-to-end backpressure test of the ingestion plane: a flood of
//! client submissions against a node with a tiny bounded mempool must
//!
//! * keep mempool memory bounded (pending never exceeds the hard
//!   capacity),
//! * shed the excess with explicit `Busy` acks instead of queueing,
//! * never let slow or stalled clients head-of-line-block the peer
//!   mesh (consensus keeps deciding at full speed), and
//! * account for every accepted transaction: decided, explicitly
//!   evicted, or still pending within the capacity bound at shutdown.

use std::io::Write;
use std::time::{Duration, Instant};

use tob_svd::runtime::{ClientConn, ClusterConfig, LocalCluster};
use tob_svd::sim::AdmissionPolicy;
use tob_svd::types::client::AckStatus;
use tob_svd::types::ValidatorId;

const CAPACITY: usize = 16;

#[test]
fn saturated_node_sheds_load_without_blocking_peers() {
    let policy = AdmissionPolicy { capacity: CAPACITY, rate_cap: 0, rate_window: 64 };
    let cfg = ClusterConfig::new(3)
        .views(6)
        .tick(Duration::from_millis(8))
        .admission(policy);
    let cluster = LocalCluster::spawn(cfg).expect("cluster spawns");
    let v0 = ValidatorId::new(0);
    let addr = cluster.addr_of(v0).expect("node 0 listens");
    let clock = cluster.clock();
    let run_ticks = cluster.run_ticks();

    // A stalled client: sends half a frame and then goes silent. Under
    // the old thread-per-connection layout this pinned a reader thread;
    // under the readiness loop it must cost nothing.
    let mut stalled = std::net::TcpStream::connect(addr).expect("stalled client connects");
    stalled.write_all(&[0, 0, 0, 40, 0xC5]).expect("partial frame");

    // Flooding clients: submit far more than CAPACITY can hold while
    // the chain drains only a few per block.
    let mut conns: Vec<ClientConn> = (0..8)
        .map(|c| ClientConn::connect(addr, c).expect("client connects"))
        .collect();
    let mut submitted = 0u64;
    let mut accepted = 0u64;
    let mut busy = 0u64;
    let deadline = clock.instant_of(run_ticks.saturating_sub(run_ticks / 4));
    let mut nonce = 0u64;
    while Instant::now() < deadline {
        for conn in &mut conns {
            if conn.is_closed() {
                continue;
            }
            // Keep the pipeline shallow enough that acks keep flowing.
            if conn.pending_out() < 4096 {
                let fee = nonce % 7;
                let payload = format!("bp-tx-{}-{nonce}", conn.client()).into_bytes();
                let _ = conn.submit(fee, payload);
                submitted += 1;
                nonce += 1;
            }
            for ack in conn.pump().expect("pump") {
                match ack.status {
                    AckStatus::Accepted | AckStatus::Duplicate => accepted += 1,
                    AckStatus::Busy => busy += 1,
                    AckStatus::RateLimited => {}
                }
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // Drain the remaining acks before the run ends.
    let drain_until = Instant::now() + Duration::from_millis(100);
    while Instant::now() < drain_until {
        for conn in &mut conns {
            if conn.is_closed() {
                continue;
            }
            for ack in conn.pump().expect("pump") {
                match ack.status {
                    AckStatus::Accepted | AckStatus::Duplicate => accepted += 1,
                    AckStatus::Busy => busy += 1,
                    AckStatus::RateLimited => {}
                }
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(conns);
    drop(stalled);

    let report = cluster.join().expect("cluster joins");

    // Peer traffic was never head-of-line blocked: consensus decided
    // and all nodes agree, stalled/flooding clients notwithstanding.
    report.assert_agreement();
    assert!(
        report.min_decided_len() > 1,
        "every node must decide despite client flood: {:?}",
        report.outcomes()
    );

    let outcome = report
        .outcomes()
        .into_iter()
        .find(|o| o.me == v0)
        .expect("node 0 outcome");

    assert!(submitted > 100, "flood must actually flood (submitted {submitted})");
    assert!(busy > 0, "saturation must surface as Busy acks (submitted {submitted})");
    assert_eq!(
        outcome.ingest.acks_busy + outcome.admission.rate_limited,
        outcome.admission.busy + outcome.admission.rate_limited,
        "every Busy admission verdict must be acked"
    );

    // Bounded memory: the pool never held more than CAPACITY records
    // (client flood included; seed txs live in the same pool).
    assert!(
        outcome.admission.pending_peak as usize <= CAPACITY,
        "pending peak {} exceeds capacity {CAPACITY}",
        outcome.admission.pending_peak
    );

    // Every accepted submission is accounted for: decided on-chain,
    // explicitly evicted for a better-paying record, or still pending
    // (and a pending set is ≤ CAPACITY by the bound above). `decided`
    // counts the seed txs too, which only loosens the inequality.
    let decided = report.decided_tx_ticks(v0).len() as u64;
    assert!(accepted > 0, "some submissions must get through");
    assert!(
        outcome.ingest.acks_accepted <= decided + outcome.admission.evicted + CAPACITY as u64,
        "accepted txs leaked: {} accepted, {} decided, {} evicted",
        outcome.ingest.acks_accepted,
        decided,
        outcome.admission.evicted
    );

    // The readiness loop served every socket in one thread: sessions
    // were concurrent (8 floods + 1 stalled + 2 peers) and per-session
    // buffers stayed within the slow-client budget.
    assert!(
        outcome.ingest.sessions_peak >= 10,
        "expected ≥ 10 concurrent sessions, saw {}",
        outcome.ingest.sessions_peak
    );
}
