//! Liveness (Theorem 5) and its supporting lemmas, measured end to end.
//!
//! "For every valid transaction tx in the pool, there exists a time t
//! such that all honest validators awake for sufficiently long after t
//! deliver a log that includes tx."

use tob_svd::adversary::churn;
use tob_svd::protocol::{TobSimulationBuilder, TxWorkload};
use tob_svd::sim::compliance::{check, SleepyParams};
use tob_svd::sim::{CorruptionSchedule, WorstCaseDelay};
use tob_svd::types::{Delta, View};

#[test]
fn fault_free_chain_grows_every_view() {
    let report = TobSimulationBuilder::new(6)
        .views(15)
        .seed(1)
        .delay(Box::new(WorstCaseDelay))
        .run()
        .expect("runs");
    report.assert_safety();
    // Every view has a good leader; decisions lag proposals by 6Δ, so at
    // least views − 1 blocks are decided within the horizon.
    assert!(report.decided_blocks() >= report.views - 1);
    assert!((report.good_leader_fraction() - 1.0).abs() < f64::EPSILON);
}

#[test]
fn every_pooled_tx_confirms_under_good_leaders() {
    let report = TobSimulationBuilder::new(6)
        .views(12)
        .seed(2)
        .workload(TxWorkload::PerView { count: 3, size: 32 })
        .run()
        .expect("runs");
    report.assert_safety();
    // Txs for the final view may still be in flight; everything earlier
    // must be confirmed.
    let expected_min = (report.views - 2) * 3;
    assert!(
        report.report.confirmed.len() as u64 >= expected_min,
        "only {} of ≥{} txs confirmed",
        report.report.confirmed.len(),
        expected_min
    );
}

/// Regression pin for the paper's per-slot phase bound *and* the
/// event-driven engine: under full participation with no adversary,
/// every honest validator decides every view, every decided block lands
/// exactly 6Δ after its proposal (the grade-2 output time of its GA),
/// and the engine executes only O(phases) ticks. A regression to
/// tick-stepping would blow `Metrics::executed_ticks` up to the full
/// horizon and fail loudly here.
#[test]
fn good_case_decisions_meet_phase_bound_without_tick_stepping() {
    let views = 20u64;
    let report = TobSimulationBuilder::new(6)
        .views(views)
        .seed(8)
        .delay(Box::new(WorstCaseDelay))
        .run()
        .expect("runs");
    report.assert_safety();

    // Every honest validator individually decided every view (±1 for
    // the trailing horizon).
    for stats in report.validators.iter().flatten() {
        assert!(
            stats.decided_len >= views - 1,
            "{:?} fell behind: decided {} of {} views",
            stats.validator,
            stats.decided_len,
            views
        );
    }

    // Per-slot O(Δ) bound: each decided block is anchored exactly 6Δ
    // after its proposal time.
    let latencies = report.block_decision_latencies_deltas();
    assert!(!latencies.is_empty());
    for lat in &latencies {
        assert!(
            (*lat - 6.0).abs() < 1e-9,
            "good-case decision latency must be exactly 6Δ, got {lat}Δ"
        );
    }

    // Engine-shape regression guard: with worst-case delays all traffic
    // lands on phase boundaries (plus the senders' own next-tick
    // copies), so the event-driven engine executes ~2 ticks per phase.
    // Tick-stepping would execute every tick of the horizon.
    let m = &report.report.metrics;
    let phases = m.ticks / report.delta.ticks() + 1;
    assert!(
        m.executed_ticks <= 3 * phases,
        "engine executed {} of {} ticks (~{} phases) — tick-stepping regression?",
        m.executed_ticks,
        m.ticks,
        phases
    );
}

#[test]
fn liveness_under_rotating_churn() {
    let n = 10;
    let views = 24u64;
    let delta = Delta::default();
    let horizon = View::new(views + 1).start_time(delta);
    let schedule = churn::rotating_sleep(n, 5, 6 * delta.ticks(), horizon);
    // Verify the schedule is inside the TOB-SVD model before running.
    let params = SleepyParams::half(5 * delta.ticks(), 2 * delta.ticks());
    assert!(
        check(&schedule, &CorruptionSchedule::none(), params, horizon).is_none(),
        "rotating schedule must be compliant"
    );
    let report = TobSimulationBuilder::new(n)
        .views(views)
        .seed(3)
        .participation(schedule)
        .workload(TxWorkload::PerView { count: 2, size: 32 })
        .run()
        .expect("runs");
    report.assert_safety();
    assert!(
        report.decided_blocks() as f64 >= views as f64 * 0.5,
        "churned chain grew only {} blocks in {} views",
        report.decided_blocks(),
        views
    );
    assert!(!report.report.confirmed.is_empty());
}

#[test]
fn liveness_under_compliant_random_churn() {
    let n = 9;
    let views = 20u64;
    let delta = Delta::default();
    let horizon = View::new(views + 1).start_time(delta);
    let corruption = CorruptionSchedule::none();
    let params = SleepyParams::half(5 * delta.ticks(), 2 * delta.ticks());
    let schedule = churn::compliant_random_churn(
        n,
        horizon,
        4 * delta.ticks(),
        0.85,
        &corruption,
        params,
        11,
        100,
    )
    .expect("compliant schedule");
    let report = TobSimulationBuilder::new(n)
        .views(views)
        .seed(4)
        .participation(schedule)
        .workload(TxWorkload::PerView { count: 1, size: 32 })
        .run()
        .expect("runs");
    report.assert_safety();
    assert!(report.decided_blocks() > 0, "compliant churn must not halt the chain");
}

#[test]
fn sleeping_validator_catches_up_after_waking() {
    // Lemma 4 flavor: a validator that sleeps for several views and then
    // stays awake decides a log extending everything decided meanwhile.
    let n = 6;
    let views = 16u64;
    let delta = Delta::default();
    let mut schedule = tob_svd::sim::ParticipationSchedule::always_awake(n);
    // v5 sleeps views 4..10, awake before and after.
    let sleep_from = View::new(4).start_time(delta);
    let wake_at = View::new(10).start_time(delta);
    schedule.set_intervals(
        tob_svd::types::ValidatorId::new(5),
        vec![
            (tob_svd::types::Time::ZERO, sleep_from),
            (wake_at, View::new(views + 2).start_time(delta)),
        ],
    );
    let report = TobSimulationBuilder::new(n)
        .views(views)
        .seed(5)
        .participation(schedule)
        .run()
        .expect("runs");
    report.assert_safety();
    let lens: Vec<(u32, u64)> = report
        .validators
        .iter()
        .flatten()
        .map(|s| (s.validator.raw(), s.decided_len))
        .collect();
    let sleeper = lens.iter().find(|(v, _)| *v == 5).expect("v5 stats").1;
    let max = lens.iter().map(|(_, l)| *l).max().unwrap();
    assert!(
        max - sleeper <= 1,
        "woken validator should catch up: sleeper at {sleeper}, max {max} ({lens:?})"
    );
}

#[test]
fn decisions_follow_good_leader_views() {
    // Ground-truth cross-check: with worst-case delays and a split-brain
    // adversary, a block is decided for (at least) every good-leader view.
    use tob_svd::adversary::SplitBrainNode;
    use tob_svd::protocol::TobConfig;
    use tob_svd::types::ValidatorId;

    let n = 9;
    let byz = 4;
    let half_a: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect();
    let half_b: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 1).collect();
    let mut builder = TobSimulationBuilder::new(n)
        .views(40)
        .seed(6)
        .delay(Box::new(WorstCaseDelay));
    for v in ValidatorId::all(n).skip(n - byz) {
        let (a, b) = (half_a.clone(), half_b.clone());
        builder = builder.byzantine(
            v,
            Box::new(move |store| Box::new(SplitBrainNode::new(v, TobConfig::new(n), store, a, b))),
        );
    }
    let report = builder.run().expect("runs");
    report.assert_safety();
    let good_views = report.good_leaders.iter().filter(|(_, l)| l.is_some()).count() as u64;
    // Each good-leader view (except possibly the last two, whose
    // decisions fall past the horizon) contributes one decided block.
    assert!(
        report.decided_blocks() + 2 >= good_views,
        "decided {} blocks but {} views had good leaders",
        report.decided_blocks(),
        good_views
    );
}
