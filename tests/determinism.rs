//! Seed-determinism regression: two simulations built with identical
//! parameters must produce **byte-identical** decided logs, validator
//! by validator — block ids, proposers, views and transaction payloads
//! included. This pins down reproducibility before any performance
//! work touches the engine: a refactor that reorders RNG draws or
//! iteration over hash maps will flip these bytes and fail here, not
//! in a flaky downstream experiment.

use tob_svd::adversary::{churn, AdaptiveLeaderCorruptor, SplitBrainNode};
use tob_svd::protocol::{TobConfig, TobReport, TobSimulationBuilder, TxWorkload};
use tob_svd::sim::{AdvanceMode, CorruptionSchedule, WorstCaseDelay};
use tob_svd::types::{BlockStore, Delta, Log, Time, ValidatorId, View};

/// Serializes a decided log into a canonical byte transcript: length,
/// then per block (genesis excluded) the content-address digest,
/// proposer, view and every transaction payload. Two logs with equal
/// transcripts decided the same blocks in the same order.
fn log_transcript(out: &mut Vec<u8>, log: &Log, store: &BlockStore) {
    out.extend_from_slice(&log.len().to_be_bytes());
    let ids = store.chain_range(log.tip(), 1).expect("decided chain is stored");
    for id in ids {
        let block = store.get(id).expect("chain block stored");
        out.extend_from_slice(block.id().0.as_bytes());
        out.extend_from_slice(&block.proposer().expect("non-genesis").raw().to_be_bytes());
        out.extend_from_slice(&block.view().number().to_be_bytes());
        for tx in block.txs() {
            out.extend_from_slice(&(tx.payload().len() as u64).to_be_bytes());
            out.extend_from_slice(tx.payload());
        }
    }
}

/// The full determinism transcript of a report: every honest
/// validator's latest decision (id, tick, log bytes) plus the longest
/// decided log.
fn report_transcript(report: &TobReport) -> Vec<u8> {
    let mut out = Vec::new();
    for rec in &report.report.latest_decisions {
        out.extend_from_slice(&rec.validator.raw().to_be_bytes());
        out.extend_from_slice(&rec.at.ticks().to_be_bytes());
        log_transcript(&mut out, &rec.log, &report.store);
    }
    if let Some(longest) = &report.report.longest_decided {
        log_transcript(&mut out, longest, &report.store);
    }
    out
}

fn fault_free_run(seed: u64) -> TobReport {
    TobSimulationBuilder::new(7)
        .views(10)
        .seed(seed)
        .workload(TxWorkload::PerView { count: 2, size: 48 })
        .run()
        .expect("valid configuration")
}

fn adversarial_run(seed: u64) -> TobReport {
    let n = 9;
    let half_a: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect();
    let half_b: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 1).collect();
    let mut builder = TobSimulationBuilder::new(n)
        .views(12)
        .seed(seed)
        .workload(TxWorkload::PerView { count: 1, size: 32 })
        .delay(Box::new(WorstCaseDelay));
    for v in ValidatorId::all(n).skip(n - 3) {
        let (a, b) = (half_a.clone(), half_b.clone());
        let cfg = TobConfig::new(n);
        builder = builder.byzantine(
            v,
            Box::new(move |store| Box::new(SplitBrainNode::new(v, cfg, store, a, b))),
        );
    }
    builder.run().expect("valid configuration")
}

#[test]
fn fault_free_runs_are_byte_identical_per_seed() {
    for seed in [0u64, 7, 0xdead_beef] {
        let (r1, r2) = (fault_free_run(seed), fault_free_run(seed));
        r1.assert_safety();
        assert!(r1.decided_blocks() > 0, "seed {seed}: nothing decided");
        assert_eq!(
            report_transcript(&r1),
            report_transcript(&r2),
            "seed {seed}: two identical runs diverged"
        );
    }
}

#[test]
fn adversarial_runs_are_byte_identical_per_seed() {
    for seed in [1u64, 42] {
        let (r1, r2) = (adversarial_run(seed), adversarial_run(seed));
        r1.assert_safety();
        assert_eq!(
            report_transcript(&r1),
            report_transcript(&r2),
            "seed {seed}: adversarial runs diverged"
        );
    }
}

fn random_workload_run(seed: u64) -> TobReport {
    TobSimulationBuilder::new(7)
        .views(10)
        .seed(seed)
        .workload(TxWorkload::Random { total: 20, size: 40 })
        .run()
        .expect("valid configuration")
}

#[test]
fn transcript_is_seed_sensitive() {
    // The engine seed drives the random-workload submission times (and
    // the uniform delay draws), so different seeds should pack
    // different transactions into the decided blocks somewhere across a
    // batch of seeds. (Equality of a single pair would not be a bug, so
    // compare the whole batch.) Fault-free runs with the `PerView`
    // workload are intentionally seed-*insensitive* — leader election
    // is VRF-determined — which the identical-run tests above pin.
    let transcripts: Vec<Vec<u8>> =
        (0..4u64).map(|s| report_transcript(&random_workload_run(s))).collect();
    assert!(
        transcripts.windows(2).any(|w| w[0] != w[1]),
        "four different seeds produced identical transcripts — seed is being ignored"
    );
}

#[test]
fn random_workload_runs_are_byte_identical_per_seed() {
    let (r1, r2) = (random_workload_run(5), random_workload_run(5));
    r1.assert_safety();
    assert_eq!(report_transcript(&r1), report_transcript(&r2));
}

#[test]
fn metrics_and_leaders_are_deterministic_per_seed() {
    let (r1, r2) = (fault_free_run(11), fault_free_run(11));
    assert_eq!(r1.report.metrics.deliveries, r2.report.metrics.deliveries);
    assert_eq!(r1.report.metrics.bytes_delivered, r2.report.metrics.bytes_delivered);
    assert_eq!(r1.good_leaders, r2.good_leaders);
    assert_eq!(r1.report.final_time, r2.report.final_time);
}

// ---------------------------------------------------------------------
// Differential determinism: the event-driven engine vs the tick-loop
// reference. The two advance modes execute different *sets* of ticks but
// must produce byte-identical transcripts — same decided blocks, same
// decision times, same delivery/byte counts, same good-leader record —
// across randomized seeds, participation schedules, corruption
// schedules, delay policies and live controllers.
// ---------------------------------------------------------------------

/// Asserts a (mode-agnostic) full-report match between two runs and
/// that the event-driven run did no more work than the reference.
fn assert_reports_identical(ev: &TobReport, tl: &TobReport, what: &str) {
    assert_eq!(
        report_transcript(ev),
        report_transcript(tl),
        "{what}: decided-log transcripts diverged between advance modes"
    );
    assert_eq!(ev.report.final_time, tl.report.final_time, "{what}: final time");
    assert_eq!(ev.report.metrics.deliveries, tl.report.metrics.deliveries, "{what}: deliveries");
    assert_eq!(
        ev.report.metrics.bytes_delivered, tl.report.metrics.bytes_delivered,
        "{what}: bytes"
    );
    assert_eq!(ev.report.metrics.buffered, tl.report.metrics.buffered, "{what}: buffered");
    assert_eq!(ev.report.metrics.dropped, tl.report.metrics.dropped, "{what}: dropped");
    assert_eq!(ev.report.metrics.decisions, tl.report.metrics.decisions, "{what}: decisions");
    assert_eq!(ev.report.metrics.ticks, tl.report.metrics.ticks, "{what}: horizon");
    assert_eq!(ev.good_leaders, tl.good_leaders, "{what}: good-leader record");
    assert_eq!(ev.report.confirmed.len(), tl.report.confirmed.len(), "{what}: confirmations");
    assert!(
        ev.report.metrics.executed_ticks <= tl.report.metrics.executed_ticks,
        "{what}: event-driven engine executed more ticks than the tick loop"
    );
}

/// A randomized sleepy-model run: seed-derived random churn, a
/// seed-derived corruption schedule, and a random transaction workload.
fn randomized_sleepy_run(seed: u64, mode: AdvanceMode) -> TobReport {
    let n = 8usize;
    let views = 10u64;
    let delta = Delta::default();
    let horizon = View::new(views + 1).start_time(delta);
    let participation =
        churn::random_churn(n, horizon, 2 * delta.ticks(), 0.8, seed ^ 0xfeed_f00d);
    let mut corruption = CorruptionSchedule::none();
    // Two seed-derived mid-run corruptions (mild adaptivity applies).
    for k in 0..2u64 {
        let v = ValidatorId::new(((seed + 3 * k) % n as u64) as u32);
        corruption.schedule(v, Time::new(24 + (seed % 5 + k) * 16), delta);
    }
    TobSimulationBuilder::new(n)
        .views(views)
        .seed(seed)
        .advance(mode)
        .workload(TxWorkload::Random { total: 24, size: 32 })
        .participation(participation)
        .corruption(corruption)
        .run()
        .expect("valid configuration")
}

#[test]
fn event_driven_matches_tick_loop_under_randomized_churn_and_corruption() {
    for seed in [0u64, 1, 2, 7, 42, 0xdead_beef] {
        let ev = randomized_sleepy_run(seed, AdvanceMode::EventDriven);
        let tl = randomized_sleepy_run(seed, AdvanceMode::TickLoop);
        assert_reports_identical(&ev, &tl, &format!("churn+corruption seed {seed}"));
    }
}

fn adversarial_mode_run(seed: u64, mode: AdvanceMode) -> TobReport {
    let n = 9;
    let half_a: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect();
    let half_b: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 1).collect();
    let mut builder = TobSimulationBuilder::new(n)
        .views(8)
        .seed(seed)
        .advance(mode)
        .workload(TxWorkload::PerView { count: 1, size: 32 })
        .delay(Box::new(WorstCaseDelay));
    for v in ValidatorId::all(n).skip(n - 3) {
        let (a, b) = (half_a.clone(), half_b.clone());
        let cfg = TobConfig::new(n);
        builder = builder.byzantine(
            v,
            Box::new(move |store| Box::new(SplitBrainNode::new(v, cfg, store, a, b))),
        );
    }
    builder.run().expect("valid configuration")
}

#[test]
fn event_driven_matches_tick_loop_under_split_brain_equivocation() {
    for seed in [1u64, 42] {
        let ev = adversarial_mode_run(seed, AdvanceMode::EventDriven);
        let tl = adversarial_mode_run(seed, AdvanceMode::TickLoop);
        ev.assert_safety();
        assert_reports_identical(&ev, &tl, &format!("split-brain seed {seed}"));
    }
}

fn live_controller_run(seed: u64, mode: AdvanceMode) -> TobReport {
    // The Lemma 2 adversary exercises the controller command path
    // (reactive corruption via next_wakeup-less traffic observation).
    TobSimulationBuilder::new(7)
        .views(8)
        .seed(seed)
        .advance(mode)
        .workload(TxWorkload::PerView { count: 1, size: 24 })
        .controller(Box::new(AdaptiveLeaderCorruptor::new(Delta::default(), 2)))
        .run()
        .expect("valid configuration")
}

#[test]
fn event_driven_matches_tick_loop_with_live_adversary_controller() {
    for seed in [3u64, 9] {
        let ev = live_controller_run(seed, AdvanceMode::EventDriven);
        let tl = live_controller_run(seed, AdvanceMode::TickLoop);
        assert_reports_identical(&ev, &tl, &format!("live controller seed {seed}"));
    }
}

fn recovery_mode_run(seed: u64, mode: AdvanceMode) -> TobReport {
    // Practical sleep semantics: dropped messages + recovery protocol.
    let n = 6usize;
    let views = 8u64;
    let delta = Delta::default();
    let horizon = View::new(views + 1).start_time(delta);
    let participation = churn::rotating_sleep(n, 3, 4 * delta.ticks(), horizon);
    TobSimulationBuilder::new(n)
        .views(views)
        .seed(seed)
        .advance(mode)
        .drop_while_asleep(true)
        .recovery(true)
        .participation(participation)
        .workload(TxWorkload::PerView { count: 1, size: 16 })
        .run()
        .expect("valid configuration")
}

#[test]
fn event_driven_matches_tick_loop_with_drop_while_asleep_recovery() {
    for seed in [5u64, 11] {
        let ev = recovery_mode_run(seed, AdvanceMode::EventDriven);
        let tl = recovery_mode_run(seed, AdvanceMode::TickLoop);
        assert_reports_identical(&ev, &tl, &format!("recovery seed {seed}"));
    }
}

/// A deep sleeper (past the recovery archive window) forces the
/// delta-sync fetch subprotocol to carry the catch-up: this run has
/// real `BlockRequest`/`BlockResponse` traffic, and both advance modes
/// must agree on every byte of it.
fn fetch_heavy_run(seed: u64, mode: AdvanceMode) -> TobReport {
    let n = 6usize;
    let views = 14u64;
    let delta = Delta::default();
    let view_ticks = 4 * delta.ticks();
    let mut sched = tob_svd::sim::ParticipationSchedule::always_awake(n);
    sched.set_intervals(
        ValidatorId::new(0),
        vec![
            (Time::ZERO, Time::new(3 * delta.ticks())),
            (Time::new(6 * view_ticks), Time::new((views + 2) * view_ticks)),
        ],
    );
    TobSimulationBuilder::new(n)
        .views(views)
        .seed(seed)
        .advance(mode)
        .drop_while_asleep(true)
        .recovery(true)
        .participation(sched)
        .workload(TxWorkload::PerView { count: 1, size: 24 })
        .run()
        .expect("valid configuration")
}

#[test]
fn event_driven_matches_tick_loop_with_delta_sync_fetch_traffic() {
    for seed in [2u64, 13] {
        let ev = fetch_heavy_run(seed, AdvanceMode::EventDriven);
        let tl = fetch_heavy_run(seed, AdvanceMode::TickLoop);
        assert!(
            ev.report.metrics.block_request_broadcasts > 0
                && ev.report.metrics.block_response_broadcasts > 0,
            "seed {seed}: the run must actually exercise the fetch subprotocol"
        );
        assert_reports_identical(&ev, &tl, &format!("delta-sync fetch seed {seed}"));
        // The fetch plane itself is pinned byte-for-byte too.
        let (evm, tlm) = (&ev.report.metrics, &tl.report.metrics);
        assert_eq!(evm.block_request_broadcasts, tlm.block_request_broadcasts);
        assert_eq!(evm.block_response_broadcasts, tlm.block_response_broadcasts);
        assert_eq!(evm.block_request_bytes, tlm.block_request_bytes);
        assert_eq!(evm.block_response_bytes, tlm.block_response_bytes);
        assert_eq!(evm.inline_equiv_bytes, tlm.inline_equiv_bytes);
    }
}
