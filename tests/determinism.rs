//! Seed-determinism regression: two simulations built with identical
//! parameters must produce **byte-identical** decided logs, validator
//! by validator — block ids, proposers, views and transaction payloads
//! included. This pins down reproducibility before any performance
//! work touches the engine: a refactor that reorders RNG draws or
//! iteration over hash maps will flip these bytes and fail here, not
//! in a flaky downstream experiment.

use tob_svd::adversary::SplitBrainNode;
use tob_svd::protocol::{TobConfig, TobReport, TobSimulationBuilder, TxWorkload};
use tob_svd::sim::WorstCaseDelay;
use tob_svd::types::{BlockStore, Log, ValidatorId};

/// Serializes a decided log into a canonical byte transcript: length,
/// then per block (genesis excluded) the content-address digest,
/// proposer, view and every transaction payload. Two logs with equal
/// transcripts decided the same blocks in the same order.
fn log_transcript(out: &mut Vec<u8>, log: &Log, store: &BlockStore) {
    out.extend_from_slice(&log.len().to_be_bytes());
    let ids = store.chain_range(log.tip(), 1).expect("decided chain is stored");
    for id in ids {
        let block = store.get(id).expect("chain block stored");
        out.extend_from_slice(block.id().0.as_bytes());
        out.extend_from_slice(&block.proposer().expect("non-genesis").raw().to_be_bytes());
        out.extend_from_slice(&block.view().number().to_be_bytes());
        for tx in block.txs() {
            out.extend_from_slice(&(tx.payload().len() as u64).to_be_bytes());
            out.extend_from_slice(tx.payload());
        }
    }
}

/// The full determinism transcript of a report: every honest
/// validator's latest decision (id, tick, log bytes) plus the longest
/// decided log.
fn report_transcript(report: &TobReport) -> Vec<u8> {
    let mut out = Vec::new();
    for rec in &report.report.latest_decisions {
        out.extend_from_slice(&rec.validator.raw().to_be_bytes());
        out.extend_from_slice(&rec.at.ticks().to_be_bytes());
        log_transcript(&mut out, &rec.log, &report.store);
    }
    if let Some(longest) = &report.report.longest_decided {
        log_transcript(&mut out, longest, &report.store);
    }
    out
}

fn fault_free_run(seed: u64) -> TobReport {
    TobSimulationBuilder::new(7)
        .views(10)
        .seed(seed)
        .workload(TxWorkload::PerView { count: 2, size: 48 })
        .run()
        .expect("valid configuration")
}

fn adversarial_run(seed: u64) -> TobReport {
    let n = 9;
    let half_a: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect();
    let half_b: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 1).collect();
    let mut builder = TobSimulationBuilder::new(n)
        .views(12)
        .seed(seed)
        .workload(TxWorkload::PerView { count: 1, size: 32 })
        .delay(Box::new(WorstCaseDelay));
    for v in ValidatorId::all(n).skip(n - 3) {
        let (a, b) = (half_a.clone(), half_b.clone());
        let cfg = TobConfig::new(n);
        builder = builder.byzantine(
            v,
            Box::new(move |store| Box::new(SplitBrainNode::new(v, cfg, store, a, b))),
        );
    }
    builder.run().expect("valid configuration")
}

#[test]
fn fault_free_runs_are_byte_identical_per_seed() {
    for seed in [0u64, 7, 0xdead_beef] {
        let (r1, r2) = (fault_free_run(seed), fault_free_run(seed));
        r1.assert_safety();
        assert!(r1.decided_blocks() > 0, "seed {seed}: nothing decided");
        assert_eq!(
            report_transcript(&r1),
            report_transcript(&r2),
            "seed {seed}: two identical runs diverged"
        );
    }
}

#[test]
fn adversarial_runs_are_byte_identical_per_seed() {
    for seed in [1u64, 42] {
        let (r1, r2) = (adversarial_run(seed), adversarial_run(seed));
        r1.assert_safety();
        assert_eq!(
            report_transcript(&r1),
            report_transcript(&r2),
            "seed {seed}: adversarial runs diverged"
        );
    }
}

fn random_workload_run(seed: u64) -> TobReport {
    TobSimulationBuilder::new(7)
        .views(10)
        .seed(seed)
        .workload(TxWorkload::Random { total: 20, size: 40 })
        .run()
        .expect("valid configuration")
}

#[test]
fn transcript_is_seed_sensitive() {
    // The engine seed drives the random-workload submission times (and
    // the uniform delay draws), so different seeds should pack
    // different transactions into the decided blocks somewhere across a
    // batch of seeds. (Equality of a single pair would not be a bug, so
    // compare the whole batch.) Fault-free runs with the `PerView`
    // workload are intentionally seed-*insensitive* — leader election
    // is VRF-determined — which the identical-run tests above pin.
    let transcripts: Vec<Vec<u8>> =
        (0..4u64).map(|s| report_transcript(&random_workload_run(s))).collect();
    assert!(
        transcripts.windows(2).any(|w| w[0] != w[1]),
        "four different seeds produced identical transcripts — seed is being ignored"
    );
}

#[test]
fn random_workload_runs_are_byte_identical_per_seed() {
    let (r1, r2) = (random_workload_run(5), random_workload_run(5));
    r1.assert_safety();
    assert_eq!(report_transcript(&r1), report_transcript(&r2));
}

#[test]
fn metrics_and_leaders_are_deterministic_per_seed() {
    let (r1, r2) = (fault_free_run(11), fault_free_run(11));
    assert_eq!(r1.report.metrics.deliveries, r2.report.metrics.deliveries);
    assert_eq!(r1.report.metrics.bytes_delivered, r2.report.metrics.bytes_delivered);
    assert_eq!(r1.good_leaders, r2.good_leaders);
    assert_eq!(r1.report.final_time, r2.report.final_time);
}
