//! The kitchen-sink scenario: churn + Byzantine split-brains + an
//! adaptive leader corruptor + adversarial delays, over a long run —
//! every guarantee the paper makes, checked at once, with the realized
//! schedules verified against Condition (1).

use tob_svd::adversary::{churn, AdaptiveLeaderCorruptor, SplitBrainNode};
use tob_svd::protocol::{TobConfig, TobSimulationBuilder, TxWorkload};
use tob_svd::sim::compliance::{check, SleepyParams};
use tob_svd::sim::{CorruptionSchedule, WorstCaseDelay};
use tob_svd::types::{Delta, ValidatorId, View};

#[test]
fn combined_adversary_long_run() {
    let n = 12;
    let views = 30u64;
    let delta = Delta::default();
    let horizon = View::new(views + 1).start_time(delta);

    // 3 split-brain Byzantine from genesis + a controller that corrupts
    // up to 2 more leaders adaptively: 5 < 6 ≤ h keeps the run inside
    // the model (checked below on the realized schedules).
    let static_byz = 3usize;
    let adaptive_budget = 2usize;

    let genesis_corr = CorruptionSchedule::from_genesis(
        ValidatorId::all(n).skip(n - static_byz),
    );
    let params = SleepyParams::half(5 * delta.ticks(), 2 * delta.ticks());
    // Churn only the first 6 validators (the certain-honest ones) so the
    // pre-check can use the genesis corruption; the adaptive corruptor's
    // picks are re-checked post-hoc.
    let mut schedule = churn::compliant_random_churn(
        n,
        horizon,
        6 * delta.ticks(),
        0.9,
        &genesis_corr,
        params,
        77,
        100,
    )
    .expect("compliant churn exists");
    // Keep the last six always awake for margin against adaptive picks.
    for v in ValidatorId::all(n).skip(6) {
        schedule.set_intervals(v, vec![(tob_svd::types::Time::ZERO, horizon + 1)]);
    }

    let half_a: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect();
    let half_b: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 1).collect();
    let mut builder = TobSimulationBuilder::new(n)
        .views(views)
        .seed(99)
        .participation(schedule)
        .workload(TxWorkload::Random { total: 60, size: 48 })
        .delay(Box::new(WorstCaseDelay))
        .controller(Box::new(AdaptiveLeaderCorruptor::new(delta, adaptive_budget)))
        .byzantine_replacements(Box::new(|_, _| Box::new(tob_svd::adversary::SilentNode)));
    for v in ValidatorId::all(n).skip(n - static_byz) {
        let (a, b) = (half_a.clone(), half_b.clone());
        builder = builder.byzantine(
            v,
            Box::new(move |store| Box::new(SplitBrainNode::new(v, TobConfig::new(n), store, a, b))),
        );
    }

    let report = builder.run().expect("runs");

    // 1. Safety under everything at once.
    report.assert_safety();

    // 2. Liveness: the chain grows substantially.
    assert!(
        report.decided_blocks() as f64 >= views as f64 * 0.3,
        "only {} blocks in {} views",
        report.decided_blocks(),
        views
    );

    // 3. Transactions confirm.
    assert!(
        report.report.confirmed.len() >= 30,
        "only {} txs confirmed",
        report.report.confirmed.len()
    );

    // 4. Validators agree (within catching-up distance).
    let lens: Vec<u64> = report.validators.iter().flatten().map(|s| s.decided_len).collect();
    let max = *lens.iter().max().expect("honest validators exist");
    for l in &lens {
        assert!(max - l <= 2, "validator too far behind: {lens:?}");
    }

    // 5. Good leaders still above ½ of views (Lemma 2 under combined
    // adversary).
    assert!(
        report.good_leader_fraction() > 0.5,
        "good-leader fraction {:.2} ≤ 1/2",
        report.good_leader_fraction()
    );
}

#[test]
fn compliance_is_necessary_not_just_sufficient_for_these_runs() {
    // The same combined scenario but with corruption pushed past the
    // bound fails the compliance pre-check — the experiments above
    // genuinely sit inside the model rather than being trivially safe.
    let n = 12;
    let delta = Delta::default();
    let params = SleepyParams::half(5 * delta.ticks(), 2 * delta.ticks());
    let part = tob_svd::sim::ParticipationSchedule::always_awake(n);
    let over = CorruptionSchedule::from_genesis(ValidatorId::all(n).skip(n - 6));
    assert!(check(&part, &over, params, tob_svd::types::Time::new(500)).is_some());
}
