//! Wire-byte budget regression for the delta-sync message plane.
//!
//! Every delivered copy is charged its exact wire encoding
//! (`wire::encoded_len`), and the same run accumulates what the
//! pre-delta-sync full-chain codec would have shipped
//! (`Metrics::inline_equiv_bytes`). Two pins keep the refactor honest:
//!
//! * the savings ratio stays ≥ 5× (the acceptance bar of the delta-sync
//!   refactor; at this scale it measures ~20×, growing with horizon
//!   because inline chains are O(views) per message);
//! * absolute wire bytes per decided block stay under a fixed budget,
//!   so an accidental return to chain inlining — or an announcement
//!   format regression — fails loudly rather than silently bloating
//!   every run.
//!
//! The budget is calibrated from a measured ~1.09 MB/block at this
//! configuration (n=8, 60 views, 4×128B txs per view; gossip
//! amplification makes this O(n³) deliveries per view) with ~50%
//! headroom. The inline-equivalent accounting measures ~23 MB/block, so
//! the two bounds cannot both hold for an inlining regression.

use tob_svd::protocol::{TobSimulationBuilder, TxWorkload};

/// Wire bytes per decided block allowed at this configuration.
const BYTES_PER_BLOCK_BUDGET: f64 = 1.7e6;

/// Minimum delta-sync saving vs the full-chain codec.
const MIN_SAVINGS_RATIO: f64 = 5.0;

#[test]
fn wire_bytes_per_decided_block_stay_under_budget() {
    let report = TobSimulationBuilder::new(8)
        .views(60)
        .seed(5)
        .workload(TxWorkload::PerView { count: 4, size: 128 })
        .run()
        .expect("runs");
    report.assert_safety();
    let m = &report.report.metrics;
    let blocks = report.decided_blocks();
    assert!(blocks >= 58, "fault-free run must decide nearly every view, got {blocks}");

    let per_block = m.bytes_delivered as f64 / blocks as f64;
    assert!(
        per_block <= BYTES_PER_BLOCK_BUDGET,
        "wire bytes per decided block {per_block:.0} exceed the {BYTES_PER_BLOCK_BUDGET:.0} budget \
         (inline-chain regression?)"
    );

    let ratio = m.inline_equiv_bytes as f64 / m.bytes_delivered as f64;
    assert!(
        ratio >= MIN_SAVINGS_RATIO,
        "delta-sync saving collapsed: {ratio:.1}x < {MIN_SAVINGS_RATIO}x \
         ({} wire bytes vs {} inline-equivalent)",
        m.bytes_delivered,
        m.inline_equiv_bytes
    );

    // Per-kind accounting is complete: the kind counters tile the total.
    let tiled = m.log_bytes
        + m.proposal_bytes
        + m.vote_bytes
        + m.recovery_bytes
        + m.finality_bytes
        + m.block_request_bytes
        + m.block_response_bytes
        + m.certificate_bytes;
    assert_eq!(tiled, m.bytes_delivered, "per-kind byte counters must tile bytes_delivered");

    // A fault-free always-awake run needs no fetches at all: the
    // subprotocol must stay silent rather than add background chatter.
    assert_eq!(m.block_request_broadcasts, 0);
    assert_eq!(m.block_response_broadcasts, 0);
}

/// Announcements must not grow with the chain: the average delivered
/// bytes of the last 10 views' traffic match the first 10 views' (same
/// per-view message mix, constant per-message size), which is exactly
/// what full-chain inlining breaks.
#[test]
fn per_view_wire_bytes_are_flat_over_the_horizon() {
    let run_views = |views: u64| {
        let report = TobSimulationBuilder::new(6)
            .views(views)
            .seed(7)
            .workload(TxWorkload::PerView { count: 2, size: 64 })
            .run()
            .expect("runs");
        report.report.metrics.bytes_delivered
    };
    let short = run_views(10);
    let long = run_views(40);
    // 4x the views ⇒ ~4x the bytes under delta sync (±20% for warm-up
    // and horizon edges). Inline chains would give ~O(views²) growth:
    // the long run would cost ≳ 10x the short one.
    let growth = long as f64 / short as f64;
    assert!(
        (3.2..=5.0).contains(&growth),
        "wire bytes must grow linearly with the horizon, got {growth:.2}x for 4x views"
    );
}
