//! The §4 experiment: the background Momose–Ren GA counts equivocations
//! in its support sets (`X_Λ`) and vote tallies, which costs it
//! **Uniqueness at grade 0** — a single honest validator can output two
//! conflicting logs. The paper's 2-grade GA (Figure 1) closes exactly
//! this gap by erasing equivocators and time-shifting the equivocator
//! set. Both claims are exhibited on the same adversarial scenario.

use tob_svd::adversary::GaEquivocator;
use tob_svd::ga::{GaHarness, GaKind};
use tob_svd::sim::{BestCaseDelay, SimConfig};
use tob_svd::types::{InstanceId, Log, Time, ValidatorId, View};

/// Two honest validators split across branches + two Byzantine
/// validators that equivocate both branches to everyone.
fn build(kind: GaKind, seed: u64) -> (tob_svd::ga::GaRunResult, Log, Log) {
    let n = 4;
    let cfg = SimConfig::new(n).with_seed(seed);
    let mut h = GaHarness::new(cfg, kind);
    let store = h.store().clone();
    let g = Log::genesis(&store);
    let a = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
    let b = g.extend_empty(&store, ValidatorId::new(9), View::new(1));
    let all: Vec<ValidatorId> = ValidatorId::all(n).collect();

    h.input(ValidatorId::new(0), a);
    h.input(ValidatorId::new(1), b);
    for byz in [2u32, 3] {
        h.byzantine(
            ValidatorId::new(byz),
            Box::new(GaEquivocator::new(
                ValidatorId::new(byz),
                InstanceId(0),
                Time::ZERO,
                a,
                all.clone(),
                b,
                all.clone(),
            )),
        );
    }
    h.delay(Box::new(BestCaseDelay));
    (h.run(), a, b)
}

#[test]
fn mr_ga_outputs_conflicting_logs_at_grade_0() {
    let (result, a, b) = build(GaKind::Mr, 3);
    // X_a = {v0, v2, v3} and X_b = {v1, v2, v3}, both majorities of
    // S = 4, so honest validators vote for both branches; the vote tally
    // then counts each (equivocating) voter toward both branches while
    // the denominator counts voters once → both branches pass.
    let honest0 = &result.mr_grade0[0];
    assert!(
        honest0.len() >= 2,
        "expected conflicting grade-0 outputs, got {honest0:?}"
    );
    let has_conflict = honest0
        .iter()
        .any(|x| honest0.iter().any(|y| x.conflicts(y, &result.store)));
    assert!(has_conflict, "outputs must conflict: {honest0:?}");
    assert!(honest0.contains(&a));
    assert!(honest0.contains(&b));
}

#[test]
fn figure1_ga_preserves_uniqueness_on_the_same_attack() {
    let (result, a, b) = build(GaKind::Two, 3);
    // The 2-grade GA erases equivocators from V: each honest validator
    // sees one vote per branch (2·1 ≤ 4) and the shared genesis prefix
    // at best — never two conflicting outputs.
    for i in 0..2 {
        let out = result.outputs[i][0];
        if let Some(out) = out {
            assert!(
                !out.conflicts(&a, &result.store) || !out.conflicts(&b, &result.store),
                "v{i} grade-0 output {out} conflicts with both branches"
            );
            assert_eq!(out.len(), 1, "only genesis can pass for v{i}, got {out}");
        }
        // Grade 1 likewise.
        assert!(
            result.outputs[i][1].map(|o| o.len()).unwrap_or(1) <= 1,
            "no branch may reach grade 1"
        );
    }
}

#[test]
fn gap_needs_equivocation_counting_not_just_byzantines() {
    // Control experiment: the same two Byzantine validators voting *one*
    // branch consistently (no equivocation) do not create conflicting
    // grade-0 outputs in the MR GA — the gap is specifically about
    // counting equivocations.
    let n = 4;
    let cfg = SimConfig::new(n).with_seed(7);
    let mut h = GaHarness::new(cfg, GaKind::Mr);
    let store = h.store().clone();
    let g = Log::genesis(&store);
    let a = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
    let b = g.extend_empty(&store, ValidatorId::new(9), View::new(1));
    let all: Vec<ValidatorId> = ValidatorId::all(n).collect();
    h.input(ValidatorId::new(0), a);
    h.input(ValidatorId::new(1), b);
    for byz in [2u32, 3] {
        h.byzantine(
            ValidatorId::new(byz),
            Box::new(GaEquivocator::new(
                ValidatorId::new(byz),
                InstanceId(0),
                Time::ZERO,
                a,
                all.clone(),
                a, // same branch to everyone: no equivocation
                Vec::new(),
            )),
        );
    }
    h.delay(Box::new(BestCaseDelay));
    let result = h.run();
    for i in 0..2 {
        let outs = &result.mr_grade0[i];
        for x in outs {
            for y in outs {
                assert!(
                    x.compatible(y, &result.store),
                    "v{i}: consistent byz votes must not create conflicts: {outs:?}"
                );
            }
        }
    }
}
