//! Crash-restart determinism properties of the durable storage plane.
//!
//! The paper's sleepy model lets validators *sleep*; a real deployment
//! also has to survive *dying*. The durable plane (append-only CRC
//! WAL + periodic snapshot checkpoints) turns a kill into a long nap:
//! the restart incarnation reloads snapshot + WAL suffix, replays it
//! into a fresh store, and closes the remaining gap over the §2
//! recovery broadcast and the delta-sync fetch plane. These tests pin
//! the properties that make that safe to rely on:
//!
//! * identical write sequences produce **byte-identical** durable
//!   images, on disk and in memory — recovery is a pure function of
//!   the decided prefix, not of incidental process state;
//! * a validator killed mid-run and restarted from its durable image
//!   re-converges with the network;
//! * whole crash-restart simulations are deterministic: two executions
//!   of the same configuration agree on every per-validator counter.

use tob_svd::protocol::TobSimulationBuilder;
use tob_svd::sim::StateFault;
use tob_svd::storage::{
    replay_into, BlockRecord, DurableStore, FileDurable, MemDurable, Snapshot, WalRecord,
};
use tob_svd::types::{BlockStore, Time, Transaction, ValidatorId, View};

/// A synthetic decided chain of `len` blocks beyond genesis,
/// parent-first — the image a validator deciding `len` views persists.
fn chain_records(len: u64) -> Vec<BlockRecord> {
    let store = BlockStore::new();
    let mut parent = store.genesis();
    let mut records = Vec::with_capacity(len as usize);
    for i in 0..len {
        let proposer = ValidatorId::new((i as u32) % 5);
        let view = View::new(i);
        let txs = vec![Transaction::synthetic(i, 48)];
        let id = store.append(parent, proposer, view, txs.clone()).expect("chain extends");
        records.push(BlockRecord { parent, expected_id: id, proposer, view, txs });
        parent = id;
    }
    records
}

/// Writes `records` the way the validator's persist hook does: per
/// decided block one `Block` + one `Decided` append and a sync, with a
/// full-chain snapshot every `snapshot_every` blocks (0 = WAL only).
fn write_decided(backend: &mut dyn DurableStore, records: &[BlockRecord], snapshot_every: u64) {
    for (i, rec) in records.iter().enumerate() {
        let len = i as u64 + 2;
        backend.append(&WalRecord::Block(rec.clone())).expect("append");
        backend.append(&WalRecord::Decided { tip: rec.expected_id, len }).expect("marker");
        backend.sync().expect("sync");
        if snapshot_every > 0 && (i as u64 + 1) % snapshot_every == 0 {
            let snapshot =
                Snapshot { tip: rec.expected_id, len, blocks: records[..=i].to_vec() };
            backend.install_snapshot(&snapshot).expect("snapshot");
        }
    }
}

#[test]
fn identical_write_sequences_yield_byte_identical_images() {
    let tmp = std::env::temp_dir().join(format!("tobsvd-crash-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let records = chain_records(40);

    // Two independent file backends fed the same sequence...
    let mut images = Vec::new();
    for side in ["a", "b"] {
        let dir = tmp.join(side);
        let mut backend = FileDurable::open(&dir).expect("open");
        write_decided(&mut backend, &records, 16);
        let wal = std::fs::read(dir.join("wal.log")).expect("wal readable");
        let snapshot = std::fs::read(dir.join("snapshot.bin")).expect("snapshot readable");
        images.push((wal, snapshot));
    }
    assert_eq!(images[0].0, images[1].0, "WAL images must be byte-identical");
    assert_eq!(images[0].1, images[1].1, "snapshot images must be byte-identical");
    assert!(!images[0].0.is_empty(), "the WAL suffix past the checkpoint is non-empty");
    assert!(!images[0].1.is_empty());

    // ...and the in-memory backend shares the exact encoding, so its
    // image sizes match the on-disk ones byte for byte.
    let mut mem = MemDurable::new();
    write_decided(&mut mem, &records, 16);
    assert_eq!(mem.wal_bytes(), images[0].0.len());
    assert_eq!(mem.snapshot_bytes(), images[0].1.len());

    // The image round-trips: load + replay rebuilds the full prefix.
    let recovered = FileDurable::open(&tmp.join("a")).expect("reopen").load().expect("load");
    let replayed = replay_into(&BlockStore::new(), &recovered);
    assert_eq!(replayed.decided_len, 41);
    assert_eq!(replayed.skipped, 0);
    assert!(replayed.beyond.is_none());

    let _ = std::fs::remove_dir_all(&tmp);
}

/// One simulated kill/restart: validator 1 goes down at `at` for
/// `down` ticks, restarting from its durable snapshot + WAL.
fn crash_run(seed: u64, at: u64, down: u64) -> tob_svd::protocol::TobReport {
    let report = TobSimulationBuilder::new(5)
        .views(14)
        .seed(seed)
        .recovery(true)
        .drop_while_asleep(true)
        .snapshot_every(4)
        .crash_restart(ValidatorId::new(1), Time::new(at), Time::new(at + down))
        .run()
        .expect("crash scenario runs");
    report.assert_safety();
    report
}

#[test]
fn killed_validator_resumes_from_snapshot_plus_wal_and_reconverges() {
    // Kill ticks spread across the run (derived from the seed, fixed
    // forever): early, mid-view, and late-but-with-room-to-recover.
    for (seed, at) in [(3u64, 71u64), (11, 163), (27, 229)] {
        let report = crash_run(seed, at, 64);
        assert_eq!(report.report.metrics.crashes, 1, "seed {seed}");
        let restarted = report.validators[1].expect("restarted slot reports stats");
        assert_eq!(restarted.wal_errors, 0, "seed {seed}: durable plane must stay clean");
        assert!(
            restarted.persisted_len > 1,
            "seed {seed}: decisions must have been durably persisted"
        );
        let max = report.max_decided_len();
        assert!(
            restarted.decided_len + 2 >= max,
            "seed {seed}: restarted validator ended at {} of {max}",
            restarted.decided_len
        );
        // The network never stalls for the dead node.
        assert!(report.decided_blocks() >= report.views - 2, "seed {seed}");
    }
}

/// The combined fault: bit rot strikes validator 1's durable image
/// (snapshot checkpoint bit-flipped, WAL bit-flipped *and* tail torn)
/// shortly before the process is killed. The restart incarnation must
/// recover the clean prefix — corrupt checkpoint dropped, undecodable
/// WAL suffix truncated — and close the rest of the gap over the §2
/// recovery broadcast and the delta-sync fetch plane.
fn corrupted_crash_run(seed: u64) -> tob_svd::protocol::TobReport {
    let v = ValidatorId::new(1);
    let report = TobSimulationBuilder::new(5)
        .views(14)
        .seed(seed)
        .recovery(true)
        .drop_while_asleep(true)
        .snapshot_every(4)
        .state_fault(v, Time::new(100), StateFault::SnapshotBitFlip { byte: 9, bit: 5 })
        .state_fault(v, Time::new(101), StateFault::WalBitFlip { byte: 40, bit: 2 })
        .state_fault(v, Time::new(102), StateFault::WalTear { bytes: 11 })
        .crash_restart(v, Time::new(117), Time::new(197))
        .run()
        .expect("combined crash+corruption scenario runs");
    report.assert_safety();
    report
}

#[test]
fn killed_validator_with_shredded_image_recovers_clean_prefix_and_reconverges() {
    for seed in [5u64, 19, 42] {
        let report = corrupted_crash_run(seed);
        assert_eq!(report.report.metrics.crashes, 1, "seed {seed}");
        let restarted = report.validators[1].expect("restarted slot reports stats");
        // Torn/corrupt bytes degrade recovery; they are never I/O errors
        // (and never panics).
        assert_eq!(restarted.wal_errors, 0, "seed {seed}: corruption must not error");
        let max = report.max_decided_len();
        assert!(
            restarted.decided_len + 2 >= max,
            "seed {seed}: shredded-image restart ended at {} of {max}",
            restarted.decided_len
        );
        // The network never stalls for the corrupted node.
        assert!(report.decided_blocks() >= report.views - 2, "seed {seed}");
    }
}

#[test]
fn corrupted_image_recovery_rebuilds_a_byte_identical_eventual_store() {
    let tmp = std::env::temp_dir().join(format!("tobsvd-corrupt-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let records = chain_records(40);

    // Baseline image `a` and victim image `b`: identical write sequence.
    let (dir_a, dir_b) = (tmp.join("a"), tmp.join("b"));
    for dir in [&dir_a, &dir_b] {
        let mut backend = FileDurable::open(dir).expect("open");
        write_decided(&mut backend, &records, 16);
    }

    // The universe mangles `b`: one bit flipped inside the snapshot
    // checkpoint, and the last WAL bytes torn off mid-record.
    let snap_path = dir_b.join("snapshot.bin");
    let mut snap = std::fs::read(&snap_path).expect("snapshot readable");
    snap[12] ^= 0x08;
    std::fs::write(&snap_path, &snap).expect("snapshot rewritable");
    let wal_path = dir_b.join("wal.log");
    let wal = std::fs::read(&wal_path).expect("wal readable");
    std::fs::write(&wal_path, &wal[..wal.len() - 9]).expect("wal rewritable");

    // Recovery degrades, never fails: the corrupt checkpoint is dropped
    // and the torn suffix truncated, leaving a clean decodable prefix.
    let recovered = FileDurable::open(&dir_b).expect("reopen").load().expect("load succeeds");
    assert!(recovered.snapshot.is_none(), "corrupt checkpoint must be dropped");
    assert!(recovered.torn_bytes > 0, "torn tail must be accounted");

    let store = BlockStore::new();
    let replayed = replay_into(&store, &recovered);
    let (beyond_tip, beyond_len) =
        replayed.beyond.expect("decided head beyond the clean prefix is surfaced for fetch");
    assert!(
        replayed.decided_len < beyond_len,
        "recovery fell short at {} of {beyond_len} and must say so",
        replayed.decided_len
    );

    // Close the gap the way the live plane does: fetch the missing
    // blocks from peers (the canonical records) and re-extend the
    // store; content addressing guarantees the ids line up.
    for rec in &records {
        let id = store
            .append(rec.parent, rec.proposer, rec.view, rec.txs.clone())
            .expect("fetched block extends");
        assert_eq!(id, rec.expected_id, "fetched block must hash to the persisted id");
    }
    assert_eq!(beyond_tip, records[beyond_len as usize - 2].expected_id);

    // Re-persisting the caught-up prefix yields an eventual durable
    // image byte-identical to one that never saw corruption: recovery
    // is a pure function of the decided prefix.
    let dir_c = tmp.join("c");
    let mut backend = FileDurable::open(&dir_c).expect("open");
    write_decided(&mut backend, &records, 16);
    assert_eq!(
        std::fs::read(dir_c.join("wal.log")).expect("wal"),
        std::fs::read(dir_a.join("wal.log")).expect("wal"),
        "eventual WAL image must be byte-identical to the uncorrupted one"
    );
    assert_eq!(
        std::fs::read(dir_c.join("snapshot.bin")).expect("snapshot"),
        std::fs::read(dir_a.join("snapshot.bin")).expect("snapshot"),
        "eventual snapshot image must be byte-identical to the uncorrupted one"
    );

    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn crash_restart_runs_are_deterministic_across_executions() {
    let runs: Vec<_> = (0..2).map(|_| crash_run(9, 117, 80)).collect();
    let (a, b) = (&runs[0], &runs[1]);
    assert_eq!(a.report.final_time, b.report.final_time);
    assert_eq!(a.report.metrics.crashes, b.report.metrics.crashes);
    assert_eq!(a.report.metrics.dropped, b.report.metrics.dropped);
    assert_eq!(a.max_decided_len(), b.max_decided_len());
    for (x, y) in a.validators.iter().zip(&b.validators) {
        let (x, y) = (x.expect("stats"), y.expect("stats"));
        assert_eq!(x.decided_len, y.decided_len, "{}", x.validator);
        assert_eq!(x.persisted_len, y.persisted_len, "{}", x.validator);
        assert_eq!(x.votes_cast, y.votes_cast, "{}", x.validator);
        assert_eq!(x.proposals_made, y.proposals_made, "{}", x.validator);
        assert_eq!(x.wal_errors, y.wal_errors, "{}", x.validator);
    }
}
