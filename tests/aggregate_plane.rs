//! Differential pin for the aggregation plane: verifying a quorum
//! certificate's aggregate signature must accept and reject *exactly*
//! when verifying the underlying votes one by one would — on honest
//! vote sets, on sets containing a forged vote, on substituted signers,
//! and on reordered aggregation inputs. A divergence in either
//! direction is a soundness hole (aggregate accepts what individual
//! checks reject) or a liveness bug (aggregate rejects honest quorums).

use tob_svd::crypto::{AggregateSignature, KeyCache, Keypair, Signature};
use tob_svd::types::{BlockStore, InstanceId, Log, Payload, SignedMessage, ValidatorId, View};

/// One honest vote per validator in `signers` for the same (instance, log).
fn votes_for(signers: &[u32], instance: u64, log: &Log) -> Vec<SignedMessage> {
    signers
        .iter()
        .map(|&i| {
            let v = ValidatorId::new(i);
            let kp = Keypair::from_seed(v.key_seed());
            SignedMessage::sign(&kp, v, Payload::Log { instance: InstanceId(instance), log: *log })
        })
        .collect()
}

/// The per-signer message the aggregate binds: the vote's envelope
/// binding digest, exactly what `SignedMessage::verify` checks.
fn bindings(votes: &[SignedMessage]) -> Vec<Vec<u8>> {
    votes.iter().map(|m| SignedMessage::binding_for(m.sender(), m.payload()).as_bytes().to_vec()).collect()
}

fn aggregate_of(votes: &[SignedMessage]) -> AggregateSignature {
    let sigs: Vec<&Signature> = votes.iter().map(|m| m.signature()).collect();
    AggregateSignature::aggregate(&sigs).expect("non-empty vote set")
}

fn agg_verifies(votes: &[SignedMessage], agg: &AggregateSignature) -> bool {
    let msgs = bindings(votes);
    let msg_refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    let pks: Vec<_> =
        votes.iter().map(|m| KeyCache::keypair(m.sender().key_seed()).public()).collect();
    let pk_refs: Vec<_> = pks.iter().collect();
    agg.aggregate_verify(&msg_refs, &pk_refs)
}

fn individual_verifies(votes: &[SignedMessage]) -> bool {
    votes.iter().all(|m| m.verify(&KeyCache::keypair(m.sender().key_seed()).public()))
}

#[test]
fn aggregate_accepts_exactly_when_individual_checks_accept() {
    let store = BlockStore::new();
    let genesis = Log::genesis(&store);
    let log = genesis
        .extend_empty(&store, ValidatorId::new(0), View::new(1))
        .extend_empty(&store, ValidatorId::new(3), View::new(2));

    for signer_set in [vec![0u32], vec![0, 1, 2], vec![2, 4, 5, 6, 7], (0..16).collect()] {
        for instance in [0u64, 7] {
            let votes = votes_for(&signer_set, instance, &log);
            assert!(individual_verifies(&votes), "honest votes verify individually");
            let agg = aggregate_of(&votes);
            assert!(
                agg_verifies(&votes, &agg),
                "aggregate must accept the honest quorum {signer_set:?} @ instance {instance}"
            );
        }
    }
}

#[test]
fn forged_vote_fails_both_paths() {
    let store = BlockStore::new();
    let log = Log::genesis(&store).extend_empty(&store, ValidatorId::new(1), View::new(1));
    let mut votes = votes_for(&[0, 1, 2, 3], 4, &log);

    // Validator 2's vote forged: signed with validator 5's key.
    let imposter = Keypair::from_seed(ValidatorId::new(5).key_seed());
    let forged = SignedMessage::sign(
        &imposter,
        ValidatorId::new(5),
        Payload::Log { instance: InstanceId(4), log },
    );
    let forged = SignedMessage::from_parts(
        ValidatorId::new(2),
        *forged.payload(),
        *forged.signature(),
    );
    votes[2] = forged;

    assert!(!individual_verifies(&votes), "the forged vote must fail its individual check");
    let agg = aggregate_of(&votes);
    assert!(!agg_verifies(&votes, &agg), "the aggregate over it must fail identically");
}

#[test]
fn substituted_signer_fails_both_paths() {
    let store = BlockStore::new();
    let log = Log::genesis(&store).extend_empty(&store, ValidatorId::new(0), View::new(1));
    let votes = votes_for(&[0, 1, 2], 9, &log);
    let agg = aggregate_of(&votes);

    // A certificate claiming signer 3 where signer 1 actually signed:
    // same aggregate bytes, different claimed (message, key) pairs.
    let mut claimed = votes.clone();
    claimed[1] = votes_for(&[3], 9, &log).remove(0);
    assert!(individual_verifies(&claimed), "each claimed vote is well-formed on its own");
    assert!(
        !agg_verifies(&claimed, &agg),
        "the aggregate was not made over the claimed signer set and must reject"
    );
}

#[test]
fn aggregation_order_is_canonical() {
    let store = BlockStore::new();
    let log = Log::genesis(&store).extend_empty(&store, ValidatorId::new(2), View::new(1));
    let votes = votes_for(&[0, 1, 2, 3, 4], 1, &log);
    let agg = aggregate_of(&votes);

    let mut shuffled = votes.clone();
    shuffled.swap(0, 3);
    shuffled.swap(1, 4);
    let agg_shuffled = aggregate_of(&shuffled);
    assert_ne!(
        agg.as_digest(),
        agg_shuffled.as_digest(),
        "the H-chain stand-in is order-sensitive, so assembly must sort by signer"
    );
    // Verification against the ascending-signer order (the canonical
    // order certificate assembly uses) accepts only the sorted aggregate.
    assert!(agg_verifies(&votes, &agg));
    assert!(!agg_verifies(&votes, &agg_shuffled));
}
