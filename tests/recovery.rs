//! The §2 recovery protocol under *practical* sleep semantics.
//!
//! The sleepy model assumes a waking validator "immediately receives all
//! messages it should have received while asleep" — which the paper
//! itself calls "not practical for real-world systems" and replaces, in
//! practice, with a RECOVERY round: upon waking, broadcast a request;
//! peers re-send what you missed; after ≈ 2Δ you are caught up.
//!
//! These tests flip the simulator into drop-while-asleep mode (no magic
//! buffering). Honest gossip already re-delivers every message within
//! 2Δ of its send, so only naps covering a message's *entire forwarding
//! tail* lose information permanently — and such naps necessarily span
//! the mid-GA snapshot phases, whose absence no recovery can undo
//! (grades 1–2 are lost either way, exactly the stabilization-period
//! story). What recovery *does* restore is the current-V capabilities:
//! the grade-0 output of the ongoing GA, and with it the validator's
//! ability to propose. That restored capability is what these tests
//! measure.

use tob_svd::adversary::FnDelay;
use tob_svd::protocol::{TobSimulationBuilder, TxWorkload};
use tob_svd::sim::ParticipationSchedule;
use tob_svd::types::{Delta, SignedMessage, Time, ValidatorId};

fn napper() -> ValidatorId {
    ValidatorId::new(0)
}

/// Naps from right after each view's vote phase until just past the
/// forwarding tail of the votes: [t_v+Δ+1, t_v+3Δ+1). Every copy of
/// every view-v vote addressed to the napper — direct and forwarded —
/// lands inside the nap.
fn napping_schedule(n: usize, views: u64, delta: Delta) -> ParticipationSchedule {
    let d = delta.ticks();
    let mut sched = ParticipationSchedule::always_awake(n);
    let mut awake = Vec::new();
    let mut cursor = 0u64;
    for view in 0..=views {
        let nap_start = view * 4 * d + d + 1;
        let nap_end = view * 4 * d + 3 * d + 1;
        if nap_start > cursor {
            awake.push((Time::new(cursor), Time::new(nap_start)));
        }
        cursor = nap_end;
    }
    awake.push((Time::new(cursor), Time::new((views + 2) * 4 * d)));
    sched.set_intervals(napper(), awake);
    sched
}

/// Short deterministic delays so the recovery round trip (wake →
/// request → responses) completes well before the next phase boundary.
fn fast_delay() -> FnDelay<impl FnMut(&SignedMessage, ValidatorId, ValidatorId, Time, Delta) -> u64 + Send>
{
    FnDelay(|_m: &SignedMessage, _from, _to: ValidatorId, _at, _d| 1)
}

fn run(views: u64, drop_mode: bool, recovery: bool) -> tob_svd::protocol::TobReport {
    let n = 6;
    let delta = Delta::default();
    TobSimulationBuilder::new(n)
        .views(views)
        .seed(21)
        .participation(napping_schedule(n, views, delta))
        .workload(TxWorkload::PerView { count: 1, size: 32 })
        .delay(Box::new(fast_delay()))
        .drop_while_asleep(drop_mode)
        .recovery(recovery)
        .run()
        .expect("runs")
}

/// (votes, proposals, decisions) of the napper.
fn napper_stats(report: &tob_svd::protocol::TobReport) -> (u64, u64, u64) {
    let s = report.validators[0].expect("napper is honest");
    (s.votes_cast, s.proposals_made, s.decisions_made)
}

#[test]
fn model_buffering_restores_grade0_but_not_snapshots() {
    // Under buffered semantics the napper gets everything at wake —
    // current-V capabilities (grade 0 → proposals) work fully, while the
    // missed mid-GA snapshots still cost it votes and decisions (that is
    // the T_s = 2Δ stabilization requirement, not a delivery problem).
    let report = run(16, false, false);
    report.assert_safety();
    let (votes, proposals, _) = napper_stats(&report);
    assert!(
        proposals >= 15,
        "buffered mode: napper should propose every view, got {proposals}"
    );
    assert!(votes <= 2, "missed snapshots cost the votes regardless, got {votes}");
    assert_eq!(report.report.metrics.dropped, 0);
}

#[test]
fn dropping_without_recovery_kills_the_grade0_path() {
    let report = run(16, true, false);
    report.assert_safety();
    let (_, proposals, _) = napper_stats(&report);
    // The votes' whole forwarding tail fell in the nap: the napper's V
    // stays empty, GA_v never reaches a grade-0 majority for it, so it
    // has no candidate and cannot propose.
    assert!(
        proposals <= 2,
        "drop mode without recovery: proposals should vanish, got {proposals}"
    );
    assert!(report.report.metrics.dropped > 0, "messages must actually be dropped");
    // The rest of the network is unaffected.
    for s in report.validators.iter().flatten().skip(1) {
        assert!(s.votes_cast >= 15, "{:?}", s);
    }
    assert!(report.decided_blocks() >= report.views - 2);
}

#[test]
fn recovery_restores_the_grade0_path() {
    let report = run(16, true, true);
    report.assert_safety();
    let (_, proposals, _) = napper_stats(&report);
    // RECOVERY at wake (t_v+3Δ+1): request reaches peers one tick later,
    // re-sent votes land one tick after that — before GA_v's grade-0
    // output phase at t_v+4Δ. Candidates (and proposals) come back.
    assert!(
        proposals >= 14,
        "recovery should restore proposals, got {proposals}"
    );
    assert!(
        report.report.metrics.recovery_broadcasts >= 14,
        "one RECOVERY per nap expected, got {}",
        report.report.metrics.recovery_broadcasts
    );
    assert!(report.report.metrics.forwards > 0, "responses are targeted forwards");
}

#[test]
fn recovery_matches_the_model_buffering_on_recoverable_capabilities() {
    let buffered = run(16, false, false);
    let recovered = run(16, true, true);
    let (_, p_buffered, _) = napper_stats(&buffered);
    let (_, p_recovered, _) = napper_stats(&recovered);
    // The recovery round trip costs two ticks per nap, which shaves the
    // warm-up/boundary views; everything else matches the model's
    // instant-buffering assumption.
    assert!(
        p_recovered + 3 >= p_buffered,
        "recovery ({p_recovered}) should match the model assumption ({p_buffered})"
    );
}

/// Delta-sync catch-up: a validator that sleeps through *more views
/// than the recovery archive retains* (~3) wakes into a world where the
/// re-sent announcements reference blocks nobody will ever announce
/// again — the chain content below the archive window can only arrive
/// through the `BlockRequest`/`BlockResponse` fetch subprotocol. This
/// is the §2 recovery path running entirely on the fetch machinery
/// instead of full-log re-sends.
#[test]
fn deep_sleeper_catches_up_purely_via_fetches() {
    let n = 6;
    let delta = Delta::default();
    let views = 16u64;
    let view_ticks = 4 * delta.ticks();
    let mut sched = ParticipationSchedule::always_awake(n);
    // Awake for view 0, asleep until view 6 starts, awake to the end.
    sched.set_intervals(
        napper(),
        vec![
            (Time::ZERO, Time::new(3 * delta.ticks())),
            (Time::new(6 * view_ticks), Time::new((views + 2) * view_ticks)),
        ],
    );
    let report = TobSimulationBuilder::new(n)
        .views(views)
        .seed(9)
        .participation(sched)
        .workload(TxWorkload::PerView { count: 1, size: 32 })
        .delay(Box::new(fast_delay()))
        .drop_while_asleep(true)
        .recovery(true)
        .run()
        .expect("runs");
    report.assert_safety();

    let sleeper = report.validators[0].expect("napper is honest");
    // The gap below the archive window was closed by fetches alone.
    assert!(
        sleeper.sync.blocks_fetched >= 3,
        "the deep sleeper must fetch the pruned-archive gap: {:?}",
        sleeper.sync
    );
    assert!(sleeper.sync.requests_sent >= 1);
    assert_eq!(sleeper.sync.pending, 0, "every parked message must resolve: {:?}", sleeper.sync);
    // Someone served those fetches, and the wire metrics saw both sides.
    assert!(report.validators.iter().flatten().any(|s| s.sync.responses_served > 0));
    assert!(report.report.metrics.block_request_broadcasts >= 1);
    assert!(report.report.metrics.block_response_broadcasts >= 1);
    assert!(report.report.metrics.block_response_bytes > 0);
    // And the sleeper is a full participant again: its decided log ends
    // within a view of the network's.
    let max = report.max_decided_len();
    assert!(
        sleeper.decided_len + 2 >= max,
        "sleeper decided {} of {max} blocks — catch-up failed",
        sleeper.decided_len
    );
}

#[test]
fn recovery_has_no_effect_when_nobody_sleeps() {
    // Enabled-but-unused recovery must not disturb the protocol or the
    // metrics beyond zero recovery traffic.
    let n = 5;
    let report = TobSimulationBuilder::new(n)
        .views(10)
        .seed(3)
        .drop_while_asleep(true)
        .recovery(true)
        .run()
        .expect("runs");
    report.assert_safety();
    assert_eq!(report.report.metrics.recovery_broadcasts, 0);
    assert!(report.decided_blocks() >= report.views - 1);
}
