//! Drive the `tobsvd-check` model checker from the command line.
//!
//! ```sh
//! # Explore 2000 model-compliant schedules on all cores (CI smoke).
//! cargo run --release --example model_check -- --executions 2000 --seed 1
//!
//! # Hunt in the hostile (over-bound) space, shrink the first failure
//! # and write a replayable reproducer artifact.
//! cargo run --release --example model_check -- --hostile --out repro.json
//!
//! # Replay a reproducer artifact byte-for-byte.
//! cargo run --release --example model_check -- --replay repro.json
//! ```
//!
//! Exit status: `0` when the run matched expectations (no failures in a
//! compliant exploration; failure found+shrunk in `--hostile` mode;
//! reproducer still failing in `--replay` mode), `1` otherwise. A
//! failing compliant exploration shrinks its first failure and writes
//! the artifact to `--out` (default `target/model-check/reproducer.json`)
//! so CI can upload it.

use std::path::PathBuf;
use std::process::ExitCode;

use tob_svd::check::{checker, shrink, CheckConfig, Reproducer, ScenarioSpace};

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn write_reproducer(path: &PathBuf, repro: &Reproducer) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, repro.to_json()) {
        Ok(()) => eprintln!("reproducer written to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let executions: usize = arg_value(&args, "--executions")
        .map(|v| v.parse().expect("--executions takes a number"))
        .unwrap_or(2000);
    let seed: u64 = arg_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed takes a number"))
        .unwrap_or(1);
    let out = PathBuf::from(
        arg_value(&args, "--out")
            .unwrap_or_else(|| "target/model-check/reproducer.json".to_string()),
    );

    if let Some(path) = arg_value(&args, "--replay") {
        let text = std::fs::read_to_string(&path).expect("reproducer file readable");
        let repro = Reproducer::from_json(&text).expect("valid reproducer artifact");
        eprintln!("replaying {path}: {:?}", repro.scenario);
        if repro.replay() {
            eprintln!("reproduced: invariants {:?} still fail", repro.invariants);
            return ExitCode::SUCCESS;
        }
        eprintln!("NOT reproduced — the artifact no longer fails");
        return ExitCode::FAILURE;
    }

    if args.iter().any(|a| a == "--hostile") {
        eprintln!("hunting in the hostile (over-bound) scenario space, seed {seed}...");
        let cfg = CheckConfig::new(0, seed).space(ScenarioSpace::hostile());
        let report = checker::run_until_failure(&cfg, 64, executions.max(64));
        let Some(failure) = report.failures.first() else {
            eprintln!("no failure found — unexpected for the hostile space");
            return ExitCode::FAILURE;
        };
        eprintln!(
            "failure at execution {}: {:?} violates {:?} — shrinking...",
            failure.index,
            failure.scenario,
            failure.verdict.failure_signature()
        );
        let result = shrink(&failure.scenario);
        eprintln!(
            "shrunk after {} candidate runs ({} rounds): {:?}",
            result.candidates_tried, result.rounds, result.minimal
        );
        let repro = Reproducer {
            scenario: result.minimal,
            invariants: result.violated.iter().map(|s| s.to_string()).collect(),
        };
        print!("{}", repro.to_json());
        write_reproducer(&out, &repro);
        return ExitCode::SUCCESS;
    }

    eprintln!("exploring {executions} model-compliant schedules, seed {seed}...");
    let report = checker::run(&CheckConfig::new(executions, seed));
    eprintln!("{}", report.summary());
    if report.all_passed() {
        return ExitCode::SUCCESS;
    }
    // A violation inside the model is a real bug: shrink and persist it.
    let failure = &report.failures[0];
    eprintln!(
        "BUG: execution {} violates {:?}: {:?}",
        failure.index,
        failure.verdict.failure_signature(),
        failure.scenario
    );
    let result = shrink(&failure.scenario);
    let repro = Reproducer {
        scenario: result.minimal,
        invariants: result.violated.iter().map(|s| s.to_string()).collect(),
    };
    print!("{}", repro.to_json());
    write_reproducer(&out, &repro);
    ExitCode::FAILURE
}
