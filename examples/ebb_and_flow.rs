//! The ebb-and-flow construction from the paper's introduction:
//! TOB-SVD (dynamically available) + a finality gadget (partially
//! synchronous), run through a period of network asynchrony.
//!
//! ```sh
//! cargo run --example ebb_and_flow
//! ```
//!
//! During the asynchrony window the available chain's guarantees are
//! void (its model needs synchrony); the gadget's checkpoints remain
//! consistent throughout and finality resumes once synchrony returns.

use tob_svd::finality::FinalitySimulation;

fn main() {
    println!("ebb-and-flow: 6 validators, 14 views, asynchrony during views 4..8 (3Δ delays)\n");
    let report = FinalitySimulation::new(6)
        .with_asynchrony(4, 8, 3)
        .run();

    println!("per-validator state after the run:");
    for o in &report.outcomes {
        println!(
            "  {}: available chain {} blocks | finalized {} blocks | checkpoints at epochs {:?}",
            o.validator,
            o.decided_len - 1,
            o.finalized.len() - 1,
            o.history.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
        );
    }

    println!(
        "\navailable chain safe through asynchrony: {} (not guaranteed — needs synchrony)",
        report.available_chain_safe
    );
    assert!(
        report.checkpoints_consistent(),
        "checkpoints must NEVER conflict — that is the gadget's guarantee"
    );
    println!("finalized checkpoints pairwise consistent: true (guaranteed)");
    println!(
        "finality range across validators: {}..{} blocks",
        report.min_finalized_len() - 1,
        report.max_finalized_len() - 1
    );
    println!("\nobservation: once a whole view passes with no votes (all locks lost to");
    println!("asynchrony), Figure 4's \"skip actions whose GA outputs are missing\" rule");
    println!("stalls the available chain permanently — TOB-SVD assumes synchrony from");
    println!("t = 0 and has no built-in resynchronization. The gadget's checkpoints are");
    println!("exactly what survives; restarting the available chain from the latest");
    println!("finalized checkpoint is the ebb-and-flow recovery path (future work in the");
    println!("paper's terms — see EXPERIMENTS.md).");
}
