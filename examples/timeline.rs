//! Prints the Figure 3 timeline: three consecutive views with their
//! Propose/Vote/Decide phases and the two overlapping GA instances.
//!
//! ```sh
//! cargo run --example timeline
//! ```

use tob_svd::protocol::ViewSchedule;
use tob_svd::types::{Delta, View};

fn main() {
    let sched = ViewSchedule::new(Delta::new(8));
    let v = View::new(5);
    println!("Figure 3 — views v−1, v, v+1 with overlapping GA instances (v = 5):\n");
    println!("{}", sched.render_timeline(v));
    println!("arrows of the figure:");
    println!(
        "  grade-0 output of GA_{} at {} → candidate for Propose({}) at {}",
        v.number() - 1,
        sched.ga_output_time(View::new(v.number() - 1), 0),
        v,
        sched.propose_time(v),
    );
    println!(
        "  grade-1 output of GA_{} at {} → lock for Vote({}) at {} (= input of GA_{})",
        v.number() - 1,
        sched.ga_output_time(View::new(v.number() - 1), 1),
        v,
        sched.vote_time(v),
        v.number(),
    );
    println!(
        "  grade-2 output of GA_{} at {} → Decide({}) at {}",
        v.number() - 1,
        sched.ga_output_time(View::new(v.number() - 1), 2),
        v,
        sched.decide_time(v),
    );
}
