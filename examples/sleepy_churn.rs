//! Dynamic participation: TOB-SVD under heavy validator churn.
//!
//! ```sh
//! cargo run --example sleepy_churn
//! ```
//!
//! Validators rotate through sleep in groups, and a random-churn
//! schedule is rejection-sampled until it satisfies Condition (1) of the
//! (5Δ, 2Δ, ½)-sleepy model — then the protocol is expected to stay
//! safe *and* live, which this example verifies by running it.

use tob_svd::adversary::churn;
use tob_svd::protocol::{TobSimulationBuilder, TxWorkload};
use tob_svd::sim::compliance::{check, SleepyParams};
use tob_svd::sim::CorruptionSchedule;
use tob_svd::types::{Delta, Time, View};

fn main() {
    let n = 10;
    let views = 20u64;
    let delta = Delta::default();
    let horizon = View::new(views + 1).start_time(delta);

    // The TOB-SVD model: T_b = 5Δ, T_s = 2Δ, ρ = ½.
    let params = SleepyParams::half(5 * delta.ticks(), 2 * delta.ticks());
    let corruption = CorruptionSchedule::none();

    println!("TOB-SVD under churn — {n} validators, {views} views\n");

    // --- Pattern 1: rotating group sleep.
    let rotating = churn::rotating_sleep(n, 5, 6 * delta.ticks(), horizon);
    match check(&rotating, &corruption, params, horizon) {
        None => println!("rotating schedule: compliant with (5Δ, 2Δ, ½)"),
        Some(v) => println!("rotating schedule: VIOLATES Condition (1): {v}"),
    }
    let report = TobSimulationBuilder::new(n)
        .views(views)
        .seed(3)
        .participation(rotating)
        .workload(TxWorkload::PerView { count: 2, size: 48 })
        .run()
        .expect("runs");
    report.assert_safety();
    println!(
        "  decided {} blocks over {views} views; {} txs confirmed; safety holds\n",
        report.decided_blocks(),
        report.report.confirmed.len()
    );

    // --- Pattern 2: random churn, rejection-sampled to compliance.
    let random = churn::compliant_random_churn(
        n,
        horizon,
        4 * delta.ticks(),
        0.85,
        &corruption,
        params,
        42,
        100,
    )
    .expect("a compliant schedule exists at 85% awake probability");
    println!("random churn schedule: compliant by construction");
    let awake_counts: Vec<usize> = (0..views)
        .map(|v| {
            let t = View::new(v).start_time(delta);
            random.awake_honest_at(t, &corruption).len()
        })
        .collect();
    println!("  awake honest validators at view starts: {awake_counts:?}");

    let report = TobSimulationBuilder::new(n)
        .views(views)
        .seed(4)
        .participation(random)
        .workload(TxWorkload::PerView { count: 2, size: 48 })
        .drop_while_asleep(true)
        .recovery(true)
        .run()
        .expect("runs");
    report.assert_safety();
    println!(
        "  decided {} blocks; liveness under churn confirmed (≥1 block per good stable view)",
        report.decided_blocks()
    );
    assert!(report.decided_blocks() > 0, "churned network must still decide");

    // Under the practical drop+recover semantics, waking validators
    // catch up through hash announcements + block fetches — the
    // per-kind byte metrics show what the delta-sync plane moved.
    let m = &report.report.metrics;
    println!("\nwire bytes per kind (delta-sync plane, drop-while-asleep run):");
    println!(
        "  votes {} B · proposals {} B · recovery {} B · fetch-requests {} B · fetch-responses {} B",
        m.log_bytes, m.proposal_bytes, m.recovery_bytes, m.block_request_bytes,
        m.block_response_bytes
    );
    println!(
        "  total {} B vs {} B inline-chain equivalent — {:.1}x saved; {} blocks fetched by wakers",
        m.bytes_delivered,
        m.inline_equiv_bytes,
        m.inline_equiv_bytes as f64 / m.bytes_delivered as f64,
        report
            .validators
            .iter()
            .flatten()
            .map(|s| s.sync.blocks_fetched)
            .sum::<u64>()
    );

    // A validator that slept must catch up once awake: all decided logs
    // are compatible (already asserted) and within a view of each other.
    let lens: Vec<u64> = report
        .validators
        .iter()
        .flatten()
        .map(|s| s.decided_len)
        .collect();
    println!("  per-validator decided lengths: {lens:?}");
    let _ = Time::ZERO;
}
