//! Sweep a declarative scenario matrix in parallel.
//!
//! ```sh
//! cargo run --release --example scenario_matrix            # full matrix
//! cargo run --release --example scenario_matrix -- --smoke # CI-sized
//! cargo run --release --example scenario_matrix -- --json  # JSON report
//! ```
//!
//! The matrix crosses validator count × Δ × participation schedule ×
//! delay policy × adversary strategy × seed; every cell is an
//! independent seeded simulation, so the sweep runs on all cores and
//! still produces bit-identical results in matrix order.

use tob_svd::sweep::{
    run_matrix, AdversarySpec, DelaySpec, ParticipationSpec, ScenarioMatrix, WorkloadSpec,
};
use tob_svd::sim::{AdmissionPolicy, OpenLoopSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");

    let matrix = if smoke {
        // Small but still crossing every axis once — the CI smoke job.
        ScenarioMatrix::new(vec![5], vec![4])
            .views(5)
            .seeds(vec![1])
            .participation(vec![
                ParticipationSpec::Full,
                ParticipationSpec::RotatingSleep { groups: 4, window_deltas: 4 },
            ])
            .delays(vec![DelaySpec::Uniform, DelaySpec::WorstCase])
            .adversaries(vec![AdversarySpec::None, AdversarySpec::SplitBrain { count: 1 }])
            .workload(WorkloadSpec::PerView { count: 1, size: 32 })
    } else {
        ScenarioMatrix::new(vec![5, 7, 9], vec![4, 8])
            .views(12)
            .seeds(vec![1, 2])
            .participation(vec![
                ParticipationSpec::Full,
                ParticipationSpec::RotatingSleep { groups: 4, window_deltas: 6 },
                ParticipationSpec::RandomChurn { awake_prob: 0.85, window_deltas: 4 },
            ])
            .delays(vec![DelaySpec::Uniform, DelaySpec::WorstCase, DelaySpec::BestCase])
            .adversaries(vec![
                AdversarySpec::None,
                AdversarySpec::SplitBrain { count: 2 },
                AdversarySpec::AdaptiveLeaderCorruption { budget: 2 },
            ])
            .workload(WorkloadSpec::PerView { count: 2, size: 48 })
    };

    eprintln!(
        "sweeping {} scenarios ({}) on all cores...",
        matrix.len(),
        if smoke { "smoke matrix" } else { "full matrix" }
    );
    let report = run_matrix(&matrix, 0);

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }

    // The sweep doubles as an assertion: every cell of the matrix —
    // fault-free, churned, equivocating, adaptively corrupted — must
    // stay safe, and the fault-free cells must make progress.
    assert!(
        report.all_safe(),
        "safety violated in {} scenarios",
        report.unsafe_scenarios().len()
    );
    let fault_free_progress = report
        .outcomes()
        .iter()
        .filter(|o| {
            o.scenario.adversary == AdversarySpec::None
                && o.scenario.participation == ParticipationSpec::Full
        })
        .all(|o| o.decided_blocks > 0);
    assert!(fault_free_progress, "a fault-free scenario decided nothing");
    eprintln!("all scenarios safe; fault-free scenarios all made progress");

    // Large-n rows: the committee sizes the aggregation plane exists
    // for. Only viable with certificates collapsing per-view traffic to
    // O(n²) — the per-vote baseline at n=256 would push ~50M deliveries
    // per seed. Few views, one seed, fault-free: these rows check the
    // plane at scale, not the adversary axes (the small matrix covers
    // those, and certificates are on in every cell above too).
    if !smoke {
        let large = ScenarioMatrix::new(vec![128, 256], vec![4])
            .views(3)
            .seeds(vec![1])
            .participation(vec![ParticipationSpec::Full])
            .delays(vec![DelaySpec::Uniform])
            .adversaries(vec![AdversarySpec::None])
            .workload(WorkloadSpec::PerView { count: 1, size: 32 });
        eprintln!("sweeping {} large-n scenarios (n=128/256)...", large.len());
        let large_report = run_matrix(&large, 0);
        if json {
            print!("{}", large_report.to_json());
        } else {
            print!("{}", large_report.render());
        }
        assert!(large_report.all_safe(), "safety violated at large n");
        assert!(
            large_report.outcomes().iter().all(|o| o.decided_blocks > 0),
            "a large-n fault-free scenario decided nothing"
        );
        eprintln!("large-n rows safe and live");
    }

    // Overload rows: the ingestion-plane axes. An open-loop client
    // population drives far more traffic than the chain can include and
    // the bounded mempool must shed the excess — without ever hurting
    // safety or stalling fault-free progress.
    //
    //  * mempool-saturation: arrival rate ≫ capacity, fee-priority
    //    eviction under pressure;
    //  * slow-client / bursty: a small population with rate caps low
    //    enough that bursts trip per-client rate limiting.
    let (users, rate_milli) = if smoke { (10_000, 20_000) } else { (1_000_000, 60_000) };
    let saturation = OpenLoopSpec { users, rate_milli, ..OpenLoopSpec::default() };
    let bursty = OpenLoopSpec {
        users: 64,
        rate_milli: 8_000,
        burst_every: 32,
        burst_len: 16,
        burst_mult: 16,
        ..OpenLoopSpec::default()
    };
    let overload_rows = vec![
        (
            "mempool-saturation",
            ScenarioMatrix::new(vec![5], vec![4])
                .views(if smoke { 4 } else { 8 })
                .workload(WorkloadSpec::OpenLoop(saturation))
                .admission(AdmissionPolicy { capacity: 256, rate_cap: 0, rate_window: 64 }),
        ),
        (
            "slow-client",
            ScenarioMatrix::new(vec![5], vec![4])
                .views(if smoke { 4 } else { 8 })
                .workload(WorkloadSpec::OpenLoop(bursty))
                .admission(AdmissionPolicy { capacity: 4096, rate_cap: 4, rate_window: 16 }),
        ),
    ];
    for (name, matrix) in overload_rows {
        eprintln!("sweeping overload row: {name}...");
        let report = run_matrix(&matrix, 0);
        if json {
            print!("{}", report.to_json());
        } else {
            print!("{}", report.render());
        }
        assert!(report.all_safe(), "overload row {name} violated safety");
        for o in report.outcomes() {
            assert!(o.decided_blocks > 0, "overload row {name} decided nothing");
            assert!(o.admission.accepted > 0, "overload row {name} admitted nothing");
            let shed = o.admission.busy + o.admission.rate_limited + o.admission.evicted;
            assert!(shed > 0, "overload row {name} shed no load (not an overload)");
        }
    }
    eprintln!("overload rows safe, live, and load-shedding");
}
