//! Byzantine resilience at the ½ boundary.
//!
//! ```sh
//! cargo run --example byzantine_safety
//! ```
//!
//! Part 1 runs TOB-SVD with the strongest generic adversary in the
//! repository — split-brain validators that equivocate every vote and
//! every proposal toward two halves of the network — at the largest
//! corruption compliant with Condition (1) (f = 4 of n = 9). Safety and
//! liveness both hold; latency degrades exactly as the geometric model
//! predicts.
//!
//! Part 2 crosses the threshold at the GA level (f = h) and shows the
//! Validity property — the engine behind TOB-SVD's liveness and lock
//! propagation (Lemma 1) — collapse: unanimous honest inputs no longer
//! produce any output. The ½ bound is tight.
//!
//! (A single GA instance's Consistency and Graded Delivery are
//! quorum-intersection arguments that hold at *any* corruption level —
//! honest forwarding spreads equivocation evidence within 2Δ, before the
//! earliest output phase at 3Δ. What the adversary gains above ½ is the
//! power to veto outputs, which kills Validity, locks and decisions.)

use tob_svd::adversary::{GaEquivocator, SplitBrainNode};
use tob_svd::ga::{GaHarness, GaKind};
use tob_svd::protocol::{TobConfig, TobSimulationBuilder, TxWorkload};
use tob_svd::sim::{SimConfig, WorstCaseDelay};
use tob_svd::types::{InstanceId, Log, Time, ValidatorId, View};

fn main() {
    below_threshold();
    above_threshold();
}

fn below_threshold() {
    let n = 9;
    let byz = 4; // f = 4 < h = 5
    println!("— Part 1: split-brain adversary below threshold (f = {byz}, n = {n}) —\n");
    let half_a: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect();
    let half_b: Vec<ValidatorId> = ValidatorId::all(n).filter(|v| v.index() % 2 == 1).collect();

    let mut builder = TobSimulationBuilder::new(n)
        .views(40)
        .seed(17)
        .workload(TxWorkload::PerView { count: 1, size: 48 })
        .delay(Box::new(WorstCaseDelay));
    for v in ValidatorId::all(n).skip(n - byz) {
        let (a, b) = (half_a.clone(), half_b.clone());
        builder = builder.byzantine(
            v,
            Box::new(move |store| {
                Box::new(SplitBrainNode::new(v, TobConfig::new(n), store, a, b))
            }),
        );
    }
    let report = builder.run().expect("runs");
    report.assert_safety();
    println!("safety: no conflicting decisions across {} views", report.views);
    println!(
        "liveness: {} blocks decided; good-leader fraction {:.2} (> 1/2, Lemma 2)",
        report.decided_blocks(),
        report.good_leader_fraction()
    );
    let mean: f64 = report.tx_latencies_deltas().iter().sum::<f64>()
        / report.report.confirmed.len().max(1) as f64;
    println!("mean confirmation latency {mean:.1}Δ (degrades toward the 10Δ bound as p → ½)\n");
}

fn above_threshold() {
    println!("— Part 2: crossing the threshold (f = h) kills GA Validity —\n");
    let n = 4;
    let all: Vec<ValidatorId> = ValidatorId::all(n).collect();

    // Scenario A (compliant, f = 1 < h = 3): honest v0..v2 input
    // extensions of a common log A; one Byzantine conflict-votes B.
    // Validity holds: everyone outputs A at every grade.
    let run = |byz_ids: &[u32], seed: u64| {
        let cfg = SimConfig::new(n).with_seed(seed);
        let mut h = GaHarness::new(cfg, GaKind::Three);
        let store = h.store().clone();
        let g = Log::genesis(&store);
        let branch_a = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
        let branch_b = g.extend_empty(&store, ValidatorId::new(9), View::new(1));
        for v in ValidatorId::all(n) {
            if byz_ids.contains(&v.raw()) {
                // Byzantine: consistently vote the conflicting branch B
                // (sent to everyone — no equivocation to get caught on).
                h.byzantine(
                    v,
                    Box::new(GaEquivocator::new(
                        v,
                        InstanceId(0),
                        Time::ZERO,
                        branch_b,
                        all.clone(),
                        branch_b,
                        Vec::new(),
                    )),
                );
            } else {
                h.input(v, branch_a);
            }
        }
        (h.run(), branch_a)
    };

    let (result, branch_a) = run(&[3], 5);
    let honest_out = result.outputs[0][2];
    println!(
        "f = 1 < h = 3: honest grade-2 output = {honest_out:?} (Validity holds: extends the honest input)"
    );
    assert_eq!(honest_out, Some(branch_a));

    let (result, branch_a) = run(&[2, 3], 6);
    let out0 = result.outputs[0][2];
    let out1 = result.outputs[1][2];
    println!("f = 2 = h = 2: honest grade-2 outputs = {out0:?} / {out1:?}");
    // The unanimous honest branch is vetoed; outputs regress to the
    // genesis log (the trivial common prefix every log extends).
    for out in [out0, out1] {
        let out = out.expect("genesis always has unanimous support");
        assert!(
            out != branch_a && !branch_a.is_prefix_of(&out, &result.store),
            "the honest branch must NOT be output at f = h"
        );
        assert_eq!(out.len(), 1, "only the genesis log survives");
    }
    println!("=> the unanimously-input honest branch is never output — only the genesis");
    println!("   log survives. Validity fails exactly at f = h; without it there are no");
    println!("   locks, no new decisions (Lemma 1, Theorem 5): the chain stops growing.");
    println!("   The ½ resilience of Table 1 row 1 is tight.");
}
