//! Prints the Table 1 comparison (paper constants vs the geometric
//! leader-lottery model vs a quick measured TOB-SVD run).
//!
//! ```sh
//! cargo run --release --example latency_table
//! ```
//!
//! This is a fast, example-sized rendition of the full `table1` bench
//! (`cargo bench -p tobsvd-bench --bench table1`), which uses longer
//! runs and asserts the shape claims.

use tob_svd::analysis::Table;
use tob_svd::baselines::{
    closed_form_expected, closed_form_tx_expected, phases_per_block, spec::all_specs,
};
use tob_svd::protocol::{TobSimulationBuilder, TxWorkload};
use tob_svd::sim::WorstCaseDelay;

fn main() {
    // Quick fault-free measured column.
    let report = TobSimulationBuilder::new(6)
        .views(10)
        .seed(2)
        .workload(TxWorkload::PerView { count: 1, size: 48 })
        .delay(Box::new(WorstCaseDelay))
        .run()
        .expect("runs");
    report.assert_safety();
    let lats = report.tx_latencies_deltas();
    let measured_best = lats.iter().copied().fold(f64::INFINITY, f64::min);

    let p = 0.5; // the adversarial boundary of Lemma 2
    let mut table = Table::new(vec![
        "protocol",
        "resilience",
        "best (Δ)",
        "expected (Δ)",
        "tx-expected (Δ)",
        "phases best",
        "phases expected",
        "comm",
    ]);
    for spec in all_specs() {
        let model_exp = closed_form_expected(&spec.structure, p);
        let model_tx = closed_form_tx_expected(&spec.structure, p);
        let model_ph = phases_per_block(&spec.structure, p);
        let mark = if spec.geometric_model_exact { "" } else { "*" };
        table.row(vec![
            spec.name.to_string(),
            format!("{}/{}", spec.resilience.0, spec.resilience.1),
            format!("{}", spec.paper.best),
            format!("{}{} (model {:.0})", spec.paper.expected, mark, model_exp),
            format!("{}{} (model {:.1})", spec.paper.tx_expected, mark, model_tx),
            format!("{}", spec.paper.phases_best),
            format!("{} (model {:.0})", spec.paper.phases_expected, model_ph),
            format!("O(Ln^{})", spec.paper.comm_exponent),
        ]);
    }
    println!("Table 1 — paper constants, geometric model at p(good leader) = ½:\n");
    println!("{}", table.render());
    println!("* that protocol's own expected-case accounting differs from the plain");
    println!("  geometric model — see EXPERIMENTS.md.\n");
    println!(
        "measured TOB-SVD best-case latency (fault-free, worst-case Δ delays): {measured_best:.1}Δ (paper: 6Δ)"
    );
}
