//! Quickstart: a fault-free 8-validator TOB-SVD network for 12 views.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Shows the basic API surface: build a simulation, run it, read back
//! the decided log, per-validator agreement and the vote/decision
//! counters that make TOB-SVD a *single-vote* protocol.

use tob_svd::protocol::{TobSimulationBuilder, TxWorkload};

fn main() {
    let report = TobSimulationBuilder::new(8)
        .views(12)
        .seed(7)
        .workload(TxWorkload::PerView { count: 3, size: 64 })
        .run()
        .expect("valid configuration");

    report.assert_safety();

    println!("TOB-SVD quickstart — 8 validators, 12 views, no faults\n");
    println!(
        "longest decided log: {} blocks beyond genesis",
        report.decided_blocks()
    );
    println!(
        "good-leader views:   {:.0}%",
        report.good_leader_fraction() * 100.0
    );

    println!("\nper-validator state:");
    for stats in report.validators.iter().flatten() {
        println!(
            "  {}: decided len {}, proposals {}, votes {} (→ one vote per view), decisions {}",
            stats.validator,
            stats.decided_len,
            stats.proposals_made,
            stats.votes_cast,
            stats.decisions_made,
        );
    }

    let phases = report
        .voting_phases_per_block()
        .expect("blocks were decided");
    println!("\nvoting phases per decided block: {phases:.2} (paper best case: 1)");

    let confirmed = report.report.confirmed.len();
    let mean_latency: f64 =
        report.tx_latencies_deltas().iter().sum::<f64>() / confirmed.max(1) as f64;
    println!("transactions confirmed: {confirmed}, mean latency {mean_latency:.1}Δ (paper best case: 6Δ)");
}
