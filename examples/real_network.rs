//! Runs a real 5-node TOB-SVD cluster over localhost TCP.
//!
//! ```sh
//! cargo run --release --example real_network
//! ```
//!
//! Each node is an OS thread with its own block store, talking to its
//! peers through length-prefixed wire frames carrying *hash
//! announcements* (content-addressed delta sync: tip hash + parent-hash
//! list + a one-block inline window; gaps are filled by
//! `BlockRequest`/`BlockResponse` fetches served from the local store).
//! The same sans-io `Validator` as in the simulator; Δ = 40 ms of wall
//! clock. The per-kind byte report at the end shows the delta-sync
//! saving end to end: announcement bytes stay flat as the chain grows,
//! and a healthy steady-state cluster needs no fetch traffic at all.

use std::time::Duration;

use tob_svd::runtime::{ClusterConfig, LocalCluster};

fn main() {
    let cfg = ClusterConfig::new(5).views(6).tick(Duration::from_millis(10));
    println!(
        "starting 5 TCP nodes on 127.0.0.1 — Δ = {}ms, {} views…\n",
        cfg.delta.ticks() * 10,
        cfg.views
    );
    let report = LocalCluster::run(cfg).expect("cluster runs");

    println!("per-node outcomes:");
    for o in report.outcomes() {
        println!(
            "  {}: decided {} blocks, {} votes, {} frames in / {} frames out",
            o.me,
            o.decided_len - 1,
            o.votes_cast,
            o.frames.0,
            o.frames.1
        );
    }

    println!("\nwire bytes per kind (delta-sync message plane):");
    let mut totals = (0u64, 0u64, 0u64, 0u64);
    for o in report.outcomes() {
        println!(
            "  {}: announcements {} B in / {} B out, fetch {} B in / {} B out, {} blocks fetched",
            o.me,
            o.announce_bytes.0,
            o.announce_bytes.1,
            o.sync_bytes.0,
            o.sync_bytes.1,
            o.blocks_fetched
        );
        totals.0 += o.announce_bytes.0;
        totals.1 += o.announce_bytes.1;
        totals.2 += o.sync_bytes.0;
        totals.3 += o.sync_bytes.1;
    }
    // Sum one direction only: every wire frame is counted once by its
    // sender and once by its receiver, so in+out would double-count.
    let decided = report.max_decided_len().saturating_sub(1).max(1);
    println!(
        "  total on the wire: announcements {} B, fetch {} B — {} announcement bytes per decided block",
        totals.1,
        totals.3,
        totals.1 / decided
    );

    report.assert_agreement();
    println!(
        "\nagreement: all nodes' decided logs are pairwise compatible (min {} / max {} blocks)",
        report.min_decided_len() - 1,
        report.max_decided_len() - 1
    );
}
