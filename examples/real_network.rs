//! Runs a real 5-node TOB-SVD cluster over localhost TCP.
//!
//! ```sh
//! cargo run --release --example real_network
//! ```
//!
//! Each node is an OS thread with its own block store, talking to its
//! peers through length-prefixed wire frames (full logs on the wire).
//! The same sans-io `Validator` as in the simulator; Δ = 40 ms of wall
//! clock.

use std::time::Duration;

use tob_svd::runtime::{ClusterConfig, LocalCluster};

fn main() {
    let cfg = ClusterConfig::new(5).views(6).tick(Duration::from_millis(10));
    println!(
        "starting 5 TCP nodes on 127.0.0.1 — Δ = {}ms, {} views…\n",
        cfg.delta.ticks() * 10,
        cfg.views
    );
    let report = LocalCluster::run(cfg).expect("cluster runs");

    println!("per-node outcomes:");
    for o in report.outcomes() {
        println!(
            "  {}: decided {} blocks, {} votes, {} frames in / {} frames out",
            o.me,
            o.decided_len - 1,
            o.votes_cast,
            o.frames.0,
            o.frames.1
        );
    }

    report.assert_agreement();
    println!(
        "\nagreement: all nodes' decided logs are pairwise compatible (min {} / max {} blocks)",
        report.min_decided_len() - 1,
        report.max_decided_len() - 1
    );
}
