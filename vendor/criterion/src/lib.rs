//! Offline stand-in for `criterion` 0.5.
//!
//! Implements the API subset the workspace benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_with_input`, `Throughput`, `Bencher::iter` — with a simple
//! wall-clock timer instead of criterion's statistical machinery: a
//! short warm-up, then a fixed number of timed samples, reporting the
//! per-iteration mean and min. Good enough to run and eyeball; swap
//! the workspace path dependency for the real `criterion` for proper
//! statistics.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(name, sample_size, None, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`, which receives `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A two-part id: function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Per-iteration workload, used to derive throughput numbers.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`: a warm-up call, then the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let budget = self.samples.capacity();
        for _ in 0..budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size), iters_per_sample: 1 };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label:<50} (no samples)");
        return;
    }
    let min = *b.samples.iter().min().expect("non-empty");
    let sum: Duration = b.samples.iter().sum();
    let mean = sum / b.samples.len() as u32;
    let rate = match tp {
        Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
            format!("  {:>10.1} MiB/s", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            format!("  {:>10.1} elem/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {label:<50} mean {mean:>12.3?}  min {min:>12.3?}{rate}");
}

/// Declares a group of benchmark functions as a single runnable fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("to", 100u64), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
