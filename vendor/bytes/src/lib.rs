//! Offline stand-in for `bytes` 1.x.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view into shared
//! immutable bytes (`Arc<[u8]>` + range); [`BytesMut`] is a growable
//! buffer that freezes into a [`Bytes`]. The [`Buf`]/[`BufMut`] traits
//! carry the big-endian cursor methods the wire codec uses. Semantics
//! match the real crate for this subset; swap the workspace path
//! dependency for the real `bytes` when a registry is available.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable view into shared immutable bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of `range` (relative to this view), sharing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Read cursor over a byte source (big-endian getters, as in `bytes`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The current readable slice.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte. Panics if empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`. Panics if short.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`. Panics if short.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`. Panics if short.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copies `dst.len()` bytes out, advancing. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies `len` bytes into a fresh [`Bytes`], advancing.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = self.slice(..len);
        self.advance(len);
        out
    }
}

/// Write cursor over a growable byte sink (big-endian putters).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_getters_putters() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0xdead_beef);
        b.put_u64(42);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.len(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"xyz");
        assert!(r.is_empty());
    }

    #[test]
    fn slices_share_storage_and_bound_check() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(s.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.slice(..0).len(), 0);
        assert_eq!(b.slice(..).len(), 5);
        let nested = s.slice(1..);
        assert_eq!(nested.to_vec(), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32();
    }
}
