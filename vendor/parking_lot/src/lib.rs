//! Offline stand-in for `parking_lot`.
//!
//! Wraps the `std::sync` locks behind `parking_lot`'s non-poisoning
//! API (`lock()`/`read()`/`write()` return guards directly). A
//! poisoned std lock — a panic while holding the guard — is recovered
//! by taking the inner value, which matches `parking_lot`'s behavior
//! of not propagating poison.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (non-poisoning API).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock (non-poisoning API).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
