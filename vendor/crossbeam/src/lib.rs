//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` backed
//! by `std::sync::mpsc`. The runtime crate only needs an unbounded
//! MPSC channel with cloneable senders, which std provides directly.
//! Swap the workspace path dependency for the real `crossbeam` when a
//! registry is available.

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (cloneable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterator draining currently available values.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_clones() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.try_recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(rx.try_recv().is_err());
        }
    }
}
