//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` backed
//! by `std::sync::mpsc`, and `crossbeam::thread::scope` scoped threads
//! backed by `std::thread::scope`. These cover what the workspace needs
//! (an unbounded MPSC channel with cloneable senders; scoped worker
//! threads borrowing stack data). Swap the workspace path dependency
//! for the real `crossbeam` when a registry is available.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads (`crossbeam::thread` API subset over `std`).

    /// Creates a scope in which threads borrowing non-`'static` data can
    /// be spawned; all spawned threads are joined before `scope`
    /// returns.
    ///
    /// Mirrors `crossbeam::thread::scope`, including handing the scope
    /// handle to each spawned closure so workers can spawn more workers.
    /// One divergence from crossbeam: a panicking child thread
    /// propagates at the end of the scope (std semantics) instead of
    /// being collected into the returned `Result`, which is therefore
    /// always `Ok` here.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    /// A scope handle: spawns threads that may borrow data outliving the
    /// scope.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle
        /// (crossbeam convention) so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Handle to a scoped thread; joined implicitly at scope end if not
    /// joined explicitly.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let sum = std::sync::atomic::AtomicU64::new(0);
            super::scope(|s| {
                for chunk in data.chunks(2) {
                    s.spawn(|_| {
                        let part: u64 = chunk.iter().sum();
                        sum.fetch_add(part, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            assert_eq!(sum.into_inner(), 10);
        }

        #[test]
        fn nested_spawn_through_scope_handle() {
            let flag = std::sync::atomic::AtomicBool::new(false);
            super::scope(|s| {
                s.spawn(|s2| {
                    s2.spawn(|_| flag.store(true, std::sync::atomic::Ordering::Relaxed));
                });
            })
            .unwrap();
            assert!(flag.into_inner());
        }
    }
}

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (cloneable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterator draining currently available values.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_clones() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.try_recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(rx.try_recv().is_err());
        }
    }
}
