//! Offline stand-in for `proptest` 1.x.
//!
//! Implements the surface API the workspace's property tests use — the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`Strategy`]
//! with `prop_map`/`prop_flat_map`, integer/float range strategies,
//! tuple strategies, [`collection::vec`], [`option::of`], [`Just`],
//! [`any`], [`prop_oneof!`] and the `prop_assert*` macros — on top of
//! plain deterministic random generation.
//!
//! Differences from the real crate, deliberate for an offline stub:
//!
//! * **No shrinking.** A failing case reports its full `Debug` input
//!   instead of a minimized one.
//! * **Deterministic seeding.** Case `i` of test `t` derives its RNG
//!   from `hash(module_path::t, i)`, so failures reproduce exactly
//!   across runs and machines with no persistence files.
//!
//! Swap the workspace path dependency for the real `proptest` when a
//! registry is available; the test sources need no changes.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic RNG and per-test configuration.

    /// Splitmix64-based RNG seeding each test case deterministically.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the named test.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = TestRng { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) };
            // Discard one output so near-identical seeds decorrelate.
            let _ = rng.next_u64();
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Fair coin.
        pub fn coin(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    pub use super::{ProptestConfig as Config, TestCaseError};
}

pub use test_runner::TestRng;

/// Per-test configuration, set via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejects simply skip the case.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 1024 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases with other settings default.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be skipped (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (skip) with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f`, generating from the strategy
    /// `f` returns (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (retries a bounded number of
    /// times, then rejects the case).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<T: Strategy + ?Sized> Strategy for Box<T> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T: Strategy + ?Sized> Strategy for &T {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 straight candidates", self.whence);
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Clone + Debug + Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.coin()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy {self:?}");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy {self:?}");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident @ $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A @ 0);
impl_tuple_strategy!(A @ 0, B @ 1);
impl_tuple_strategy!(A @ 0, B @ 1, C @ 2);
impl_tuple_strategy!(A @ 0, B @ 1, C @ 2, D @ 3);
impl_tuple_strategy!(A @ 0, B @ 1, C @ 2, D @ 3, E @ 4);
impl_tuple_strategy!(A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5);
impl_tuple_strategy!(A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5, G @ 6);
impl_tuple_strategy!(A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5, G @ 6, H @ 7);
impl_tuple_strategy!(A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5, G @ 6, H @ 7, I @ 8);
impl_tuple_strategy!(A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5, G @ 6, H @ 7, I @ 8, J @ 9);
impl_tuple_strategy!(A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5, G @ 6, H @ 7, I @ 8, J @ 9, K @ 10);
impl_tuple_strategy!(A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5, G @ 6, H @ 7, I @ 8, J @ 9, K @ 10, L @ 11);

/// Uniform choice among boxed strategies of one value type
/// (the expansion of [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Clone + Debug> Union<V> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Clone + Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range {r:?}");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range {r:?}");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `Vec`s of `element` with length drawn from `size`
    /// (a `usize` for exact length, or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OfStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.coin() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// Strategy yielding `None` or `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy { inner }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
        Union,
    };
}

/// Extracts a human-readable message from a caught panic payload.
/// Used by the expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
pub fn __panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), ::std::format!($($fmt)+), left, right
        );
    }};
}

/// Fails the current test case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($left), stringify!($right), ::std::format!($($fmt)+), left
        );
    }};
}

/// Skips the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            $vis fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(case),
                    );
                    let input = $crate::Strategy::generate(&strategies, &mut rng);
                    let repr = ::std::format!("{input:?}");
                    // catch_unwind so a plain assert!/expect inside the
                    // body still reports the case number and input.
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            let ($($arg,)+) = input;
                            $body
                            ::std::result::Result::Ok(())
                        }),
                    );
                    match outcome {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(
                            $crate::TestCaseError::Reject(_),
                        )) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(
                            $crate::TestCaseError::Fail(msg),
                        )) => {
                            ::std::panic!(
                                "proptest case {}/{} failed: {}\n  input: {}",
                                case + 1,
                                config.cases,
                                msg,
                                repr,
                            );
                        }
                        ::std::result::Result::Err(payload) => {
                            let msg = $crate::__panic_message(payload.as_ref());
                            ::std::panic!(
                                "proptest case {}/{} panicked: {}\n  input: {}",
                                case + 1,
                                config.cases,
                                msg,
                                repr,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug)]
    struct Pair {
        a: u8,
        b: u64,
    }

    fn pair() -> impl Strategy<Value = Pair> {
        (0u8..10)
            .prop_flat_map(|a| (Just(a), u64::from(a)..100))
            .prop_map(|(a, b)| Pair { a, b })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn flat_map_dependency_holds(p in pair()) {
            prop_assert!(u64::from(p.a) <= p.b, "{} > {}", p.a, p.b);
            prop_assert!(p.a < 10 && p.b < 100);
        }

        #[test]
        fn vec_and_option_sizes(
            v in crate::collection::vec(0u32..5, 2..6),
            exact in crate::collection::vec(any::<bool>(), 3usize),
            o in crate::option::of(0i64..4),
            pick in prop_oneof![Just("x"), Just("y")],
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 3);
            if let Some(x) = o {
                prop_assert!((0..4).contains(&x));
            }
            prop_assert!(pick == "x" || pick == "y");
        }

        #[test]
        fn early_return_ok_works(mut n in 0u32..10) {
            n += 1;
            if n < 100 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = pair();
        let mut r1 = crate::TestRng::for_case("x", 3);
        let mut r2 = crate::TestRng::for_case("x", 3);
        let (a, b) = (strat.generate(&mut r1), strat.generate(&mut r2));
        assert_eq!((a.a, a.b), (b.a, b.b));
    }

    #[test]
    #[should_panic(expected = "panicked: boom\n  input: (2,)")]
    fn panicking_body_reports_case_and_input() {
        mod inner {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
                pub fn panics_on_two(x in 2u8..3) {
                    prop_assert!(x == 2); // strategy always yields 2
                    assert!(x != 2, "boom");
                }
            }
        }
        inner::panics_on_two();
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failure_reports_input() {
        mod inner {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
                pub fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 200, "x was {}", x);
                }
            }
        }
        inner::always_fails();
    }
}
