//! Offline stand-in for `serde_derive`.
//!
//! The workspace has no network access to crates.io, and nothing in the
//! repository actually serializes through serde yet — the derives exist
//! on config/metric types for forward compatibility. These derive
//! macros therefore expand to nothing; swap this path dependency for
//! the real `serde`/`serde_derive` when a registry is available.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
