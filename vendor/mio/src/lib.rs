//! Offline stand-in for the `mio` crate (API subset of 0.8).
//!
//! The build environment has no crates.io access and the workspace
//! denies `unsafe`, so this stand-in cannot call epoll/kqueue directly.
//! Instead it emulates *level-triggered* readiness on top of blocking-
//! free std sockets:
//!
//! * [`net::TcpStream`] readability is probed with `TcpStream::peek`
//!   (data buffered, EOF, or a socket error all count as readable;
//!   `WouldBlock` means not ready);
//! * [`net::TcpListener`] readability is probed by attempting a
//!   nonblocking `accept` and queueing any accepted connection
//!   internally, so the wrapper's own `accept` pops the queue;
//! * [`Poll::poll`] scans every registered source, returns as soon as
//!   any source is ready, and otherwise sleeps in sub-millisecond
//!   increments until the timeout elapses.
//!
//! Differences from real mio, documented so callers don't rely on them:
//!
//! * readiness is level-triggered only (real mio is edge-triggered);
//! * `Interest::WRITABLE` sources always report writable — callers must
//!   treat `WouldBlock` from `write` as the ground truth;
//! * the scan is O(registered sources) per wakeup rather than O(ready).
//!
//! The subset implemented is exactly what `tobsvd-runtime`'s ingest
//! event loop uses: `Poll`, `Registry`, `Events`, `Event`, `Token`,
//! `Interest`, `event::Source`, and `net::{TcpListener, TcpStream}`.
//! To use the real crate, replace the workspace `path` dependency with
//! `mio = { version = "0.8", features = ["os-poll", "net"] }`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Token identifying a registered event source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Interest set a source is registered with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable interest.
    pub const READABLE: Interest = Interest(0b01);
    /// Writable interest.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Union of two interest sets (named after the real crate's API,
    /// which predates the clippy lint).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether the set contains readable interest.
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Whether the set contains writable interest.
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// Event sources and the registration trait.
pub mod event {
    use super::{Interest, Registry, Token};
    use std::io;

    /// A readiness event delivered by [`super::Poll::poll`].
    #[derive(Clone, Copy, Debug)]
    pub struct Event {
        pub(crate) token: Token,
        pub(crate) readable: bool,
        pub(crate) writable: bool,
    }

    impl Event {
        /// The token the source was registered with.
        pub fn token(&self) -> Token {
            self.token
        }

        /// Whether the source is ready to read.
        pub fn is_readable(&self) -> bool {
            self.readable
        }

        /// Whether the source is ready to write (always true for
        /// writable-registered sources in this stand-in).
        pub fn is_writable(&self) -> bool {
            self.writable
        }
    }

    /// An event source that can be registered with a [`Registry`].
    pub trait Source {
        /// Registers the source.
        ///
        /// # Errors
        ///
        /// Propagates socket-handle duplication failures.
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;

        /// Updates the source's token and interest set.
        ///
        /// # Errors
        ///
        /// Fails if the source was never registered.
        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;

        /// Removes the source from the registry.
        ///
        /// # Errors
        ///
        /// Fails if the source was never registered.
        fn deregister(&mut self, registry: &Registry) -> io::Result<()>;
    }
}

pub use event::Event;

/// A collection of readiness events filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// Creates an event buffer holding up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { inner: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// Iterates over the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Whether the last poll produced no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// What the registry holds per source: a cloned handle it can probe
/// without borrowing the caller's wrapper.
enum ProbeHandle {
    Stream(std::net::TcpStream),
    Listener {
        inner: std::net::TcpListener,
        queue: Arc<Mutex<VecDeque<(std::net::TcpStream, SocketAddr)>>>,
    },
}

impl ProbeHandle {
    /// Level-triggered readiness probe. Readable covers buffered data,
    /// EOF and socket errors (so the owner observes the condition on
    /// its next read). Writable is approximated as always-ready.
    fn ready(&self) -> (bool, bool) {
        match self {
            ProbeHandle::Stream(s) => {
                let mut probe = [0u8; 1];
                match s.peek(&mut probe) {
                    Ok(_) => (true, true),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => (false, true),
                    Err(_) => (true, true),
                }
            }
            ProbeHandle::Listener { inner, queue } => {
                let mut q = lock(queue);
                while let Ok(pair) = inner.accept() {
                    q.push_back(pair);
                }
                (!q.is_empty(), false)
            }
        }
    }
}

struct Slot {
    token: Token,
    interest: Interest,
    probe: ProbeHandle,
}

/// Handle used to (de)register event sources with a [`Poll`].
#[derive(Clone)]
pub struct Registry {
    slots: Arc<Mutex<Vec<Slot>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A poisoned registry lock only means another thread panicked while
    // holding it; the slot list itself is still structurally valid.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Registry {
    /// Registers `source` under `token` with the given interests.
    ///
    /// # Errors
    ///
    /// Propagates socket-handle duplication failures.
    pub fn register<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.register(self, token, interests)
    }

    /// Updates the registration of `source`.
    ///
    /// # Errors
    ///
    /// Fails if the source was never registered.
    pub fn reregister<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.reregister(self, token, interests)
    }

    /// Removes `source` from the registry.
    ///
    /// # Errors
    ///
    /// Fails if the source was never registered.
    pub fn deregister<S: event::Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        source.deregister(self)
    }

    fn add(&self, slot: Slot) {
        lock(&self.slots).push(slot);
    }

    fn update(&self, old: Token, new: Token, interest: Interest) -> io::Result<()> {
        let mut slots = lock(&self.slots);
        for slot in slots.iter_mut() {
            if slot.token == old {
                slot.token = new;
                slot.interest = interest;
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "source not registered"))
    }

    fn remove(&self, token: Token) -> io::Result<()> {
        let mut slots = lock(&self.slots);
        let before = slots.len();
        slots.retain(|s| s.token != token);
        if slots.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "source not registered"));
        }
        Ok(())
    }
}

/// Readiness poller over registered sources.
pub struct Poll {
    registry: Registry,
}

/// Granularity of the emulated wait between readiness scans.
const SCAN_PAUSE: Duration = Duration::from_micros(500);

impl Poll {
    /// Creates a poller.
    ///
    /// # Errors
    ///
    /// Never fails in this stand-in (signature kept for API parity).
    pub fn new() -> io::Result<Poll> {
        Ok(Poll { registry: Registry { slots: Arc::new(Mutex::new(Vec::new())) } })
    }

    /// The registry sources are registered with.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Waits for readiness events, filling `events`.
    ///
    /// Returns immediately once any registered source is ready, or when
    /// `timeout` elapses (`None` blocks until something is ready).
    ///
    /// # Errors
    ///
    /// Never fails in this stand-in (signature kept for API parity).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            events.clear();
            {
                let slots = lock(&self.registry.slots);
                for slot in slots.iter() {
                    if events.inner.len() >= events.capacity {
                        break;
                    }
                    let (readable, writable) = slot.probe.ready();
                    let readable = readable && slot.interest.is_readable();
                    let writable = writable && slot.interest.is_writable();
                    if readable || writable {
                        events.inner.push(Event { token: slot.token, readable, writable });
                    }
                }
            }
            if !events.is_empty() {
                return Ok(());
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Ok(());
                    }
                    std::thread::sleep(SCAN_PAUSE.min(d - now));
                }
                None => std::thread::sleep(SCAN_PAUSE),
            }
        }
    }
}

/// Nonblocking TCP types mirroring `mio::net`.
pub mod net {
    use super::{event, lock, Interest, ProbeHandle, Registry, Slot, Token};
    use std::collections::VecDeque;
    use std::io::{self, Read, Write};
    use std::net::SocketAddr;
    use std::sync::{Arc, Mutex};

    /// A nonblocking TCP stream.
    pub struct TcpStream {
        inner: std::net::TcpStream,
        registered: Option<Token>,
    }

    impl TcpStream {
        /// Connects to `addr` and switches the socket to nonblocking
        /// mode. Unlike real mio this connect itself is blocking; the
        /// returned stream behaves identically afterwards.
        ///
        /// # Errors
        ///
        /// Propagates connection failures.
        pub fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
            let s = std::net::TcpStream::connect(addr)?;
            Self::from_std_checked(s)
        }

        /// Wraps an already-connected std stream, switching it to
        /// nonblocking mode.
        ///
        /// # Panics
        ///
        /// Panics if the socket mode cannot be changed (matches real
        /// mio's `from_std`, which assumes a healthy socket; use
        /// [`TcpStream::from_std_checked`] to handle the error).
        pub fn from_std(s: std::net::TcpStream) -> TcpStream {
            match Self::from_std_checked(s) {
                Ok(stream) => stream,
                Err(e) => panic!("from_std: cannot make socket nonblocking: {e}"),
            }
        }

        /// Fallible [`TcpStream::from_std`].
        ///
        /// # Errors
        ///
        /// Propagates `set_nonblocking` failures.
        pub fn from_std_checked(s: std::net::TcpStream) -> io::Result<TcpStream> {
            s.set_nonblocking(true)?;
            Ok(TcpStream { inner: s, registered: None })
        }

        /// The remote address.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        /// The local address.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Sets TCP_NODELAY.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
            self.inner.set_nodelay(nodelay)
        }

        /// Shuts down the connection.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub fn shutdown(&self, how: std::net::Shutdown) -> io::Result<()> {
            self.inner.shutdown(how)
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.inner.write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    impl event::Source for TcpStream {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            let probe = ProbeHandle::Stream(self.inner.try_clone()?);
            registry.add(Slot { token, interest: interests, probe });
            self.registered = Some(token);
            Ok(())
        }

        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            match self.registered {
                Some(old) => {
                    registry.update(old, token, interests)?;
                    self.registered = Some(token);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "not registered")),
            }
        }

        fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
            match self.registered.take() {
                Some(token) => registry.remove(token),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "not registered")),
            }
        }
    }

    /// A nonblocking TCP listener.
    pub struct TcpListener {
        inner: std::net::TcpListener,
        queue: Arc<Mutex<VecDeque<(std::net::TcpStream, SocketAddr)>>>,
        registered: Option<Token>,
    }

    impl TcpListener {
        /// Binds to `addr` in nonblocking mode.
        ///
        /// # Errors
        ///
        /// Propagates bind failures.
        pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
            let l = std::net::TcpListener::bind(addr)?;
            Self::from_std_checked(l)
        }

        /// Wraps an already-bound std listener, switching it to
        /// nonblocking mode.
        ///
        /// # Panics
        ///
        /// Panics if the socket mode cannot be changed (matches real
        /// mio's `from_std`; use [`TcpListener::from_std_checked`] to
        /// handle the error).
        pub fn from_std(l: std::net::TcpListener) -> TcpListener {
            match Self::from_std_checked(l) {
                Ok(listener) => listener,
                Err(e) => panic!("from_std: cannot make listener nonblocking: {e}"),
            }
        }

        /// Fallible [`TcpListener::from_std`].
        ///
        /// # Errors
        ///
        /// Propagates `set_nonblocking` failures.
        pub fn from_std_checked(l: std::net::TcpListener) -> io::Result<TcpListener> {
            l.set_nonblocking(true)?;
            Ok(TcpListener {
                inner: l,
                queue: Arc::new(Mutex::new(VecDeque::new())),
                registered: None,
            })
        }

        /// Accepts a connection: pops one queued by the readiness probe,
        /// else tries the socket directly.
        ///
        /// # Errors
        ///
        /// `WouldBlock` when no connection is pending, otherwise the
        /// underlying accept error.
        pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            if let Some((s, addr)) = lock(&self.queue).pop_front() {
                return Ok((TcpStream::from_std_checked(s)?, addr));
            }
            let (s, addr) = self.inner.accept()?;
            Ok((TcpStream::from_std_checked(s)?, addr))
        }

        /// The bound address.
        ///
        /// # Errors
        ///
        /// Propagates the underlying socket error.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    impl event::Source for TcpListener {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            let probe = ProbeHandle::Listener {
                inner: self.inner.try_clone()?,
                queue: Arc::clone(&self.queue),
            };
            registry.add(Slot { token, interest: interests, probe });
            self.registered = Some(token);
            Ok(())
        }

        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            match self.registered {
                Some(old) => {
                    registry.update(old, token, interests)?;
                    self.registered = Some(token);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "not registered")),
            }
        }

        fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
            match self.registered.take() {
                Some(token) => registry.remove(token),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "not registered")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);

    #[test]
    fn listener_and_stream_readiness_roundtrip() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);

        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let mut listener = net::TcpListener::bind(addr).unwrap();
        let local = listener.local_addr().unwrap();
        poll.registry().register(&mut listener, LISTENER, Interest::READABLE).unwrap();

        // Nothing connected yet: a short poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty());

        // Connect; the listener becomes readable.
        let mut client = std::net::TcpStream::connect(local).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert!(events.iter().any(|e| e.token() == LISTENER && e.is_readable()));

        let (mut server_side, _) = listener.accept().unwrap();
        poll.registry().register(&mut server_side, CLIENT, Interest::READABLE).unwrap();

        // No data yet: only quiet sockets remain.
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(!events.iter().any(|e| e.token() == CLIENT));

        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert!(events.iter().any(|e| e.token() == CLIENT && e.is_readable()));

        let mut buf = [0u8; 4];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // EOF also reads as readable (owner must observe the close).
        drop(client);
        poll.poll(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert!(events.iter().any(|e| e.token() == CLIENT && e.is_readable()));
        assert_eq!(server_side.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn deregister_removes_source() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let mut listener = net::TcpListener::bind(addr).unwrap();
        let local = listener.local_addr().unwrap();
        poll.registry().register(&mut listener, LISTENER, Interest::READABLE).unwrap();
        let _client = std::net::TcpStream::connect(local).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert!(!events.is_empty());
        poll.registry().deregister(&mut listener).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty());
        // Double-deregister fails cleanly.
        assert!(poll.registry().deregister(&mut listener).is_err());
    }

    #[test]
    fn interest_set_operations() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }
}
