//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the `rand` API the workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range`, `gen_bool` and `gen` — on top of a
//! small, fully deterministic xoshiro256++ generator. Determinism per
//! seed is the property the simulator and its regression tests rely
//! on; statistical quality beyond "good enough for randomized tests"
//! is not a goal. Swap the workspace path dependency for the real
//! `rand` when a registry is available.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the raw bit source.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64
    /// (the same convention the real `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types into which an [`RngCore`] can sample uniformly via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `span` (`span > 0`), bias negligible for test use.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    rng.next_u64() % span
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] — the user-facing API.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }

    /// Uniform sample of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..16).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1u64..=8);
            assert!((1..=8).contains(&y));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious bias: {hits}");
    }
}
