//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports
//! the no-op derive macros so `#[derive(Serialize, Deserialize)]`
//! compiles without a crates.io registry. No actual serialization is
//! implemented; replace the workspace path dependency with the real
//! `serde` when network access is available.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de>: Sized {}
