//! Per-rule fixture tests: each rule fires on its `*_flagged.rs`
//! fixture and stays silent on the `*_clean.rs` twin. Fixtures are
//! plain text under `tests/fixtures/` (never compiled), so they can
//! contain exactly the constructs the rules reject.

use std::fs;
use std::path::PathBuf;

use tobsvd_audit::policy::PolicyClass;
use tobsvd_audit::rules::{ambient, delta_arith, index, iteration, panic_path, wire_tags, Finding};
use tobsvd_audit::source::SourceFile;
use tobsvd_audit::RULE_NAMES;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Parses a fixture as if it lived in the protocol core (the strictest
/// scope), so every per-file rule is meaningfully exercised.
fn parse(name: &str) -> SourceFile {
    SourceFile::parse(
        "crates/core/src/fixture.rs",
        PolicyClass::Deterministic,
        &fixture(name),
        RULE_NAMES,
    )
}

fn check_pair(
    rule: &str,
    check: fn(&SourceFile) -> Vec<Finding>,
    flagged: &str,
    clean: &str,
    min_findings: usize,
) {
    let hits = check(&parse(flagged));
    assert!(
        hits.len() >= min_findings,
        "{rule}: expected >= {min_findings} findings in {flagged}, got {}: {hits:?}",
        hits.len()
    );
    for f in &hits {
        assert_eq!(f.rule, rule, "finding carries the wrong rule name: {f:?}");
        assert!(f.line > 0, "finding must carry a 1-based line: {f:?}");
    }
    let misses = check(&parse(clean));
    assert!(misses.is_empty(), "{rule}: false positives in {clean}: {misses:?}");
}

#[test]
fn iteration_rule_fires_on_hash_iteration_only() {
    // Three sites: `.iter()` on a map, `.iter()` on a set, bare `for`
    // consumption. The clean twin iterates a BTreeMap and does a plain
    // order-free `.get` on a HashMap.
    check_pair(
        "no-nondeterministic-iteration",
        iteration::check,
        "iteration_flagged.rs",
        "iteration_clean.rs",
        3,
    );
}

#[test]
fn panic_rule_fires_on_unwrap_expect_and_macros() {
    // unwrap, expect, panic!, todo! — four sites.
    check_pair("no-panic-path", panic_path::check, "panic_flagged.rs", "panic_clean.rs", 4);
}

#[test]
fn delta_rule_fires_on_unchecked_tick_arithmetic() {
    // `start + ticks * factor`: both the add and the mul sit in a
    // `ticks` window.
    check_pair(
        "checked-delta-arithmetic",
        delta_arith::check,
        "delta_flagged.rs",
        "delta_clean.rs",
        1,
    );
}

#[test]
fn ambient_rule_fires_on_wall_clock_and_entropy() {
    // Instant::now() and RandomState::new().
    check_pair(
        "no-ambient-nondeterminism",
        ambient::check,
        "ambient_flagged.rs",
        "ambient_clean.rs",
        2,
    );
}

#[test]
fn index_rule_fires_on_dynamic_indexing_only() {
    // `v[i]` and `words[wc - 1]`; the clean twin uses `.get` and a
    // literal index into a fixed-size array (exempt by design).
    check_pair("no-unchecked-index", index::check, "index_flagged.rs", "index_clean.rs", 2);
}

// ---- wire-tag-coverage (workspace-level, inline fixtures) ----

fn wire_file(rel: &str, text: &str) -> SourceFile {
    SourceFile::parse(rel, PolicyClass::Deterministic, text, RULE_NAMES)
}

const ENUM_SRC: &str = "pub enum Payload {\n    Log { a: u32 },\n    Vote { b: u32 },\n}\n";

#[test]
fn wire_tags_fires_when_variant_missing_from_codec_or_fuzz() {
    let enum_file = wire_file(wire_tags::ENUM_FILE, ENUM_SRC);
    // Codec encodes+decodes Log but never mentions Vote; the fuzz suite
    // covers Log only.
    let codec = wire_file(
        wire_tags::CODEC_FILE,
        "fn enc() { let _ = Payload::Log { a: 1 }; }\nfn dec() { let _ = Payload::Log { a: 2 }; }\n",
    );
    let fuzz = wire_file(wire_tags::FUZZ_FILE, "fn f() { let _ = Payload::Log { a: 3 }; }\n");
    let findings = wire_tags::check(&enum_file, &codec, Some(&fuzz));
    assert!(
        findings.iter().any(|f| f.msg.contains("Vote")),
        "missing Vote coverage must be reported: {findings:?}"
    );
    assert!(
        !findings.iter().any(|f| f.msg.contains("Log") && !f.msg.contains("Vote")),
        "covered Log variant must not be reported: {findings:?}"
    );
}

#[test]
fn wire_tags_clean_when_every_variant_covered_everywhere() {
    let enum_file = wire_file(wire_tags::ENUM_FILE, ENUM_SRC);
    let codec = wire_file(
        wire_tags::CODEC_FILE,
        "fn enc() { let _ = (Payload::Log { a: 1 }, Payload::Vote { b: 1 }); }\n\
         fn dec() { let _ = (Payload::Log { a: 2 }, Payload::Vote { b: 2 }); }\n",
    );
    let fuzz = wire_file(
        wire_tags::FUZZ_FILE,
        "fn f() { let _ = (Payload::Log { a: 3 }, Payload::Vote { b: 3 }); }\n",
    );
    let findings = wire_tags::check(&enum_file, &codec, Some(&fuzz));
    assert!(findings.is_empty(), "fully covered enum must be clean: {findings:?}");
}

#[test]
fn wire_tags_fires_when_fuzz_suite_is_absent() {
    let enum_file = wire_file(wire_tags::ENUM_FILE, ENUM_SRC);
    let codec = wire_file(
        wire_tags::CODEC_FILE,
        "fn enc() { let _ = (Payload::Log { a: 1 }, Payload::Vote { b: 1 }); }\n\
         fn dec() { let _ = (Payload::Log { a: 2 }, Payload::Vote { b: 2 }); }\n",
    );
    let findings = wire_tags::check(&enum_file, &codec, None);
    assert_eq!(findings.len(), 2, "every variant lacks fuzz coverage: {findings:?}");
}
