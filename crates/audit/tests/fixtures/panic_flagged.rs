//! Fixture: panic paths on live code.
pub fn head(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn must(v: Option<u8>) -> u8 {
    v.expect("present")
}

pub fn boom() {
    panic!("unreachable state");
}

pub fn later() {
    todo!()
}
