//! Fixture: time and seeds flow in as parameters.
pub fn stamp(now_ticks: u64) -> u64 {
    now_ticks
}

pub fn derive_seed(base: u64, idx: u64) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(idx)
}
