//! Fixture: unchecked Δ-tick arithmetic.
pub fn window_end(start: u64, ticks: u64, factor: u64) -> u64 {
    start + ticks * factor
}
