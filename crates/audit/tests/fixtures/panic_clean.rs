//! Fixture: the same shapes with graceful arms.
pub fn head(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

pub fn must(v: Option<u8>) -> u8 {
    v.unwrap_or(0)
}

pub fn checked(v: Option<u8>) -> Result<u8, String> {
    v.ok_or_else(|| "missing".to_string())
}
