//! Fixture: ambient wall clock and entropy in deterministic code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn seed_state() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}
