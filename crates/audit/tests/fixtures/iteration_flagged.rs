//! Fixture: hash-order iteration in a deterministic crate.
use std::collections::{HashMap, HashSet};

pub fn tally(scores: &HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in scores.iter() {
        total += v;
    }
    total
}

pub fn collect_ids(seen: &HashSet<u64>) -> Vec<u64> {
    seen.iter().copied().collect()
}

pub fn consume(pending: HashMap<u32, u64>) -> u64 {
    let mut acc = 0;
    for (_, v) in pending {
        acc += v;
    }
    acc
}
