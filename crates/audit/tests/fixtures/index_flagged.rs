//! Fixture: unchecked dynamic indexing.
pub fn pick(v: &[u8], i: usize) -> u8 {
    v[i]
}

pub fn last_word(words: &[u64], wc: usize) -> u64 {
    words[wc - 1]
}
