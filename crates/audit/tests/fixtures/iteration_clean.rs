//! Fixture: ordered iteration and order-free hash-map use.
use std::collections::{BTreeMap, HashMap};

pub fn tally(scores: &BTreeMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in scores.iter() {
        total += v;
    }
    total
}

pub fn lookup(memo: &HashMap<u64, u64>, k: u64) -> Option<u64> {
    memo.get(&k).copied()
}
