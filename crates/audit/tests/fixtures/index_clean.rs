//! Fixture: checked access; literal indices are exempt.
pub fn pick(v: &[u8], i: usize) -> u8 {
    v.get(i).copied().unwrap_or(0)
}

pub fn first_fixed(arr: [u64; 4]) -> u64 {
    arr[0]
}
