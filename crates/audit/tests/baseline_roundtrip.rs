//! Baseline format round-trip and rejection tests.

use tobsvd_audit::engine::{baseline_from, reconcile};
use tobsvd_audit::rules::Finding;
use tobsvd_audit::Baseline;

fn entry(rule: &'static str, file: &str, count: usize) -> ((String, String), usize) {
    ((rule.to_string(), file.to_string()), count)
}

#[test]
fn render_parse_round_trips() {
    let mut b = Baseline::default();
    b.counts.extend([
        entry("no-panic-path", "crates/core/src/a.rs", 3),
        entry("no-unchecked-index", "crates/crypto/src/b.rs", 18),
        entry("no-nondeterministic-iteration", "crates/sim/src/c.rs", 1),
    ]);
    let text = b.render();
    let reparsed = Baseline::parse(&text).expect("rendered baseline parses");
    assert_eq!(reparsed.counts, b.counts);
    assert_eq!(reparsed.total(), 22);
    // Canonical render: parse(render(x)).render() == render(x).
    assert_eq!(reparsed.render(), text);
}

#[test]
fn empty_text_is_empty_baseline() {
    let b = Baseline::parse("").expect("empty baseline");
    assert!(b.counts.is_empty());
    assert_eq!(b.total(), 0);
}

#[test]
fn comments_and_blank_lines_are_ignored() {
    let text = "# a comment\n\n[[entry]]\nrule = \"no-panic-path\"\n# interleaved\nfile = \"crates/core/src/a.rs\"\ncount = 2\n";
    let b = Baseline::parse(text).expect("parses");
    assert_eq!(b.counts.len(), 1);
    assert_eq!(b.total(), 2);
}

#[test]
fn garbage_and_duplicates_are_rejected() {
    assert!(Baseline::parse("not toml at all").is_err());
    assert!(Baseline::parse("[[entry]]\nrule = \"no-panic-path\"\n").is_err(), "incomplete entry");
    let dup = "[[entry]]\nrule = \"r\"\nfile = \"f\"\ncount = 1\n\
               [[entry]]\nrule = \"r\"\nfile = \"f\"\ncount = 2\n";
    assert!(Baseline::parse(dup).is_err(), "duplicate (rule, file) must be rejected");
}

#[test]
fn reconcile_classifies_violations_grandfathered_and_stale() {
    let f = |rule: &'static str, file: &str, line: u32| Finding {
        rule,
        file: file.to_string(),
        line,
        msg: String::new(),
    };
    let findings = vec![
        f("no-panic-path", "crates/core/src/a.rs", 1),
        f("no-panic-path", "crates/core/src/a.rs", 2),
        f("no-unchecked-index", "crates/crypto/src/b.rs", 5),
    ];
    let mut b = Baseline::default();
    b.counts.extend([
        entry("no-panic-path", "crates/core/src/a.rs", 1), // 2 found: violation
        entry("no-unchecked-index", "crates/crypto/src/b.rs", 3), // 1 found: stale
        entry("no-ambient-nondeterminism", "crates/sim/src/c.rs", 2), // 0 found: stale
    ]);
    let report = reconcile(findings, &b);
    assert!(!report.clean());
    assert!(!report.exact());
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.stale.len(), 2);
    assert_eq!(report.grandfathered, 1);
    assert_eq!(report.total_findings, 3);
}

#[test]
fn baseline_from_pins_exactly_the_scan() {
    let f = |rule: &'static str, line: u32| Finding {
        rule,
        file: "crates/core/src/a.rs".to_string(),
        line,
        msg: String::new(),
    };
    let findings = vec![f("no-panic-path", 1), f("no-panic-path", 9), f("no-unchecked-index", 3)];
    let b = baseline_from(&findings);
    assert_eq!(b.total(), 3);
    let report = reconcile(findings, &b);
    assert!(report.exact(), "a freshly generated baseline is exact by construction");
}
