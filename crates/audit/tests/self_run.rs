//! The audit gate, run on this workspace itself: the checked-in
//! `audit.toml` must reconcile *exactly* — no new findings, no stale
//! pins. This is the ratchet: fixing a site makes a pin stale, which
//! fails here until the pin is lowered, so the debt count only shrinks.

use std::fs;
use std::path::PathBuf;

use tobsvd_audit::audit;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_clean_against_checked_in_baseline() {
    let root = workspace_root();
    let baseline = fs::read_to_string(root.join("audit.toml")).expect("audit.toml at repo root");
    let report = audit(&root, &baseline).expect("scan succeeds");
    assert!(
        report.violations.is_empty(),
        "new findings beyond audit.toml — fix them or justify with an \
         audit-allow marker: {:#?}",
        report.violations
    );
    assert!(
        report.stale.is_empty(),
        "stale pins — some grandfathered findings were fixed; lower the \
         pinned counts (cargo run -p tobsvd-audit -- --write-baseline): {:?}",
        report.stale
    );
    assert!(report.exact());
}

#[test]
fn empty_baseline_reports_only_grandfathered_debt() {
    // With no baseline at all, the only findings are the documented
    // grandfathered set (the from-scratch SHA-256's bounds-provable
    // indexing). Anything else means a rule regressed or new debt
    // slipped in without touching audit.toml.
    let report = audit(&workspace_root(), "").expect("scan succeeds");
    for (rule, file, _, _, findings) in &report.violations {
        assert_eq!(
            (rule.as_str(), file.as_str()),
            ("no-unchecked-index", "crates/crypto/src/sha256impl.rs"),
            "unexpected un-baselined findings: {findings:#?}"
        );
    }
}
