//! Workspace walker, rule driver, and baseline reconciliation.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::policy::{classify, rule_applies, PolicyClass};
use crate::rules::{per_file_rules, wire_tags, Finding, RULE_NAMES};
use crate::source::SourceFile;

/// All parsed sources of the workspace, in sorted path order.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

/// Loads every non-skipped `.rs` file under `root`.
///
/// Directory entries are sorted by name so the scan (and therefore the
/// report and any written baseline) is byte-identical across platforms
/// and runs — the auditor holds itself to the determinism rules it
/// enforces.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for rel in paths {
        let class = classify(&rel);
        if class == PolicyClass::Skip {
            continue;
        }
        let text = fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile::parse(&rel, class, &text, RULE_NAMES));
    }
    Ok(Workspace { root: root.to_path_buf(), files })
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if path.is_dir() {
            if matches!(name, "vendor" | "target" | ".git" | ".github") {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Runs every rule over the workspace, applying policy scope,
/// test-region filtering and `audit-allow` markers.
pub fn run_rules(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        for (rule, check) in per_file_rules() {
            if !rule_applies(rule, file.class, &file.rel_path) {
                continue;
            }
            for f in check(file) {
                if file.is_test_line(f.line) || file.allowed(f.line, f.rule) {
                    continue;
                }
                findings.push(f);
            }
        }
    }
    // Workspace-level wire-tag coverage.
    let by_path = |p: &str| ws.files.iter().find(|f| f.rel_path == p);
    if let (Some(enum_file), Some(codec_file)) =
        (by_path(wire_tags::ENUM_FILE), by_path(wire_tags::CODEC_FILE))
    {
        let fuzz_file = by_path(wire_tags::FUZZ_FILE);
        for f in wire_tags::check(enum_file, codec_file, fuzz_file) {
            // Coverage findings point at variant declaration lines; the
            // allow marker still applies, test-region filtering does not
            // (the gap *is* about test coverage).
            if enum_file.allowed(f.line, f.rule) {
                continue;
            }
            findings.push(f);
        }
    } else {
        findings.push(Finding {
            rule: "wire-tag-coverage",
            file: wire_tags::ENUM_FILE.to_string(),
            line: 1,
            msg: "payload enum or codec file missing from workspace".to_string(),
        });
    }
    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line))
    });
    findings
}

/// Outcome of reconciling a scan against the checked-in baseline.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings beyond the pinned count, grouped per (rule, file).
    pub violations: Vec<(String, String, usize, usize, Vec<Finding>)>,
    /// Baseline entries whose pinned count exceeds the actual count:
    /// (rule, file, pinned, actual).
    pub stale: Vec<(String, String, usize, usize)>,
    /// Findings covered by the baseline.
    pub grandfathered: usize,
    /// Total findings produced by the scan.
    pub total_findings: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Clean *and* every pin is tight — the state the self-run test and
    /// a freshly written baseline both require.
    pub fn exact(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Groups findings per (rule, file) and compares against the baseline.
pub fn reconcile(findings: Vec<Finding>, baseline: &Baseline) -> Report {
    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        groups.entry((f.rule.to_string(), f.file.clone())).or_default().push(f);
    }
    let mut report = Report::default();
    for ((rule, file), group) in &groups {
        let pinned = baseline.counts.get(&(rule.clone(), file.clone())).copied().unwrap_or(0);
        report.total_findings += group.len();
        if group.len() > pinned {
            report.violations.push((rule.clone(), file.clone(), pinned, group.len(), group.clone()));
        } else if group.len() < pinned {
            report.stale.push((rule.clone(), file.clone(), pinned, group.len()));
            report.grandfathered += group.len();
        } else {
            report.grandfathered += group.len();
        }
    }
    // Baseline entries with no findings at all are stale too.
    for ((rule, file), pinned) in &baseline.counts {
        if *pinned > 0 && !groups.contains_key(&(rule.clone(), file.clone())) {
            report.stale.push((rule.clone(), file.clone(), *pinned, 0));
        }
    }
    report.stale.sort();
    report
}

/// Builds a baseline that pins exactly the current scan's counts.
pub fn baseline_from(findings: &[Finding]) -> Baseline {
    let mut b = Baseline::default();
    for f in findings {
        *b.counts.entry((f.rule.to_string(), f.file.clone())).or_insert(0) += 1;
    }
    b
}
