//! # tobsvd-audit — determinism & panic-safety lint pass
//!
//! The workspace's verification story — byte-identical transcripts,
//! fixed-seed checker fingerprints, thread-count-invariant sweeps —
//! rests on properties `clippy` cannot see: no hash-order iteration in
//! protocol crates, no wall clock or ambient entropy outside the
//! runtime, no unchecked Δ arithmetic, no panic paths on
//! Byzantine-reachable code. This crate machine-checks those
//! properties on every commit with a purpose-built lexer and a small
//! rule engine — no dependencies, same offline constraint as
//! `vendor/`.
//!
//! ## Rules
//!
//! | rule | scope | module |
//! |------|-------|--------|
//! | `no-nondeterministic-iteration` | deterministic + tooling crates | [`rules::iteration`] |
//! | `no-panic-path` | `core`/`types`/`crypto` non-test | [`rules::panic_path`] |
//! | `checked-delta-arithmetic` | deterministic crates | [`rules::delta_arith`] |
//! | `no-ambient-nondeterminism` | deterministic + tooling crates | [`rules::ambient`] |
//! | `wire-tag-coverage` | workspace-level | [`rules::wire_tags`] |
//! | `no-unchecked-index` | `core`/`types`/`crypto` non-test | [`rules::index`] |
//!
//! ## Baseline ratchet
//!
//! Grandfathered findings live in `audit.toml` at the workspace root
//! as pinned per-(rule, file) counts. New findings beyond a pin are
//! deny-by-default; fixing a site lowers the pin. The self-run test
//! requires the pins to be *exact*, so the debt number can only move
//! down. Individual sites with a written justification use inline
//! `// audit-allow: <rule> <reason>` markers instead of the baseline.
//!
//! Run it as `cargo run -p tobsvd-audit -- --deny` (CI does, on every
//! push).

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod policy;
pub mod rules;
pub mod source;

pub use baseline::Baseline;
pub use engine::{baseline_from, load_workspace, reconcile, run_rules, Report, Workspace};
pub use rules::{Finding, RULE_NAMES};

use std::path::Path;

/// Scans the workspace at `root` and reconciles against the baseline
/// text (pass `""` for an empty baseline).
pub fn audit(root: &Path, baseline_text: &str) -> Result<Report, String> {
    let baseline = Baseline::parse(baseline_text).map_err(|e| e.to_string())?;
    let ws = load_workspace(root).map_err(|e| format!("scan failed: {e}"))?;
    let findings = run_rules(&ws);
    Ok(reconcile(findings, &baseline))
}
