//! `tobsvd-audit` CLI.
//!
//! ```text
//! cargo run -p tobsvd-audit               # report against audit.toml
//! cargo run -p tobsvd-audit -- --deny     # exit 1 on violations (CI)
//! cargo run -p tobsvd-audit -- --write-baseline   # regenerate pins
//! cargo run -p tobsvd-audit -- --root /path/to/ws # explicit root
//! cargo run -p tobsvd-audit -- --list     # dump every finding
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use tobsvd_audit::{baseline_from, load_workspace, reconcile, run_rules, Baseline};

struct Args {
    root: PathBuf,
    deny: bool,
    write_baseline: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace containing this crate's manifest.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    let mut deny = false;
    let mut write_baseline = false;
    let mut list = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--write-baseline" => write_baseline = true,
            "--list" => list = true,
            "--root" => {
                let Some(p) = it.next() else {
                    return Err("--root needs a path".to_string());
                };
                root = PathBuf::from(p);
            }
            "--help" | "-h" => {
                println!(
                    "tobsvd-audit: determinism & panic-safety lint pass\n\n\
                     USAGE: tobsvd-audit [--root PATH] [--deny] [--write-baseline] [--list]\n\n\
                     --root PATH        workspace root (default: this workspace)\n\
                     --deny             exit nonzero when findings exceed the baseline\n\
                     --write-baseline   rewrite audit.toml pinning current counts\n\
                     --list             print every finding, including grandfathered ones"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args { root, deny, write_baseline, list })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tobsvd-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let ws = match load_workspace(&args.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("tobsvd-audit: scan of {} failed: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let findings = run_rules(&ws);

    if args.write_baseline {
        let baseline = baseline_from(&findings);
        let path = args.root.join("audit.toml");
        if let Err(e) = fs::write(&path, baseline.render()) {
            eprintln!("tobsvd-audit: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "tobsvd-audit: wrote {} ({} entries, {} findings pinned)",
            path.display(),
            baseline.counts.len(),
            baseline.total()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_path = args.root.join("audit.toml");
    let baseline_text = fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = match Baseline::parse(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("tobsvd-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.msg);
        }
    }

    let report = reconcile(findings, &baseline);

    for (rule, file, pinned, actual, group) in &report.violations {
        eprintln!(
            "VIOLATION [{rule}] {file}: {actual} finding(s), baseline allows {pinned}:"
        );
        for f in group {
            eprintln!("  {}:{}: {}", f.file, f.line, f.msg);
        }
    }
    for (rule, file, pinned, actual) in &report.stale {
        eprintln!(
            "stale baseline [{rule}] {file}: pinned {pinned} but found {actual} — \
             lower the pin (cargo run -p tobsvd-audit -- --write-baseline)"
        );
    }

    println!(
        "tobsvd-audit: {} file(s) scanned, {} finding(s): {} grandfathered by baseline, {} violation group(s), {} stale pin(s)",
        ws.files.len(),
        report.total_findings,
        report.grandfathered,
        report.violations.len(),
        report.stale.len()
    );

    if !report.violations.is_empty() {
        eprintln!(
            "tobsvd-audit: new findings beyond the baseline — fix them, add a justified \
             `// audit-allow: <rule> <reason>` marker, or (for pre-existing debt only) \
             regenerate audit.toml and justify the diff"
        );
        if args.deny {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
