//! A minimal Rust lexer, just strong enough for syntactic lint rules.
//!
//! Produces a flat token stream with line numbers. Comments (line,
//! block, doc) are skipped entirely — doc-test code inside `///`
//! comments never reaches the rules. String/char literals are reduced
//! to opaque `Str`/`Char` tokens so identifier-based rules cannot be
//! fooled by identifier-like text inside literals.
//!
//! The lexer is deliberately lossy: multi-character operators come out
//! as single-character [`TokKind::Punct`] tokens (`+=` is `+` then
//! `=`), and number literals keep their raw spelling but are never
//! interpreted. Rules pattern-match on short token windows, which is
//! all the precision the rule set needs.

/// One lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`self`, `for`, `HashMap`, ...).
    Ident(String),
    /// A single punctuation character (`+`, `[`, `:`, ...).
    Punct(char),
    /// Number literal, raw spelling (`0`, `0x1f`, `12_u64`).
    Num(String),
    /// Any string literal (`"…"`, `r#"…"#`, `b"…"`), contents dropped.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`), contents dropped.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`), name dropped.
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Tokenizes `src`, skipping whitespace and comments.
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    // audit-allow: no-unchecked-index -- every index below is bounds-guarded by `i < n` loop conditions
    while i < n {
        let c = chars[i];
        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if chars[i + 1] == '*' {
                let mut depth = 1u32;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        // String literal.
        if c == '"' {
            let start = line;
            i += 1;
            scan_string_body(&chars, &mut i, &mut line);
            toks.push(Token { kind: TokKind::Str, line: start });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let start = line;
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime = matches!(next, Some(ch) if ch == '_' || ch.is_alphabetic())
                && after != Some('\'');
            if is_lifetime {
                i += 1;
                while i < n && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    i += 1;
                }
                toks.push(Token { kind: TokKind::Lifetime, line: start });
            } else {
                i += 1;
                while i < n {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '\'' {
                        i += 1;
                        break;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Token { kind: TokKind::Char, line: start });
            }
            continue;
        }
        // Number literal: consume alphanumerics and underscores, plus a
        // single `.` when followed by a digit (so `0..8` stays three
        // tokens: `0`, `.`, `.`, `8`).
        if c.is_ascii_digit() {
            let start = line;
            let begin = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if i + 1 < n
                && chars[i] == '.'
                && chars[i + 1].is_ascii_digit()
            {
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            let text: String = chars[begin..i].iter().collect();
            toks.push(Token { kind: TokKind::Num(text), line: start });
            continue;
        }
        // Identifier / keyword — with special-casing for string-literal
        // prefixes (`r"…"`, `b"…"`, `r#"…"#`, `br#"…"#`, `b'x'`).
        if c == '_' || c.is_alphabetic() {
            let start = line;
            let begin = i;
            while i < n && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                i += 1;
            }
            let text: String = chars[begin..i].iter().collect();
            let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
            if is_str_prefix && i < n && (chars[i] == '"' || chars[i] == '#') {
                // Raw or byte string literal.
                let mut hashes = 0usize;
                let mut j = i;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    i = j + 1;
                    if hashes == 0 && !text.contains('r') {
                        // Plain byte string `b"…"` — escapes apply.
                        scan_string_body(&chars, &mut i, &mut line);
                    } else {
                        // Raw string: ends at `"` followed by `hashes` #s.
                        'raw: while i < n {
                            if chars[i] == '\n' {
                                line += 1;
                                i += 1;
                                continue;
                            }
                            if chars[i] == '"' {
                                let mut k = 0usize;
                                while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                    k += 1;
                                }
                                if k == hashes {
                                    i += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            i += 1;
                        }
                    }
                    toks.push(Token { kind: TokKind::Str, line: start });
                    continue;
                }
                // `r#ident` raw identifier: fall through, emit the ident
                // without the `r` prefix below.
                if hashes == 1 && j < n && (chars[j] == '_' || chars[j].is_alphabetic()) {
                    let begin2 = j;
                    i = j;
                    while i < n && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                        i += 1;
                    }
                    let raw: String = chars[begin2..i].iter().collect();
                    toks.push(Token { kind: TokKind::Ident(raw), line: start });
                    continue;
                }
            }
            if text == "b" && i < n && chars[i] == '\'' {
                // Byte char literal `b'x'`.
                i += 1;
                while i < n {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '\'' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Token { kind: TokKind::Char, line: start });
                continue;
            }
            toks.push(Token { kind: TokKind::Ident(text), line: start });
            continue;
        }
        // Anything else: single punctuation character.
        toks.push(Token { kind: TokKind::Punct(c), line });
        i += 1;
    }
    toks
}

/// Consumes a (non-raw) string body starting just after the opening
/// quote, leaving `i` just past the closing quote.
fn scan_string_body(chars: &[char], i: &mut usize, line: &mut u32) {
    let n = chars.len();
    // audit-allow: no-unchecked-index -- indices guarded by `*i < n`
    while *i < n {
        match chars[*i] {
            // Escapes skip the next char; a `\<newline>` line
            // continuation still advances the line counter.
            '\\' => {
                if chars.get(*i + 1) == Some(&'\n') {
                    *line += 1;
                }
                *i += 2;
            }
            '"' => {
                *i += 1;
                break;
            }
            '\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("let x = a.unwrap();");
        assert_eq!(
            ks,
            vec![
                TokKind::Ident("let".into()),
                TokKind::Ident("x".into()),
                TokKind::Punct('='),
                TokKind::Ident("a".into()),
                TokKind::Punct('.'),
                TokKind::Ident("unwrap".into()),
                TokKind::Punct('('),
                TokKind::Punct(')'),
                TokKind::Punct(';'),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("// x.unwrap()\n/* y.expect(\"\") */ z"), vec![TokKind::Ident("z".into())]);
        // Nested block comments.
        assert_eq!(kinds("/* a /* b */ c */ q"), vec![TokKind::Ident("q".into())]);
    }

    #[test]
    fn strings_are_opaque() {
        assert_eq!(kinds(r#"let s = "HashMap.iter()";"#).iter().filter(|k| matches!(k, TokKind::Ident(s) if s == "HashMap")).count(), 0);
        assert_eq!(kinds(r##"let s = r#"a "quoted" b"#;"##).last(), Some(&TokKind::Punct(';')));
        assert_eq!(kinds(r#"let b = b"bytes";"#).last(), Some(&TokKind::Punct(';')));
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'"), vec![TokKind::Char]);
        assert_eq!(kinds("'\\''"), vec![TokKind::Char]);
        assert_eq!(kinds("&'static str")[1], TokKind::Lifetime);
        assert_eq!(kinds("fn f<'a>(x: &'a u8) {}").iter().filter(|k| **k == TokKind::Lifetime).count(), 2);
        assert_eq!(kinds("b'x'"), vec![TokKind::Char]);
    }

    #[test]
    fn range_vs_float() {
        let ks = kinds("0..8");
        assert_eq!(
            ks,
            vec![
                TokKind::Num("0".into()),
                TokKind::Punct('.'),
                TokKind::Punct('.'),
                TokKind::Num("8".into()),
            ]
        );
        assert_eq!(kinds("1.5"), vec![TokKind::Num("1.5".into())]);
        assert_eq!(kinds("0x1f_u64"), vec![TokKind::Num("0x1f_u64".into())]);
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn string_line_continuations_count_lines() {
        // `\<newline>` inside a string is a line continuation; tokens
        // after the string must still land on the right line.
        let toks = lex("let s = \"a \\\n b \\\n c\";\nnext");
        let last = toks.last().expect("tokens");
        assert_eq!(last.kind, TokKind::Ident("next".into()));
        assert_eq!(last.line, 4);
    }

    #[test]
    fn raw_identifier() {
        let ks = kinds("r#type");
        assert_eq!(ks, vec![TokKind::Ident("type".into())]);
    }
}
