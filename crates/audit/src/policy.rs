//! Per-crate policy: which determinism class a source file belongs to.
//!
//! The workspace splits into three worlds:
//!
//! * **Deterministic** — protocol, simulation and analysis crates whose
//!   behavior must be a pure function of (config, seed). Transcripts,
//!   checker fingerprints and sweep outputs are byte-compared across
//!   runs and thread counts, so no hash-order iteration, wall clocks or
//!   ambient randomness are allowed here.
//! * **WallClock** — the deployment layer (`runtime`) and benchmark
//!   harness (`bench`), which legitimately read real time and sockets.
//! * **Tooling** — the audit crate itself: held to the determinism
//!   rules (its report ordering must be stable) but outside the
//!   protocol panic-safety scope.
//!
//! Test code (`tests/`, `benches/`, `examples/`, and `#[cfg(test)]`
//! regions, which are detected separately per-file) is exempt from most
//! rules: a test may `unwrap` freely.

/// Determinism class of a source file, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyClass {
    /// Protocol/sim/analysis code: full determinism rules apply.
    Deterministic,
    /// Runtime + bench: wall clock and OS entropy are allowed.
    WallClock,
    /// The audit crate itself: determinism rules, no panic-path scope.
    Tooling,
    /// Integration tests, benches, examples, fixtures.
    Test,
    /// Vendored stand-ins and build output: never scanned.
    Skip,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> PolicyClass {
    let p = rel_path;
    if p.starts_with("vendor/") || p.starts_with("target/") || p.starts_with(".git/") {
        return PolicyClass::Skip;
    }
    if p.starts_with("tests/")
        || p.contains("/tests/")
        || p.starts_with("benches/")
        || p.contains("/benches/")
        || p.starts_with("examples/")
        || p.contains("/examples/")
    {
        return PolicyClass::Test;
    }
    if p.starts_with("crates/audit/") {
        return PolicyClass::Tooling;
    }
    if p.starts_with("crates/runtime/") || p.starts_with("crates/bench/") {
        return PolicyClass::WallClock;
    }
    if p.starts_with("crates/") || p.starts_with("src/") {
        return PolicyClass::Deterministic;
    }
    PolicyClass::Skip
}

/// True if `rule` applies to a file of the given class and path.
///
/// This is the policy map documented in the README: panic-path and
/// unchecked-index rules bind the protocol core (`core`/`types`/
/// `crypto`/`storage` — a corrupt WAL record must degrade, not
/// abort) and the ingest front door (`runtime`'s `ingest`/`client`
/// modules — byte streams from untrusted client sockets must never
/// panic a node, even though the rest of the runtime is WallClock
/// territory); the determinism rules bind every deterministic crate
/// and the tooling; wire-tag coverage is a workspace-level rule
/// handled by the engine directly.
pub fn rule_applies(rule: &str, class: PolicyClass, rel_path: &str) -> bool {
    let protocol_core = rel_path.starts_with("crates/core/")
        || rel_path.starts_with("crates/types/")
        || rel_path.starts_with("crates/crypto/")
        || rel_path.starts_with("crates/storage/");
    let ingest_frontdoor = rel_path.starts_with("crates/runtime/src/ingest")
        || rel_path.starts_with("crates/runtime/src/client");
    match rule {
        "no-nondeterministic-iteration" | "no-ambient-nondeterminism" => {
            matches!(class, PolicyClass::Deterministic | PolicyClass::Tooling)
        }
        "checked-delta-arithmetic" => matches!(class, PolicyClass::Deterministic),
        "no-panic-path" | "no-unchecked-index" => {
            (matches!(class, PolicyClass::Deterministic) && protocol_core)
                || (matches!(class, PolicyClass::WallClock) && ingest_frontdoor)
        }
        // wire-tag-coverage is evaluated once per workspace, not per file.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(classify("crates/core/src/protocol.rs"), PolicyClass::Deterministic);
        assert_eq!(classify("src/lib.rs"), PolicyClass::Deterministic);
        assert_eq!(classify("crates/runtime/src/node.rs"), PolicyClass::WallClock);
        assert_eq!(classify("crates/bench/src/main.rs"), PolicyClass::WallClock);
        assert_eq!(classify("crates/audit/src/lexer.rs"), PolicyClass::Tooling);
        assert_eq!(classify("crates/sim/tests/mempool_props.rs"), PolicyClass::Test);
        assert_eq!(classify("tests/wire_codec.rs"), PolicyClass::Test);
        assert_eq!(classify("crates/core/benches/hotpath.rs"), PolicyClass::Test);
        assert_eq!(classify("examples/real_network.rs"), PolicyClass::Test);
        assert_eq!(classify("vendor/rand/src/lib.rs"), PolicyClass::Skip);
    }

    #[test]
    fn scope_map() {
        assert!(rule_applies("no-panic-path", PolicyClass::Deterministic, "crates/types/src/wire.rs"));
        assert!(rule_applies("no-panic-path", PolicyClass::Deterministic, "crates/storage/src/wal.rs"));
        assert!(rule_applies("no-unchecked-index", PolicyClass::Deterministic, "crates/storage/src/codec.rs"));
        assert!(!rule_applies("no-panic-path", PolicyClass::Deterministic, "crates/sim/src/engine.rs"));
        assert!(!rule_applies("no-panic-path", PolicyClass::Tooling, "crates/audit/src/main.rs"));
        // The ingest front door is panic-scoped even though runtime is
        // WallClock: client sockets feed it untrusted bytes.
        assert!(rule_applies("no-panic-path", PolicyClass::WallClock, "crates/runtime/src/ingest.rs"));
        assert!(rule_applies("no-unchecked-index", PolicyClass::WallClock, "crates/runtime/src/client.rs"));
        assert!(!rule_applies("no-panic-path", PolicyClass::WallClock, "crates/runtime/src/node.rs"));
        assert!(rule_applies("no-nondeterministic-iteration", PolicyClass::Tooling, "crates/audit/src/engine.rs"));
        assert!(rule_applies("checked-delta-arithmetic", PolicyClass::Deterministic, "crates/sweep/src/matrix.rs"));
        assert!(!rule_applies("checked-delta-arithmetic", PolicyClass::WallClock, "crates/runtime/src/node.rs"));
        assert!(rule_applies("no-ambient-nondeterminism", PolicyClass::Deterministic, "crates/check/src/checker.rs"));
        assert!(!rule_applies("no-ambient-nondeterminism", PolicyClass::WallClock, "crates/bench/src/main.rs"));
    }
}
