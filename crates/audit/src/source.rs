//! A parsed source file: token stream, `#[cfg(test)]` regions, and
//! inline `audit-allow` markers.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, TokKind, Token};
use crate::policy::PolicyClass;

/// One workspace source file, ready for rules to scan.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Determinism class from the policy map.
    pub class: PolicyClass,
    /// Token stream (comments and literal contents already dropped).
    pub tokens: Vec<Token>,
    /// Line ranges (1-based, inclusive) covered by test-only items.
    test_ranges: Vec<(u32, u32)>,
    /// `audit-allow` markers: target line → rules allowed there.
    allows: BTreeMap<u32, BTreeSet<String>>,
}

impl SourceFile {
    /// Lexes `text` and extracts test regions and allow markers.
    ///
    /// `rule_names` is the set of valid rule names; `audit-allow`
    /// markers only capture words from this set, so free-text reasons
    /// after the rule list need no special delimiter.
    pub fn parse(rel_path: &str, class: PolicyClass, text: &str, rule_names: &[&str]) -> SourceFile {
        let tokens = lex(text);
        let test_ranges = find_test_ranges(&tokens);
        let allows = find_allows(text, rule_names);
        SourceFile {
            rel_path: rel_path.to_string(),
            class,
            tokens,
            test_ranges,
            allows,
        }
    }

    /// True if `line` falls inside a `#[cfg(test)]`/`#[test]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// True if an `audit-allow: <rule>` marker covers `line`.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allows.get(&line).is_some_and(|rules| rules.contains(rule))
    }
}

/// Finds line ranges of items annotated `#[test]`, `#[cfg(test)]` or
/// any `cfg` attribute mentioning `test` (but not `not(test)`).
///
/// The scan is purely token-based: on an attribute whose bracket
/// contents include the identifier `test` and exclude `not`, the
/// following item extends to either the matching close brace of its
/// first `{` or, for brace-less items (`#[cfg(test)] use …;`), to the
/// terminating semicolon.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let Some(open) = tokens.get(i + 1) else { break };
        if !open.is_punct('[') {
            i += 1;
            continue;
        }
        // Find the matching `]`, collecting identifiers.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut has_test = false;
        let mut has_not = false;
        let mut close = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                TokKind::Ident(s) => {
                    if s == "test" {
                        has_test = true;
                    }
                    if s == "not" {
                        has_not = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(close) = close else { break };
        if !has_test || has_not {
            i = close + 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Scan forward for the item body: first `{` (brace-match) or a
        // `;` before any `{` (brace-less item).
        let mut k = close + 1;
        let mut end_line = start_line;
        while k < tokens.len() {
            match &tokens[k].kind {
                TokKind::Punct(';') => {
                    end_line = tokens[k].line;
                    break;
                }
                TokKind::Punct('{') => {
                    let mut bd = 0i32;
                    while k < tokens.len() {
                        match &tokens[k].kind {
                            TokKind::Punct('{') => bd += 1,
                            TokKind::Punct('}') => {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    end_line = tokens.get(k).map_or(start_line, |t| t.line);
                    break;
                }
                _ => k += 1,
            }
        }
        ranges.push((start_line, end_line));
        i = k.max(close) + 1;
    }
    ranges
}

/// Scans raw source lines for `audit-allow: <rules…>` markers.
///
/// A marker on its own comment line applies to the *next* line; a
/// trailing marker applies to its own line. Only words matching known
/// rule names are captured, so the rest of the comment is free text.
fn find_allows(text: &str, rule_names: &[&str]) -> BTreeMap<u32, BTreeSet<String>> {
    let mut allows: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let Some(pos) = raw.find("audit-allow:") else { continue };
        let line = idx as u32 + 1;
        let rest = &raw[pos + "audit-allow:".len()..];
        let mut rules = BTreeSet::new();
        for word in rest.split(|c: char| c.is_whitespace() || c == ',') {
            if rule_names.contains(&word) {
                rules.insert(word.to_string());
            }
        }
        if rules.is_empty() {
            continue;
        }
        let own_line = raw.trim_start().starts_with("//");
        let target = if own_line { line + 1 } else { line };
        allows.entry(target).or_default().extend(rules);
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyClass;

    const RULES: &[&str] = &["no-panic-path", "no-unchecked-index"];

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", PolicyClass::Deterministic, text, RULES)
    }

    #[test]
    fn cfg_test_module_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n";
        let f = parse(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn braceless_cfg_test_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = parse(src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn not_test_is_live() {
        let src = "#[cfg(not(test))]\nfn live() { body(); }\n";
        let f = parse(src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn test_fn_attribute() {
        let src = "#[test]\nfn check() {\n  x();\n}\n";
        let f = parse(src);
        assert!(f.is_test_line(3));
    }

    #[test]
    fn allow_markers() {
        let src = "// audit-allow: no-panic-path -- justified below\nlet x = y.unwrap();\nlet z = q.unwrap(); // audit-allow: no-unchecked-index, no-panic-path\n";
        let f = parse(src);
        assert!(f.allowed(2, "no-panic-path"));
        assert!(!f.allowed(2, "no-unchecked-index"));
        assert!(f.allowed(3, "no-panic-path"));
        assert!(f.allowed(3, "no-unchecked-index"));
        assert!(!f.allowed(1, "no-panic-path"));
    }

    #[test]
    fn unknown_rule_words_ignored() {
        let src = "// audit-allow: bogus-rule\nlet x = 1;\n";
        let f = parse(src);
        assert!(!f.allowed(2, "no-panic-path"));
    }
}
