//! `no-ambient-nondeterminism`: wall clocks and OS entropy outside the
//! runtime.
//!
//! Deterministic crates must derive every observable value from
//! (config, seed). `Instant::now`, `SystemTime`, `thread_rng`,
//! `OsRng`, `from_entropy` and hash-randomization types smuggle in
//! process-local state that breaks replay and cross-thread-count
//! byte-identity. The runtime and bench crates are policy-exempt;
//! reporting-only uses in deterministic crates (e.g. printing a
//! throughput figure that never enters a transcript) carry an explicit
//! `audit-allow: no-ambient-nondeterminism` marker.
//!
//! `use` statements are not flagged — importing a name is harmless;
//! only mention at a call/expression site counts.

use crate::rules::Finding;
use crate::source::SourceFile;

const RULE: &str = "no-ambient-nondeterminism";

const AMBIENT_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "RandomState",
    "DefaultHasher",
];

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.tokens;

    // Token spans of `use …;` statements.
    let mut use_spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("use") {
            let start = i;
            while i < toks.len() && !toks[i].is_punct(';') {
                i += 1;
            }
            use_spans.push((start, i));
        }
        i += 1;
    }
    let in_use = |idx: usize| use_spans.iter().any(|&(lo, hi)| lo <= idx && idx <= hi);

    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !AMBIENT_IDENTS.contains(&name) || in_use(i) {
            continue;
        }
        // No type-position exemption: naming `Instant` as a type in a
        // deterministic crate is just as suspect as calling
        // `Instant::now()`.
        findings.push(Finding {
            rule: RULE,
            file: file.rel_path.clone(),
            line: t.line,
            msg: format!(
                "`{name}` introduces ambient nondeterminism; derive values from \
                 (config, seed) or move the code to the runtime/bench crates"
            ),
        });
    }
    findings
}
