//! `no-unchecked-index`: `x[i]` indexing in non-test protocol code.
//!
//! Slice/array indexing panics on out-of-bounds, and the protocol core
//! handles attacker-shaped offsets (wire frames, bitmap positions,
//! chain heights). The rule flags `[` used as an index operator — i.e.
//! preceded by an identifier, `)`, or `]` — and exempts brackets whose
//! contents are purely literal (`buf[0]`, `digest[..8]`,
//! `state[4..8]`): a constant index into a fixed-size array is
//! compile-time checkable and pervasive in the hash/codec kernels.
//!
//! Prefer `.get(i)`/`.get_mut(i)` with an error arm; sites with a
//! locally-provable bound can carry `audit-allow: no-unchecked-index`.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::source::SourceFile;

const RULE: &str = "no-unchecked-index";

/// Keywords that may directly precede an array *literal* rather than an
/// index expression.
const NON_INDEX_PREV: &[&str] = &[
    "return", "break", "in", "if", "else", "match", "mut", "ref", "as", "impl", "dyn", "where",
    "move", "const", "static", "let",
];

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.tokens;
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct('[') {
            continue;
        }
        let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else { continue };
        let indexes = match &prev.kind {
            TokKind::Ident(s) => !NON_INDEX_PREV.contains(&s.as_str()),
            TokKind::Punct(')') | TokKind::Punct(']') => true,
            _ => false,
        };
        if !indexes {
            continue;
        }
        // Find the matching `]` and check whether the contents are
        // literal-only (numbers and `.` range dots).
        let mut depth = 0i32;
        let mut j = i;
        let mut literal_only = true;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Num(_) | TokKind::Punct('.') => {}
                _ if j > i => literal_only = false,
                _ => {}
            }
            j += 1;
        }
        if literal_only {
            continue;
        }
        findings.push(Finding {
            rule: RULE,
            file: file.rel_path.clone(),
            line: t.line,
            msg: "indexing can panic on out-of-bounds; prefer `.get(i)` with an error arm"
                .to_string(),
        });
    }
    findings
}
