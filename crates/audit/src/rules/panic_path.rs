//! `no-panic-path`: `unwrap`/`expect`/`panic!`-family calls in
//! non-test protocol code.
//!
//! Protocol code (`crates/core`, `crates/types`, `crates/crypto`) sits
//! on the receive path for Byzantine input: a reachable panic is a
//! remote crash vector. The rule flags
//!
//! * `.unwrap()`, `.expect(…)`, `.unwrap_err()`, `.expect_err(…)` —
//!   method calls only, so `unwrap_or`/`unwrap_or_default` stay legal;
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!` macro calls.
//!
//! `assert!`/`debug_assert!` are deliberately out of scope: those are
//! stated invariants with a message, reviewed case by case. A site
//! whose infallibility is locally provable can carry an
//! `audit-allow: no-panic-path <reason>` marker.

use crate::rules::Finding;
use crate::source::SourceFile;

const RULE: &str = "no-panic-path";

const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.tokens;
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if PANIC_METHODS.contains(&name) {
            let is_method_call = i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|p| p.is_punct('('));
            if is_method_call {
                findings.push(Finding {
                    rule: RULE,
                    file: file.rel_path.clone(),
                    line: t.line,
                    msg: format!(
                        "`.{name}()` can panic on Byzantine-reachable input; \
                         return an error or handle the None/Err arm"
                    ),
                });
            }
        } else if PANIC_MACROS.contains(&name)
            && toks.get(i + 1).is_some_and(|p| p.is_punct('!'))
        {
            findings.push(Finding {
                rule: RULE,
                file: file.rel_path.clone(),
                line: t.line,
                msg: format!("`{name}!` aborts the validator; degrade gracefully instead"),
            });
        }
    }
    findings
}
