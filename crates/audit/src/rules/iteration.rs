//! `no-nondeterministic-iteration`: iterating a `HashMap`/`HashSet` in
//! a deterministic crate.
//!
//! `std`'s hash containers iterate in `RandomState` order, which varies
//! per process — any transcript, report line or protocol decision
//! derived from such an iteration breaks byte-identical replay. The
//! rule is a two-pass token scan:
//!
//! 1. Collect names declared with a `HashMap`/`HashSet` type
//!    (`name: HashMap<…>`, fields and bindings alike) or initialized
//!    from one (`name = HashMap::new()`).
//! 2. Flag `name.iter()` / `.keys()` / `.values()` / `.drain()` /
//!    `.into_iter()` (and `_mut`/`into_` variants), plus `for … in`
//!    loops that consume such a name directly.
//!
//! Keyed access (`map.get`, `map.insert`, `map.contains_key`) is fine
//! and never flagged. Sites that sort after collecting can carry an
//! `audit-allow: no-nondeterministic-iteration` marker; better is to
//! switch the container to `BTreeMap`/`BTreeSet`.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::source::SourceFile;

const RULE: &str = "no-nondeterministic-iteration";

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.tokens;
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();

    // Pass 1: names with a hash-container type.
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let Some(next) = toks.get(i + 1) else { continue };
        if next.is_punct(':') {
            // `name: …HashMap<…>` — scan a short window for the type
            // name, stopping at punctuation that ends the declarator at
            // angle-bracket depth 0.
            let mut depth = 0i32;
            for t2 in toks.iter().skip(i + 2).take(10) {
                match &t2.kind {
                    TokKind::Punct('<') => depth += 1,
                    TokKind::Punct('>') => depth -= 1,
                    TokKind::Punct(',' | ';' | ')' | '{' | '=') if depth <= 0 => break,
                    TokKind::Ident(s) if s == "HashMap" || s == "HashSet" => {
                        hash_names.insert(name);
                        break;
                    }
                    _ => {}
                }
            }
        } else if next.is_punct('=') {
            // `name = HashMap::new()` / `= HashSet::with_capacity(…)`.
            if toks.get(i + 2).is_some_and(|t2| {
                matches!(&t2.kind, TokKind::Ident(s) if s == "HashMap" || s == "HashSet")
            }) {
                hash_names.insert(name);
            }
        }
    }

    if hash_names.is_empty() {
        return Vec::new();
    }

    let mut findings = Vec::new();

    // Pass 2a: `name.iter()`-style calls.
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !hash_names.contains(name) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|p| p.is_punct('.')) {
            if let Some(m) = toks.get(i + 2).and_then(|m| m.ident()) {
                if ITER_METHODS.contains(&m) {
                    findings.push(Finding {
                        rule: RULE,
                        file: file.rel_path.clone(),
                        line: t.line,
                        msg: format!(
                            "`{name}.{m}()` iterates a hash container in nondeterministic order; \
                             use BTreeMap/BTreeSet or sort before iterating"
                        ),
                    });
                }
            }
        }
    }

    // Pass 2b: `for … in [&[mut]] [self.]name` direct consumption.
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("in") {
            continue;
        }
        // Only `for` loops: look back a short window for the keyword so
        // `impl Trait for T` and `in` inside identifiers don't match.
        let lookback = toks[i.saturating_sub(8)..i].iter().any(|b| b.is_ident("for"));
        if !lookback {
            continue;
        }
        for j in i + 1..(i + 6).min(toks.len()) {
            let Some(name) = toks[j].ident() else { continue };
            if !hash_names.contains(name) {
                continue;
            }
            // If followed by `.`, pass 2a owns the decision (method may
            // be keyed access like `.get`); bare consumption is flagged.
            if !toks.get(j + 1).is_some_and(|p| p.is_punct('.')) {
                findings.push(Finding {
                    rule: RULE,
                    file: file.rel_path.clone(),
                    line: toks[j].line,
                    msg: format!(
                        "`for … in {name}` consumes a hash container in nondeterministic order; \
                         use BTreeMap/BTreeSet or sort before iterating"
                    ),
                });
            }
            break;
        }
    }

    findings
}
