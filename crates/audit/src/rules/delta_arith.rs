//! `checked-delta-arithmetic`: raw `*`/`+` on tick quantities.
//!
//! Δ is config-controlled: a scenario may set it near `u64::MAX`, and
//! deadline math like `t + k·Δ` must saturate rather than wrap (a
//! wrapped deadline fires in the past and stalls or storms the
//! protocol — PR 6 fixed two shipped instances of exactly this). The
//! rule flags raw `*` and `+` (including `+=`) when the operation
//! visibly involves tick math:
//!
//! * an operand within a few tokens is a `.ticks()` call or the
//!   `DELTAS_PER_VIEW` constant, or
//! * the expression reads `self.0` inside an `impl` block for `Time`,
//!   `Delta` or `View` (the newtypes' own operator impls).
//!
//! The blessed forms are `saturating_*`/`checked_*` helpers — those
//! never surface a raw operator token, so they pass automatically.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::source::SourceFile;

const RULE: &str = "checked-delta-arithmetic";

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.tokens;

    // Token index ranges of impl blocks for the time newtypes.
    let mut newtype_impls: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            let mut names_time_type = false;
            let mut j = i + 1;
            while j < toks.len() && j < i + 30 && !toks[j].is_punct('{') {
                if let Some(s) = toks[j].ident() {
                    if matches!(s, "Time" | "Delta" | "View") {
                        names_time_type = true;
                    }
                }
                j += 1;
            }
            if names_time_type && j < toks.len() {
                let mut depth = 0i32;
                let mut k = j;
                while k < toks.len() {
                    match &toks[k].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                newtype_impls.push((j, k));
                i = j;
            }
        }
        i += 1;
    }

    let in_newtype_impl = |idx: usize| newtype_impls.iter().any(|&(lo, hi)| lo <= idx && idx <= hi);

    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let op = match &t.kind {
            TokKind::Punct('*') => '*',
            TokKind::Punct('+') => '+',
            _ => continue,
        };
        // Distinguish binary `*`/`+` from deref/`+=`-second-char noise:
        // the left operand must end in an identifier, number, `)` or `]`.
        let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else { continue };
        let binary = matches!(
            &prev.kind,
            TokKind::Ident(_) | TokKind::Num(_) | TokKind::Punct(')') | TokKind::Punct(']')
        );
        if !binary {
            continue;
        }

        let lo = i.saturating_sub(5);
        let hi = (i + 6).min(toks.len());
        let window = &toks[lo..hi];
        // The blessed saturating_*/checked_* helpers never surface a
        // raw operator token, so no explicit exemption is needed; a raw
        // `*` nested inside a helper's argument (`x.saturating_add(k *
        // d.ticks())`) is still correctly flagged.
        let ticky = window.iter().any(|w| {
            w.ident()
                .is_some_and(|s| s == "ticks" || s == "DELTAS_PER_VIEW")
        });
        let selfy = in_newtype_impl(i)
            && window.windows(3).any(|w| {
                w[0].is_ident("self")
                    && w[1].is_punct('.')
                    && matches!(&w[2].kind, TokKind::Num(n) if n == "0")
            });
        if ticky || selfy {
            findings.push(Finding {
                rule: RULE,
                file: file.rel_path.clone(),
                line: t.line,
                msg: format!(
                    "raw `{op}` on tick arithmetic can wrap at u64::MAX; \
                     use saturating_add/saturating_mul (Time/Delta helpers or u64 methods)"
                ),
            });
        }
    }
    findings
}
