//! `wire-tag-coverage`: every `Payload` variant must be encodable,
//! decodable, and exercised by the codec mutation-fuzz suite.
//!
//! This is a workspace-level rule. It extracts the variant list from
//! `enum Payload` in `crates/types/src/message.rs`, then requires for
//! each variant `V`:
//!
//! * ≥ 2 non-test mentions of `Payload::V` in `crates/types/src/wire.rs`
//!   (one on the encode match, one on the decode construction);
//! * ≥ 1 mention of `Payload::V` in the codec mutation-fuzz suite,
//!   `tests/wire_codec.rs` — a unit roundtrip in `wire.rs`'s own test
//!   module does *not* count, because only the fuzz suite exercises
//!   truncation/corruption/limit behavior per variant.
//!
//! Adding a variant without wiring it through the codec and the fuzz
//! matrix is exactly the kind of silent gap this PR's scan caught
//! (`Certificate` was encoded and decoded but absent from the
//! mutation-fuzz suite).

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::source::SourceFile;

const RULE: &str = "wire-tag-coverage";

/// Path of the enum definition, the codec, and the fuzz suite.
pub const ENUM_FILE: &str = "crates/types/src/message.rs";
pub const CODEC_FILE: &str = "crates/types/src/wire.rs";
pub const FUZZ_FILE: &str = "tests/wire_codec.rs";

/// Extracts `enum Payload` variants as (name, line) pairs.
pub fn payload_variants(enum_file: &SourceFile) -> Vec<(String, u32)> {
    let toks = &enum_file.tokens;
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident("Payload") {
            // Find the opening brace, then walk depth-1 identifiers.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            let mut expect_variant = true;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('{') | TokKind::Punct('(') => {
                        depth += 1;
                    }
                    TokKind::Punct('}') | TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 && toks[j].is_punct('}') {
                            return variants;
                        }
                    }
                    TokKind::Punct(',') if depth == 1 => expect_variant = true,
                    // Variant attributes (`#[…]`) sit between `,` and the
                    // variant name; skip their bracket contents.
                    TokKind::Punct('#') if depth == 1 => {
                        let mut bd = 0i32;
                        j += 1;
                        while j < toks.len() {
                            match &toks[j].kind {
                                TokKind::Punct('[') => bd += 1,
                                TokKind::Punct(']') => {
                                    bd -= 1;
                                    if bd == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    TokKind::Ident(name) if depth == 1 && expect_variant => {
                        if name.chars().next().is_some_and(|c| c.is_uppercase()) {
                            variants.push((name.clone(), toks[j].line));
                        }
                        expect_variant = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    variants
}

/// Counts `Payload::V` mentions per variant, split into non-test and
/// test-region occurrences.
fn mention_counts(file: &SourceFile) -> BTreeMap<String, (usize, usize)> {
    let mut counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let toks = &file.tokens;
    for w in toks.windows(4) {
        if w[0].is_ident("Payload")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
        {
            if let Some(v) = w[3].ident() {
                let entry = counts.entry(v.to_string()).or_default();
                if file.is_test_line(w[3].line) {
                    entry.1 += 1;
                } else {
                    entry.0 += 1;
                }
            }
        }
    }
    counts
}

/// Runs the workspace-level coverage check over the three files.
pub fn check(
    enum_file: &SourceFile,
    codec_file: &SourceFile,
    fuzz_file: Option<&SourceFile>,
) -> Vec<Finding> {
    let variants = payload_variants(enum_file);
    let mut findings = Vec::new();
    if variants.is_empty() {
        findings.push(Finding {
            rule: RULE,
            file: enum_file.rel_path.clone(),
            line: 1,
            msg: "could not locate `enum Payload` variants".to_string(),
        });
        return findings;
    }
    let codec = mention_counts(codec_file);
    let fuzz = fuzz_file.map(mention_counts).unwrap_or_default();
    for (name, line) in &variants {
        let (codec_live, _codec_test) = codec.get(name).copied().unwrap_or((0, 0));
        if codec_live < 2 {
            findings.push(Finding {
                rule: RULE,
                file: enum_file.rel_path.clone(),
                line: *line,
                msg: format!(
                    "Payload::{name} has {codec_live} non-test mention(s) in {}; \
                     encode and decode arms are both required",
                    codec_file.rel_path
                ),
            });
        }
        let (fuzz_live, fuzz_test) = fuzz.get(name).copied().unwrap_or((0, 0));
        if fuzz_live + fuzz_test == 0 {
            findings.push(Finding {
                rule: RULE,
                file: enum_file.rel_path.clone(),
                line: *line,
                msg: format!(
                    "Payload::{name} never appears in the codec mutation-fuzz suite ({FUZZ_FILE})"
                ),
            });
        }
    }
    findings
}
