//! The rule catalog.
//!
//! Each per-file rule is a pure function `&SourceFile -> Vec<Finding>`;
//! the engine applies the policy scope, test-region filtering and
//! `audit-allow` markers on top, so rules only encode *detection*.
//! `wire-tag-coverage` is workspace-level and lives in [`wire_tags`],
//! driven directly by the engine.

pub mod ambient;
pub mod delta_arith;
pub mod index;
pub mod iteration;
pub mod panic_path;
pub mod wire_tags;

use crate::source::SourceFile;

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, from [`RULE_NAMES`].
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub msg: String,
}

/// All rule names, in report order. Keep in sync with [`per_file_rules`]
/// plus the workspace-level `wire-tag-coverage`.
pub const RULE_NAMES: &[&str] = &[
    "no-nondeterministic-iteration",
    "no-panic-path",
    "checked-delta-arithmetic",
    "no-ambient-nondeterminism",
    "wire-tag-coverage",
    "no-unchecked-index",
];

/// A per-file rule's check function.
pub type RuleFn = fn(&SourceFile) -> Vec<Finding>;

/// The per-file rules as (name, check-fn) pairs.
pub fn per_file_rules() -> Vec<(&'static str, RuleFn)> {
    vec![
        ("no-nondeterministic-iteration", iteration::check as RuleFn),
        ("no-panic-path", panic_path::check),
        ("checked-delta-arithmetic", delta_arith::check),
        ("no-ambient-nondeterminism", ambient::check),
        ("no-unchecked-index", index::check),
    ]
}
