//! The checked-in `audit.toml` baseline of grandfathered findings.
//!
//! The baseline is a ratchet: each `[[entry]]` pins the number of
//! known findings for one (rule, file) pair. A scan producing *more*
//! findings than the pinned count is a violation (new debt is
//! deny-by-default); producing *fewer* is reported as a stale entry so
//! the pin can be lowered. The self-run test in
//! `crates/audit/tests/self_run.rs` requires exact equality, so the
//! counts can only ever shrink.
//!
//! The format is a tiny TOML subset parsed by hand (the auditor has no
//! dependencies): comments, blank lines, `[[entry]]` headers and
//! `key = value` pairs with quoted strings or integers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Pinned finding counts, keyed by (rule, file).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<(String, String), usize>,
}

/// A parse failure with its 1-based line number.
#[derive(Debug, PartialEq, Eq)]
pub struct BaselineError {
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit.toml:{}: {}", self.line, self.msg)
    }
}

impl Baseline {
    /// Parses the TOML-subset baseline format.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut counts = BTreeMap::new();
        let mut cur: Option<(Option<String>, Option<String>, Option<usize>)> = None;
        let mut cur_line = 0u32;

        let flush = |cur: &mut Option<(Option<String>, Option<String>, Option<usize>)>,
                         counts: &mut BTreeMap<(String, String), usize>,
                         line: u32|
         -> Result<(), BaselineError> {
            if let Some((rule, file, count)) = cur.take() {
                let (Some(rule), Some(file), Some(count)) = (rule, file, count) else {
                    return Err(BaselineError {
                        line,
                        msg: "entry needs rule, file and count".to_string(),
                    });
                };
                if counts.insert((rule.clone(), file.clone()), count).is_some() {
                    return Err(BaselineError {
                        line,
                        msg: format!("duplicate entry for ({rule}, {file})"),
                    });
                }
            }
            Ok(())
        };

        for (idx, raw) in text.lines().enumerate() {
            let line = idx as u32 + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if trimmed == "[[entry]]" {
                flush(&mut cur, &mut counts, cur_line)?;
                cur = Some((None, None, None));
                cur_line = line;
                continue;
            }
            let Some((key, value)) = trimmed.split_once('=') else {
                return Err(BaselineError { line, msg: format!("unparseable line: {trimmed}") });
            };
            let Some(entry) = cur.as_mut() else {
                return Err(BaselineError {
                    line,
                    msg: "key outside of an [[entry]] block".to_string(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" | "file" => {
                    let inner = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| BaselineError {
                            line,
                            msg: format!("{key} must be a quoted string"),
                        })?;
                    if key == "rule" {
                        entry.0 = Some(inner.to_string());
                    } else {
                        entry.1 = Some(inner.to_string());
                    }
                }
                "count" => {
                    let n: usize = value.parse().map_err(|_| BaselineError {
                        line,
                        msg: format!("count must be an integer, got {value}"),
                    })?;
                    entry.2 = Some(n);
                }
                other => {
                    return Err(BaselineError { line, msg: format!("unknown key {other}") });
                }
            }
        }
        flush(&mut cur, &mut counts, cur_line)?;
        Ok(Baseline { counts })
    }

    /// Renders the baseline back to its canonical text form, sorted by
    /// (rule, file).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# tobsvd-audit baseline — grandfathered findings.\n\
             # Each entry pins the maximum allowed findings for one (rule, file)\n\
             # pair; new findings beyond the pin are deny-by-default. Counts may\n\
             # only shrink: lower the pin when you fix a site, never raise it.\n\
             # Regenerate with `cargo run -p tobsvd-audit -- --write-baseline`\n\
             # (then diff: additions need a justification in the PR).\n",
        );
        for ((rule, file), count) in &self.counts {
            let _ = write!(out, "\n[[entry]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n");
        }
        out
    }

    /// Total pinned findings across all entries.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = Baseline::default();
        b.counts.insert(("no-panic-path".into(), "crates/x/src/a.rs".into()), 3);
        b.counts.insert(("no-unchecked-index".into(), "crates/y/src/b.rs".into()), 7);
        let text = b.render();
        let parsed = Baseline::parse(&text).expect("canonical render must parse");
        assert_eq!(parsed, b);
        assert_eq!(parsed.total(), 10);
    }

    #[test]
    fn rejects_incomplete_entry() {
        let err = Baseline::parse("[[entry]]\nrule = \"r\"\n").unwrap_err();
        assert!(err.msg.contains("needs rule, file and count"), "{err}");
    }

    #[test]
    fn rejects_duplicates() {
        let text = "[[entry]]\nrule = \"r\"\nfile = \"f\"\ncount = 1\n\n[[entry]]\nrule = \"r\"\nfile = \"f\"\ncount = 2\n";
        let err = Baseline::parse(text).unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("what is this\n").is_err());
        assert!(Baseline::parse("[[entry]]\ncount = x\n").is_err());
        assert!(Baseline::parse("rule = \"r\"\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ok() {
        let b = Baseline::parse("# header\n\n# more\n").expect("empty baseline parses");
        assert!(b.counts.is_empty());
    }
}
