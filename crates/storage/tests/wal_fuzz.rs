//! Property fuzz of the recovery path against arbitrary byte mutations.
//!
//! The durable plane's contract is that *no* on-disk state — however
//! mangled — can make recovery fail or panic: corruption degrades the
//! recovered prefix and is fully accounted as torn bytes. These tests
//! drive [`decode_wal`], [`decode_snapshot`], [`MemDurable::load`] and
//! [`replay_into`] with randomly corrupted images (bit flips, torn
//! tails, spliced garbage) and check:
//!
//! * decoding never fails or panics, on any input;
//! * every input byte is accounted: the decoded record prefix
//!   re-encodes to exactly the consumed bytes, and `torn_bytes` covers
//!   the rest;
//! * the decoded records are a prefix of what was written;
//! * torn-tail truncation persists — a second `load` reports zero torn
//!   bytes.

use proptest::prelude::*;
use tobsvd_storage::{
    decode_snapshot, decode_wal, encode_record, replay_into, BlockRecord, DurableStore,
    MemDurable, Recovered, Snapshot, WalRecord,
};
use tobsvd_types::{BlockStore, Transaction, ValidatorId, View};

/// A synthetic decided chain of `len` blocks beyond genesis, as the
/// alternating `Block`/`Decided` record stream the persist hook emits.
fn chain_wal(len: u64) -> Vec<WalRecord> {
    let store = BlockStore::new();
    let mut parent = store.genesis();
    let mut records = Vec::new();
    for i in 0..len {
        let proposer = ValidatorId::new((i as u32) % 4);
        let view = View::new(i);
        let txs = vec![Transaction::synthetic(i, 40)];
        let id = store.append(parent, proposer, view, txs.clone()).expect("chain extends");
        records.push(WalRecord::Block(BlockRecord {
            parent,
            expected_id: id,
            proposer,
            view,
            txs,
        }));
        records.push(WalRecord::Decided { tip: id, len: i + 2 });
        parent = id;
    }
    records
}

fn encode_all(records: &[WalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for rec in records {
        encode_record(&mut out, rec).expect("encodes");
    }
    out
}

/// One mutation of a byte image: flip a bit, tear the tail, or splice
/// garbage bytes in at an arbitrary offset.
#[derive(Clone, Debug)]
enum Mutation {
    FlipBit { pos: u16, bit: u8 },
    TearTail { bytes: u16 },
    Splice { pos: u16, garbage: Vec<u8> },
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (any::<u16>(), 0u8..8).prop_map(|(pos, bit)| Mutation::FlipBit { pos, bit }),
        any::<u16>().prop_map(|bytes| Mutation::TearTail { bytes }),
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(pos, garbage)| Mutation::Splice { pos, garbage }),
    ]
}

fn apply(image: &mut Vec<u8>, m: &Mutation) {
    match m {
        Mutation::FlipBit { pos, bit } => {
            if !image.is_empty() {
                let i = *pos as usize % image.len();
                image[i] ^= 1u8 << bit;
            }
        }
        Mutation::TearTail { bytes } => {
            let keep = image.len().saturating_sub(*bytes as usize);
            image.truncate(keep);
        }
        Mutation::Splice { pos, garbage } => {
            let i = (*pos as usize).min(image.len());
            image.splice(i..i, garbage.iter().copied());
        }
    }
}

/// Decoded records must be a prefix of the written stream (corruption
/// only ever costs a suffix, never invents or reorders records) —
/// unless a splice manufactured a validly-framed record, in which case
/// decoding it is still sound (the CRC admitted it) but prefix
/// equality is not guaranteed. Splice-free mutation lists get the
/// strong check.
fn is_prefix(decoded: &[WalRecord], written: &[WalRecord]) -> bool {
    decoded.len() <= written.len() && decoded.iter().zip(written).all(|(a, b)| a == b)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// `decode_wal` on a mutated image: never panics, accounts every
    /// byte (re-encoded prefix + torn tail == input length), and the
    /// consumed prefix re-encodes byte-identically.
    #[test]
    fn decode_wal_accounts_every_byte(
        len in 0u64..6,
        mutations in proptest::collection::vec(mutation(), 0..5),
    ) {
        let written = chain_wal(len);
        let mut image = encode_all(&written);
        for m in &mutations {
            apply(&mut image, m);
        }

        let (records, torn) = decode_wal(&image);
        let reencoded = encode_all(&records);
        prop_assert_eq!(
            reencoded.len() as u64 + torn,
            image.len() as u64,
            "decoded prefix + torn tail must cover the image"
        );
        prop_assert_eq!(
            &reencoded[..],
            &image[..reencoded.len()],
            "consumed prefix must re-encode byte-identically"
        );

        let spliced = mutations.iter().any(|m| matches!(m, Mutation::Splice { .. }));
        if !spliced {
            prop_assert!(
                is_prefix(&records, &written),
                "corruption must only cost a suffix"
            );
        }
    }

    /// `decode_snapshot` on arbitrary bytes: returns, never panics.
    #[test]
    fn decode_snapshot_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_snapshot(&bytes);
    }

    /// The full backend pipeline under mutation: `load` always
    /// succeeds, truncation persists (a second load reports zero torn
    /// bytes and the same prefix), and `replay_into` never panics.
    #[test]
    fn mutated_backend_loads_and_truncation_persists(
        len in 1u64..6,
        snapshot_at in proptest::option::of(0u64..5),
        wal_mutations in proptest::collection::vec(mutation(), 0..4),
        snap_flip in proptest::option::of((any::<u16>(), 0u8..8)),
    ) {
        let written = chain_wal(len);
        let mut mem = MemDurable::new();
        for (i, rec) in written.iter().enumerate() {
            mem.append(rec).expect("append");
            mem.sync().expect("sync");
            // Install a snapshot mid-stream so snapshot corruption has
            // a target and the WAL is a genuine suffix.
            if let Some(at) = snapshot_at {
                if i as u64 == at.min(2 * len - 1) {
                    if let WalRecord::Decided { tip, len } = &written[i | 1] {
                        mem.install_snapshot(&Snapshot { tip: *tip, len: *len, blocks: vec![] })
                            .expect("snapshot");
                    }
                }
            }
        }
        for m in &wal_mutations {
            match m {
                Mutation::FlipBit { pos, bit } => mem.corrupt_wal_bit(*pos as usize, u32::from(*bit)),
                Mutation::TearTail { bytes } => mem.tear_wal_tail(*bytes as usize),
                // The backend owns its bytes; splices only apply to the
                // raw-image test above. Reuse the draw as a bit flip.
                Mutation::Splice { pos, .. } => mem.corrupt_wal_bit(*pos as usize, 0),
            }
        }
        if let Some((pos, bit)) = snap_flip {
            mem.corrupt_snapshot_bit(pos as usize, u32::from(bit));
        }

        let durable = mem.wal_bytes() as u64 + mem.snapshot_bytes() as u64;
        let first: Recovered = mem.load().expect("load never fails");
        prop_assert!(
            first.torn_bytes <= durable,
            "torn accounting must not exceed the durable image"
        );
        let second = mem.load().expect("reload never fails");
        prop_assert_eq!(second.torn_bytes, 0, "truncation must persist");
        prop_assert_eq!(&second.wal, &first.wal, "reload must agree on the prefix");

        // Replay of whatever survived: never panics, never overshoots.
        let store = BlockStore::new();
        let replayed = replay_into(&store, &first);
        prop_assert!(replayed.decided_len <= len + 1);
        if let Some((_, beyond_len)) = replayed.beyond {
            prop_assert!(beyond_len > replayed.decided_len);
        }
    }
}
