//! Deterministic replay of a recovered durable image into a
//! [`BlockStore`].

use tobsvd_types::{BlockId, BlockStore};

use crate::record::{BlockRecord, Recovered, WalRecord};

/// What replay reconstructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Replayed {
    /// Reconstructed decided tip (genesis when nothing recovered).
    pub decided_tip: BlockId,
    /// Reconstructed decided length.
    pub decided_len: u64,
    /// Block ids whose content was replayed into the store, in
    /// persistence order — exactly what the validator provably holds,
    /// to seed its delta-sync knowledge set.
    pub known: Vec<BlockId>,
    /// A decided head recorded durably but *not* locally
    /// reconstructible (its block content is missing): the delta-sync
    /// fetch plane closes this gap after restart.
    pub beyond: Option<(BlockId, u64)>,
    /// Records that failed to apply (content-hash mismatch or missing
    /// parent) and were skipped — graceful degradation, never a panic.
    pub skipped: u64,
}

/// Whether `(tip, len)` resolves as a stored chain head.
fn resolves(store: &BlockStore, tip: BlockId, len: u64) -> bool {
    store.height(tip).and_then(|h| h.checked_add(1)) == Some(len)
}

fn apply(store: &BlockStore, rec: &BlockRecord, known: &mut Vec<BlockId>, skipped: &mut u64) {
    match store.append(rec.parent, rec.proposer, rec.view, rec.txs.clone()) {
        Ok(id) if id == rec.expected_id => known.push(id),
        // A hash mismatch or unknown parent marks the record
        // unusable; later records may still apply (shared-store
        // replays are idempotent), so skip rather than abort.
        Ok(_) | Err(_) => *skipped = skipped.saturating_add(1),
    }
}

/// Replays `recovered` into `store`: snapshot blocks first, then the
/// WAL suffix, adopting the furthest decided head that resolves
/// locally. Never fails: unusable records are counted in
/// [`Replayed::skipped`] and an unresolvable decided head is surfaced
/// through [`Replayed::beyond`] for the fetch plane.
pub fn replay_into(store: &BlockStore, recovered: &Recovered) -> Replayed {
    let mut known = Vec::new();
    let mut skipped = 0u64;
    let mut decided_tip = store.genesis();
    let mut decided_len = 1u64;
    let mut beyond: Option<(BlockId, u64)> = None;

    if let Some(snap) = &recovered.snapshot {
        for rec in &snap.blocks {
            apply(store, rec, &mut known, &mut skipped);
        }
        if resolves(store, snap.tip, snap.len) {
            decided_tip = snap.tip;
            decided_len = snap.len;
        } else if snap.len > decided_len {
            beyond = Some((snap.tip, snap.len));
        }
    }

    for rec in &recovered.wal {
        match rec {
            WalRecord::Block(b) => apply(store, b, &mut known, &mut skipped),
            WalRecord::Decided { tip, len } => {
                if *len <= decided_len {
                    continue;
                }
                if resolves(store, *tip, *len) {
                    decided_tip = *tip;
                    decided_len = *len;
                } else {
                    beyond = Some((*tip, *len));
                }
            }
        }
    }

    // A claimed head the reconstruction caught up to is no gap.
    if beyond.is_some_and(|(_, len)| len <= decided_len) {
        beyond = None;
    }

    Replayed { decided_tip, decided_len, known, beyond, skipped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_crypto::Digest;
    use tobsvd_types::{Log, Transaction, ValidatorId, View};

    #[test]
    fn hash_mismatch_is_skipped_not_fatal() {
        let store = BlockStore::new();
        let log = Log::genesis(&store);
        let next = log.extend(&store, ValidatorId::new(0), View::new(1), vec![]);
        let rec = Recovered {
            snapshot: None,
            wal: vec![
                WalRecord::Block(BlockRecord {
                    parent: log.tip(),
                    expected_id: BlockId(Digest::from_bytes([9; 32])), // wrong
                    proposer: ValidatorId::new(0),
                    view: View::new(1),
                    txs: vec![],
                }),
                WalRecord::Block(BlockRecord {
                    parent: next.tip(),
                    expected_id: next
                        .extend(&store, ValidatorId::new(1), View::new(2), vec![
                            Transaction::synthetic(1, 16),
                        ])
                        .tip(),
                    proposer: ValidatorId::new(1),
                    view: View::new(2),
                    txs: vec![Transaction::synthetic(1, 16)],
                }),
            ],
            torn_bytes: 0,
        };
        let fresh = store.clone();
        let replayed = replay_into(&fresh, &rec);
        assert_eq!(replayed.skipped, 1);
        assert_eq!(replayed.known.len(), 1, "the valid record still applies");
    }

    #[test]
    fn stale_decided_markers_never_regress_the_head() {
        let store = BlockStore::new();
        let log = Log::genesis(&store);
        let a = log.extend(&store, ValidatorId::new(0), View::new(1), vec![]);
        let b = a.extend(&store, ValidatorId::new(1), View::new(2), vec![]);
        let rec = Recovered {
            snapshot: None,
            wal: vec![
                WalRecord::Decided { tip: b.tip(), len: b.len() },
                WalRecord::Decided { tip: a.tip(), len: a.len() }, // stale
            ],
            torn_bytes: 0,
        };
        let replayed = replay_into(&store, &rec);
        assert_eq!(replayed.decided_tip, b.tip());
        assert_eq!(replayed.decided_len, b.len());
        assert_eq!(replayed.beyond, None);
    }
}
