//! Byte-level primitives shared by the WAL and snapshot codecs: CRC32
//! framing and panic-free checked reads.
//!
//! Integers are big-endian, matching the wire codec. The CRC is the
//! reflected IEEE-802.3 polynomial (the ubiquitous `crc32` of zlib and
//! friends), table-driven with a compile-time-built table so the
//! per-record cost is one lookup per byte.

use crate::WalError;

const CRC_POLY: u32 = 0xEDB8_8320;

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        // audit-allow: no-unchecked-index -- const-eval fill of a fixed 256-entry table; n < 256 by the loop bound
        table[n] = c;
        n += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for b in bytes {
        let idx = ((crc ^ u32::from(*b)) & 0xff) as usize;
        // `idx < 256` by the mask; the fallback arm is unreachable but
        // keeps the lookup panic-free under refactoring.
        crc = CRC_TABLE.get(idx).copied().unwrap_or(0) ^ (crc >> 8);
    }
    !crc
}

/// Appends one `len | crc | body` frame to `out`.
///
/// # Errors
///
/// [`WalError::Limit`] if the body length exceeds `u32`.
pub fn put_frame(out: &mut Vec<u8>, body: &[u8]) -> Result<(), WalError> {
    let len = u32::try_from(body.len()).map_err(|_| WalError::Limit("record body over u32"))?;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&crc32(body).to_be_bytes());
    out.extend_from_slice(body);
    Ok(())
}

/// A panic-free cursor over an in-memory byte image.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        let end = self.pos.checked_add(n).ok_or(WalError::Corrupt("length overflow"))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(WalError::Corrupt("truncated record"))?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WalError> {
        let raw = self.take(4)?;
        let arr: [u8; 4] = raw.try_into().map_err(|_| WalError::Corrupt("short u32"))?;
        Ok(u32::from_be_bytes(arr))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WalError> {
        let raw = self.take(8)?;
        let arr: [u8; 8] = raw.try_into().map_err(|_| WalError::Corrupt("short u64"))?;
        Ok(u64::from_be_bytes(arr))
    }

    /// Reads a 32-byte digest.
    pub fn digest(&mut self) -> Result<[u8; 32], WalError> {
        let raw = self.take(32)?;
        raw.try_into().map_err(|_| WalError::Corrupt("short digest"))
    }

    /// Reads one frame's body, validating length and CRC.
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] on a truncated header/body or a CRC
    /// mismatch (a torn or bit-flipped frame).
    pub fn frame(&mut self) -> Result<&'a [u8], WalError> {
        let len = self.u32()? as usize;
        let crc = self.u32()?;
        let body = self.take(len)?;
        if crc32(body) != crc {
            return Err(WalError::Corrupt("frame crc mismatch"));
        }
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vectors() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips_and_rejects_flips() {
        let mut out = Vec::new();
        put_frame(&mut out, b"hello wal").unwrap();
        assert_eq!(Reader::new(&out).frame().unwrap(), b"hello wal");
        for i in 0..out.len() {
            let mut bad = out.clone();
            if let Some(b) = bad.get_mut(i) {
                *b ^= 0x40;
            }
            assert!(Reader::new(&bad).frame().is_err(), "flip at byte {i} must fail");
        }
        for cut in 0..out.len() {
            assert!(Reader::new(&out[..cut]).frame().is_err(), "cut at {cut} must fail");
        }
    }
}
