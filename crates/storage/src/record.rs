//! WAL record and snapshot types with their binary codecs.

use tobsvd_crypto::Digest;
use tobsvd_types::{wire, BlockId, Transaction, ValidatorId, View};

use crate::codec::{put_frame, Reader};
use crate::WalError;

const TAG_BLOCK: u8 = 1;
const TAG_DECIDED: u8 = 2;
const TAG_SNAPSHOT: u8 = 3;

/// Ceiling on blocks carried by one snapshot, mirroring the fetch
/// plane's [`wire::MAX_LOG_LEN`] chain bound.
pub const MAX_SNAPSHOT_BLOCKS: u64 = wire::MAX_LOG_LEN;

/// The content of one block, persisted self-contained: everything
/// needed to re-`append` it into a [`tobsvd_types::BlockStore`], plus
/// the content hash the append must reproduce.
///
/// The payload layout mirrors the wire codec's block body (proposer,
/// view, transaction count, per-transaction length-prefixed bytes)
/// prefixed with the parent and expected content hashes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockRecord {
    /// Parent block id.
    pub parent: BlockId,
    /// Content hash the replayed append must reproduce; a mismatch
    /// marks the record corrupt.
    pub expected_id: BlockId,
    /// Proposing validator.
    pub proposer: ValidatorId,
    /// View the block was proposed in.
    pub view: View,
    /// The batched transactions.
    pub txs: Vec<Transaction>,
}

/// One WAL entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Block content newly anchored under the decided log.
    Block(BlockRecord),
    /// The decided head advanced to `(tip, len)`.
    Decided {
        /// New decided tip.
        tip: BlockId,
        /// New decided length (blocks, genesis included).
        len: u64,
    },
}

/// A checkpoint: the full decided chain up to `(tip, len)`, so the
/// snapshot alone reconstructs the prefix it covers without any WAL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Decided tip at checkpoint time.
    pub tip: BlockId,
    /// Decided length at checkpoint time.
    pub len: u64,
    /// Every non-genesis decided block, parent-first.
    pub blocks: Vec<BlockRecord>,
}

/// What a [`crate::DurableStore`] hands back on load: the latest valid
/// snapshot, the decodable WAL suffix, and how many bytes of torn or
/// corrupt tail were discarded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recovered {
    /// Latest snapshot, if one exists and decodes.
    pub snapshot: Option<Snapshot>,
    /// WAL records in append order (post-snapshot suffix).
    pub wal: Vec<WalRecord>,
    /// Bytes dropped as torn/corrupt (WAL tail plus any undecodable
    /// snapshot).
    pub torn_bytes: u64,
}

fn put_block_payload(out: &mut Vec<u8>, rec: &BlockRecord) -> Result<(), WalError> {
    out.extend_from_slice(rec.parent.0.as_bytes());
    out.extend_from_slice(rec.expected_id.0.as_bytes());
    out.extend_from_slice(&rec.proposer.raw().to_be_bytes());
    out.extend_from_slice(&rec.view.number().to_be_bytes());
    let count =
        u32::try_from(rec.txs.len()).map_err(|_| WalError::Limit("tx count over u32"))?;
    if count > wire::MAX_TXS_PER_BLOCK {
        return Err(WalError::Limit("tx count over wire bound"));
    }
    out.extend_from_slice(&count.to_be_bytes());
    for tx in &rec.txs {
        let len =
            u32::try_from(tx.payload().len()).map_err(|_| WalError::Limit("tx over u32"))?;
        if len > wire::MAX_TX_BYTES {
            return Err(WalError::Limit("tx over wire bound"));
        }
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(tx.payload());
    }
    Ok(())
}

fn read_block_payload(r: &mut Reader<'_>) -> Result<BlockRecord, WalError> {
    let parent = BlockId(Digest::from_bytes(r.digest()?));
    let expected_id = BlockId(Digest::from_bytes(r.digest()?));
    let proposer = ValidatorId::new(r.u32()?);
    let view = View::new(r.u64()?);
    let count = r.u32()?;
    if count > wire::MAX_TXS_PER_BLOCK {
        return Err(WalError::Limit("tx count over wire bound"));
    }
    let mut txs = Vec::new();
    for _ in 0..count {
        let len = r.u32()?;
        if len > wire::MAX_TX_BYTES {
            return Err(WalError::Limit("tx over wire bound"));
        }
        let payload = r.take(len as usize)?;
        txs.push(Transaction::new(payload.to_vec()));
    }
    Ok(BlockRecord { parent, expected_id, proposer, view, txs })
}

/// Appends one framed WAL record to `out`.
///
/// # Errors
///
/// [`WalError::Limit`] when the record exceeds the codec bounds.
pub fn encode_record(out: &mut Vec<u8>, rec: &WalRecord) -> Result<(), WalError> {
    let mut body = Vec::new();
    match rec {
        WalRecord::Block(b) => {
            body.push(TAG_BLOCK);
            put_block_payload(&mut body, b)?;
        }
        WalRecord::Decided { tip, len } => {
            body.push(TAG_DECIDED);
            body.extend_from_slice(tip.0.as_bytes());
            body.extend_from_slice(&len.to_be_bytes());
        }
    }
    put_frame(out, &body)
}

fn decode_record_body(body: &[u8]) -> Result<WalRecord, WalError> {
    let mut r = Reader::new(body);
    let rec = match r.u8()? {
        TAG_BLOCK => WalRecord::Block(read_block_payload(&mut r)?),
        TAG_DECIDED => {
            let tip = BlockId(Digest::from_bytes(r.digest()?));
            let len = r.u64()?;
            WalRecord::Decided { tip, len }
        }
        _ => return Err(WalError::Corrupt("unknown record tag")),
    };
    if r.remaining() != 0 {
        return Err(WalError::Corrupt("trailing bytes in record"));
    }
    Ok(rec)
}

/// Decodes a WAL image into its record prefix plus the length of the
/// torn/corrupt tail.
///
/// Never fails and never panics: the first frame that is truncated,
/// CRC-invalid or structurally malformed ends the decode, and every
/// byte from that frame on is reported as torn (an interrupted append
/// makes everything after it unreliable — classic WAL truncation
/// semantics).
pub fn decode_wal(bytes: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut r = Reader::new(bytes);
    let mut records = Vec::new();
    loop {
        if r.remaining() == 0 {
            return (records, 0);
        }
        let start = r.pos();
        let parsed = r.frame().and_then(decode_record_body);
        match parsed {
            Ok(rec) => records.push(rec),
            Err(_) => return (records, bytes.len().saturating_sub(start) as u64),
        }
    }
}

/// Encodes a snapshot as a single framed image.
///
/// # Errors
///
/// [`WalError::Limit`] when the snapshot exceeds the codec bounds.
pub fn encode_snapshot(snap: &Snapshot) -> Result<Vec<u8>, WalError> {
    if snap.blocks.len() as u64 > MAX_SNAPSHOT_BLOCKS {
        return Err(WalError::Limit("snapshot over chain bound"));
    }
    let mut body = Vec::new();
    body.push(TAG_SNAPSHOT);
    body.extend_from_slice(snap.tip.0.as_bytes());
    body.extend_from_slice(&snap.len.to_be_bytes());
    let count =
        u32::try_from(snap.blocks.len()).map_err(|_| WalError::Limit("snapshot over u32"))?;
    body.extend_from_slice(&count.to_be_bytes());
    for b in &snap.blocks {
        put_block_payload(&mut body, b)?;
    }
    let mut out = Vec::new();
    put_frame(&mut out, &body)?;
    Ok(out)
}

/// Decodes a snapshot image.
///
/// # Errors
///
/// [`WalError::Corrupt`]/[`WalError::Limit`] on any framing, CRC or
/// structural violation — the caller falls back to WAL-only recovery.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, WalError> {
    let mut outer = Reader::new(bytes);
    let body = outer.frame()?;
    if outer.remaining() != 0 {
        return Err(WalError::Corrupt("trailing bytes after snapshot"));
    }
    let mut r = Reader::new(body);
    if r.u8()? != TAG_SNAPSHOT {
        return Err(WalError::Corrupt("not a snapshot image"));
    }
    let tip = BlockId(Digest::from_bytes(r.digest()?));
    let len = r.u64()?;
    let count = r.u32()?;
    if u64::from(count) > MAX_SNAPSHOT_BLOCKS {
        return Err(WalError::Limit("snapshot over chain bound"));
    }
    let mut blocks = Vec::new();
    for _ in 0..count {
        blocks.push(read_block_payload(&mut r)?);
    }
    if r.remaining() != 0 {
        return Err(WalError::Corrupt("trailing bytes in snapshot"));
    }
    Ok(Snapshot { tip, len, blocks })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(n: u64) -> BlockRecord {
        BlockRecord {
            parent: BlockId(Digest::from_bytes([n as u8; 32])),
            expected_id: BlockId(Digest::from_bytes([n as u8 + 1; 32])),
            proposer: ValidatorId::new(3),
            view: View::new(n),
            txs: vec![Transaction::synthetic(n, 40), Transaction::new(vec![])],
        }
    }

    #[test]
    fn records_round_trip() {
        let records = vec![
            WalRecord::Block(sample_block(1)),
            WalRecord::Decided { tip: BlockId(Digest::from_bytes([7; 32])), len: 2 },
            WalRecord::Block(sample_block(2)),
        ];
        let mut image = Vec::new();
        for r in &records {
            encode_record(&mut image, r).unwrap();
        }
        let (decoded, torn) = decode_wal(&image);
        assert_eq!(decoded, records);
        assert_eq!(torn, 0);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let mut image = Vec::new();
        encode_record(&mut image, &WalRecord::Block(sample_block(1))).unwrap();
        let keep = image.len();
        encode_record(&mut image, &WalRecord::Decided {
            tip: BlockId(Digest::from_bytes([9; 32])),
            len: 2,
        })
        .unwrap();
        // Tear the second record at every possible byte boundary.
        for cut in keep..image.len() {
            let (decoded, torn) = decode_wal(&image[..cut]);
            assert_eq!(decoded.len(), 1, "cut at {cut}");
            assert_eq!(torn, (cut - keep) as u64, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_never_panic_and_never_pass_crc() {
        let mut image = Vec::new();
        encode_record(&mut image, &WalRecord::Block(sample_block(1))).unwrap();
        for i in 0..image.len() {
            for bit in 0..8 {
                let mut bad = image.clone();
                if let Some(b) = bad.get_mut(i) {
                    *b ^= 1 << bit;
                }
                let (decoded, torn) = decode_wal(&bad);
                assert!(decoded.is_empty(), "flip at {i}.{bit} must invalidate the frame");
                assert_eq!(torn, bad.len() as u64);
            }
        }
    }

    #[test]
    fn snapshot_round_trips_and_rejects_corruption() {
        let snap = Snapshot {
            tip: BlockId(Digest::from_bytes([5; 32])),
            len: 3,
            blocks: vec![sample_block(1), sample_block(2)],
        };
        let image = encode_snapshot(&snap).unwrap();
        assert_eq!(decode_snapshot(&image).unwrap(), snap);
        for i in 0..image.len() {
            let mut bad = image.clone();
            if let Some(b) = bad.get_mut(i) {
                *b ^= 0x10;
            }
            assert!(decode_snapshot(&bad).is_err(), "flip at {i} must be rejected");
        }
        assert!(decode_snapshot(&image[..image.len() - 1]).is_err());
        assert!(decode_snapshot(&[]).is_err());
    }

    #[test]
    fn oversized_records_are_limit_errors() {
        let mut rec = sample_block(1);
        rec.txs = vec![Transaction::new(vec![0; (wire::MAX_TX_BYTES + 1) as usize])];
        let mut out = Vec::new();
        assert!(matches!(
            encode_record(&mut out, &WalRecord::Block(rec)),
            Err(WalError::Limit(_))
        ));
    }
}
