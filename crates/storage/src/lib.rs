//! `tobsvd-storage` — the durable storage plane under the decided log.
//!
//! Everything else in the reproduction lives in RAM; this crate is the
//! production face of the paper's sleepy model, where "a validator
//! falls asleep" means *a validator process dies and later restarts
//! from disk*. It provides:
//!
//! * [`DurableStore`] — the persistence trait a validator writes its
//!   decided history through: append [`WalRecord`]s, `sync` them
//!   durable, checkpoint a [`Snapshot`] every N decided views, and
//!   `load` everything back after a crash;
//! * [`MemDurable`] — a deterministic in-memory backend for the
//!   simulator and model checker, with faithful crash semantics
//!   (unsynced appends are lost, synced bytes survive);
//! * [`FileDurable`] — a real file-backed backend for the TCP runtime
//!   and benches: an append-only WAL file plus an atomically-replaced
//!   snapshot file, torn tails truncated on open;
//! * [`replay_into`] — deterministic replay of a [`Recovered`] image
//!   into a [`tobsvd_types::BlockStore`], yielding the reconstructed
//!   decided head, the set of block ids the validator provably holds,
//!   and any decided head claimed *beyond* what is locally
//!   reconstructible (closed post-restart by the delta-sync fetch
//!   plane).
//!
//! # Record format
//!
//! Every persisted record is length+CRC framed, mirroring the wire
//! codec's conventions (big-endian integers, `u32` length prefixes,
//! the same per-block body layout as `wire::encode_block_body` plus
//! the parent and expected content hashes):
//!
//! ```text
//! frame  := body_len:u32 | crc32(body):u32 | body
//! body   := tag:u8 | payload
//! tag 1  := Block   — parent:32B | expected_id:32B | proposer:u32 |
//!                     view:u64 | tx_count:u32 | (tx_len:u32 | tx_bytes)*
//! tag 2  := Decided — tip:32B | len:u64
//! ```
//!
//! A snapshot is one frame whose body is `tag 3 | tip:32B | len:u64 |
//! block_count:u32 | block-payloads…` — the full decided chain, so a
//! snapshot alone reconstructs the prefix it covers.
//!
//! # Corruption posture
//!
//! Decoding never panics. A torn, truncated or bit-flipped WAL record
//! invalidates its frame's CRC; the decoder stops there and reports the
//! remaining bytes as the torn tail, which the backends truncate on
//! open (classic WAL semantics: a torn tail is an interrupted write,
//! not data). A corrupt snapshot surfaces as a [`WalError`] and
//! recovery falls back to WAL-only (then to delta-sync fetch for
//! whatever is still missing). This is the same graceful-degradation
//! posture the `tobsvd-audit` no-panic-path rule enforces on the rest
//! of the protocol core, and this crate sits under that gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod file;
mod mem;
mod record;
mod replay;

use std::sync::Arc;

use parking_lot::Mutex;

pub use codec::crc32;
pub use file::FileDurable;
pub use mem::MemDurable;
pub use record::{
    decode_snapshot, decode_wal, encode_record, encode_snapshot, BlockRecord, Recovered, Snapshot,
    WalRecord, MAX_SNAPSHOT_BLOCKS,
};
pub use replay::{replay_into, Replayed};

/// A recoverable persistence-layer error. Corruption and I/O failures
/// degrade the validator (a counter ticks, recovery falls back a
/// layer) — they never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An operating-system I/O failure (file backend only).
    Io(String),
    /// A structurally corrupt record or snapshot.
    Corrupt(&'static str),
    /// A record exceeding the codec's declared bounds.
    Limit(&'static str),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt(what) => write!(f, "corrupt wal data: {what}"),
            WalError::Limit(what) => write!(f, "wal limit exceeded: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

/// The persistence trait behind the decided log: an append-only WAL
/// with periodic snapshot checkpoints.
///
/// Durability contract: a record is guaranteed to survive a crash only
/// after a `sync` that returns `Ok` — `append` alone may buffer.
/// `install_snapshot` is atomic and durable by itself and logically
/// truncates the WAL (the snapshot subsumes it).
pub trait DurableStore: Send {
    /// Appends one record to the WAL (buffered until [`DurableStore::sync`]).
    fn append(&mut self, record: &WalRecord) -> Result<(), WalError>;

    /// Makes every appended record durable.
    fn sync(&mut self) -> Result<(), WalError>;

    /// Atomically replaces the checkpoint with `snapshot` and truncates
    /// the WAL it subsumes.
    fn install_snapshot(&mut self, snapshot: &Snapshot) -> Result<(), WalError>;

    /// Reads back the durable image: latest valid snapshot (if any)
    /// plus the decodable WAL suffix, truncating any torn tail.
    fn load(&mut self) -> Result<Recovered, WalError>;

    /// Simulates (or accompanies) a process crash: buffered, unsynced
    /// state is dropped; durable state is untouched.
    fn crash(&mut self);

    /// Fault injection: flips one bit of the durable WAL image.
    /// Out-of-range offsets no-op. Default: no-op (real backends are
    /// corrupted by the universe, not the test harness).
    fn corrupt_wal_bit(&mut self, byte: usize, bit: u32) {
        let _ = (byte, bit);
    }

    /// Fault injection: flips one bit of the durable snapshot image.
    /// Out-of-range offsets (or no snapshot) no-op. Default: no-op.
    fn corrupt_snapshot_bit(&mut self, byte: usize, bit: u32) {
        let _ = (byte, bit);
    }

    /// Fault injection: tears the last `n` bytes off the durable WAL
    /// (an interrupted write). Default: no-op.
    fn tear_wal_tail(&mut self, n: usize) {
        let _ = n;
    }
}

/// A durable backend shared between a live validator and the restart
/// path that will rebuild its replacement.
pub type SharedDurable = Arc<Mutex<Box<dyn DurableStore>>>;

/// Wraps a backend for sharing across the crash/restart boundary.
pub fn shared<D: DurableStore + 'static>(backend: D) -> SharedDurable {
    Arc::new(Mutex::new(Box::new(backend)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_types::{BlockStore, Log, Transaction, ValidatorId, View};

    /// Builds a decided chain of `len` blocks (genesis included) and
    /// the matching Block/Decided record stream.
    fn chain(store: &BlockStore, len: u64) -> (Log, Vec<WalRecord>) {
        let mut log = Log::genesis(store);
        let mut records = Vec::new();
        for i in 1..len {
            let txs = vec![Transaction::synthetic(i, 32)];
            let parent = log.tip();
            log = log.extend(store, ValidatorId::new(0), View::new(i), txs.clone());
            records.push(WalRecord::Block(BlockRecord {
                parent,
                expected_id: log.tip(),
                proposer: ValidatorId::new(0),
                view: View::new(i),
                txs,
            }));
            records.push(WalRecord::Decided { tip: log.tip(), len: log.len() });
        }
        (log, records)
    }

    #[test]
    fn synced_records_survive_crash_and_replay() {
        let store = BlockStore::new();
        let (log, records) = chain(&store, 6);
        let mut mem = MemDurable::new();
        for r in &records {
            mem.append(r).unwrap();
        }
        mem.sync().unwrap();
        mem.crash();
        let recovered = mem.load().unwrap();
        assert_eq!(recovered.torn_bytes, 0);
        assert!(recovered.snapshot.is_none());
        assert_eq!(recovered.wal, records);

        let fresh = BlockStore::new();
        let replayed = replay_into(&fresh, &recovered);
        assert_eq!(replayed.decided_tip, log.tip());
        assert_eq!(replayed.decided_len, log.len());
        assert_eq!(replayed.skipped, 0);
        assert_eq!(replayed.beyond, None);
        assert_eq!(replayed.known.len(), 5);
    }

    #[test]
    fn unsynced_appends_are_lost_on_crash() {
        let store = BlockStore::new();
        let (_, records) = chain(&store, 6);
        let mut mem = MemDurable::new();
        let (first, rest) = records.split_at(4);
        for r in first {
            mem.append(r).unwrap();
        }
        mem.sync().unwrap();
        for r in rest {
            mem.append(r).unwrap();
        }
        mem.crash();
        let recovered = mem.load().unwrap();
        assert_eq!(recovered.wal, first, "only synced records survive");
    }

    #[test]
    fn snapshot_subsumes_wal_and_restores_alone() {
        let store = BlockStore::new();
        let (log, records) = chain(&store, 5);
        let mut mem = MemDurable::new();
        for r in &records {
            mem.append(r).unwrap();
        }
        mem.sync().unwrap();
        let blocks: Vec<BlockRecord> = records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Block(b) => Some(b.clone()),
                WalRecord::Decided { .. } => None,
            })
            .collect();
        let snap = Snapshot { tip: log.tip(), len: log.len(), blocks };
        mem.install_snapshot(&snap).unwrap();
        assert_eq!(mem.wal_bytes(), 0, "snapshot must truncate the wal");

        let recovered = mem.load().unwrap();
        assert_eq!(recovered.snapshot.as_ref().map(|s| s.len), Some(log.len()));
        let fresh = BlockStore::new();
        let replayed = replay_into(&fresh, &recovered);
        assert_eq!(replayed.decided_tip, log.tip());
        assert_eq!(replayed.decided_len, log.len());
    }

    #[test]
    fn decided_head_beyond_local_blocks_is_reported_for_fetch() {
        let store = BlockStore::new();
        let (log, records) = chain(&store, 4);
        let mut mem = MemDurable::new();
        // Persist only the Decided markers — the block content never
        // made it to disk (e.g. torn away). Recovery must surface the
        // head for the delta-sync plane instead of silently dropping it.
        for r in &records {
            if matches!(r, WalRecord::Decided { .. }) {
                mem.append(r).unwrap();
            }
        }
        mem.sync().unwrap();
        let recovered = mem.load().unwrap();
        let fresh = BlockStore::new();
        let replayed = replay_into(&fresh, &recovered);
        assert_eq!(replayed.decided_len, 1, "nothing locally reconstructible");
        assert_eq!(replayed.beyond, Some((log.tip(), log.len())));
    }

    #[test]
    fn replay_is_deterministic() {
        let store = BlockStore::new();
        let (_, records) = chain(&store, 8);
        let mut mem = MemDurable::new();
        for r in &records {
            mem.append(r).unwrap();
        }
        mem.sync().unwrap();
        let recovered = mem.load().unwrap();
        let a = replay_into(&BlockStore::new(), &recovered);
        let b = replay_into(&BlockStore::new(), &recovered);
        assert_eq!(a.decided_tip, b.decided_tip);
        assert_eq!(a.known, b.known);
        assert_eq!(a.skipped, b.skipped);
    }
}
