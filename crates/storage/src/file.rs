//! File-backed durable backend for the TCP runtime and benches: an
//! append-only WAL file plus an atomically-replaced snapshot file.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::record::{decode_snapshot, decode_wal, encode_record, encode_snapshot};
use crate::{DurableStore, Recovered, Snapshot, WalError, WalRecord};

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

fn io_err(e: std::io::Error) -> WalError {
    WalError::Io(e.to_string())
}

/// A [`DurableStore`] over a directory holding `wal.log` and
/// `snapshot.bin`.
///
/// * appends buffer in memory and hit the file (plus `fsync`) on
///   [`DurableStore::sync`] — one write+fsync per decided batch, not
///   per record;
/// * snapshots are written to a temp file, fsynced, then renamed over
///   the live checkpoint (atomic on POSIX), after which the WAL is
///   truncated;
/// * on load, a torn WAL tail is truncated *in the file*, so the
///   next open starts from a clean prefix.
#[derive(Debug)]
pub struct FileDurable {
    dir: PathBuf,
    wal: Option<File>,
    buffered: Vec<u8>,
}

impl FileDurable {
    /// Opens (creating if needed) the durable directory.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the directory or WAL file cannot be
    /// created/opened.
    pub fn open(dir: &Path) -> Result<FileDurable, WalError> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(dir.join(WAL_FILE))
            .map_err(io_err)?;
        Ok(FileDurable { dir: dir.to_path_buf(), wal: Some(wal), buffered: Vec::new() })
    }

    fn wal_handle(&mut self) -> Result<&mut File, WalError> {
        if self.wal.is_none() {
            let wal = OpenOptions::new()
                .create(true)
                .append(true)
                .read(true)
                .open(self.dir.join(WAL_FILE))
                .map_err(io_err)?;
            self.wal = Some(wal);
        }
        self.wal.as_mut().ok_or(WalError::Io("wal handle unavailable".to_string()))
    }
}

impl DurableStore for FileDurable {
    fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        encode_record(&mut self.buffered, record)
    }

    fn sync(&mut self) -> Result<(), WalError> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        let buffered = std::mem::take(&mut self.buffered);
        let wal = self.wal_handle()?;
        if let Err(e) = wal.write_all(&buffered) {
            // Nothing was durably acknowledged: keep the buffer so a
            // later sync can retry.
            self.buffered = buffered;
            return Err(io_err(e));
        }
        wal.sync_all().map_err(io_err)
    }

    fn install_snapshot(&mut self, snapshot: &Snapshot) -> Result<(), WalError> {
        let image = encode_snapshot(snapshot)?;
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let live = self.dir.join(SNAPSHOT_FILE);
        let mut f = File::create(&tmp).map_err(io_err)?;
        f.write_all(&image).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        drop(f);
        std::fs::rename(&tmp, &live).map_err(io_err)?;
        // The snapshot subsumes the WAL: truncate through a fresh
        // handle (append-mode offsets follow the new length).
        self.wal = None;
        let wal = self.wal_handle()?;
        wal.set_len(0).map_err(io_err)?;
        wal.sync_all().map_err(io_err)?;
        self.buffered.clear();
        Ok(())
    }

    fn load(&mut self) -> Result<Recovered, WalError> {
        let mut torn = 0u64;
        let snapshot = match std::fs::read(self.dir.join(SNAPSHOT_FILE)) {
            Err(_) => None,
            Ok(image) => match decode_snapshot(&image) {
                Ok(snap) => Some(snap),
                Err(_) => {
                    torn = torn.saturating_add(image.len() as u64);
                    None
                }
            },
        };
        let mut image = Vec::new();
        {
            // An append-mode handle reads from wherever the cursor
            // landed; a fresh byte-offset read needs the whole file.
            let mut reader = File::open(self.dir.join(WAL_FILE)).map_err(io_err)?;
            reader.read_to_end(&mut image).map_err(io_err)?;
        }
        let (_, torn_tail) = decode_wal(&image);
        if torn_tail > 0 {
            // Torn-tail truncation on open.
            let keep = (image.len() as u64).saturating_sub(torn_tail);
            let wal = self.wal_handle()?;
            wal.set_len(keep).map_err(io_err)?;
            wal.sync_all().map_err(io_err)?;
            image.truncate(keep as usize);
            torn = torn.saturating_add(torn_tail);
        }
        let (wal_records, _) = decode_wal(&image);
        Ok(Recovered { snapshot, wal: wal_records, torn_bytes: torn })
    }

    fn crash(&mut self) {
        self.buffered.clear();
        self.wal = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_crypto::Digest;
    use tobsvd_types::BlockId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("tobsvd-storage-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn decided(len: u64) -> WalRecord {
        WalRecord::Decided { tip: BlockId(Digest::from_bytes([len as u8; 32])), len }
    }

    #[test]
    fn survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut f = FileDurable::open(&dir).unwrap();
            for len in 2..7 {
                f.append(&decided(len)).unwrap();
            }
            f.sync().unwrap();
            f.crash();
        }
        let mut f = FileDurable::open(&dir).unwrap();
        let rec = f.load().unwrap();
        assert_eq!(rec.wal.len(), 5);
        assert_eq!(rec.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_in_the_file() {
        let dir = temp_dir("torn");
        {
            let mut f = FileDurable::open(&dir).unwrap();
            for len in 2..5 {
                f.append(&decided(len)).unwrap();
            }
            f.sync().unwrap();
        }
        // Tear the file mid-record, as an interrupted write would.
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let mut f = FileDurable::open(&dir).unwrap();
        let rec = f.load().unwrap();
        assert_eq!(rec.wal.len(), 2);
        assert!(rec.torn_bytes > 0);
        assert!(std::fs::metadata(&path).unwrap().len() < bytes.len() as u64);
        // Appending after truncation keeps the log decodable.
        f.append(&decided(4)).unwrap();
        f.sync().unwrap();
        let rec = f.load().unwrap();
        assert_eq!(rec.wal.len(), 3);
        assert_eq!(rec.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_replaces_wal_atomically() {
        let dir = temp_dir("snap");
        let mut f = FileDurable::open(&dir).unwrap();
        for len in 2..5 {
            f.append(&decided(len)).unwrap();
        }
        f.sync().unwrap();
        f.install_snapshot(&Snapshot {
            tip: BlockId(Digest::from_bytes([4; 32])),
            len: 4,
            blocks: vec![],
        })
        .unwrap();
        f.append(&decided(5)).unwrap();
        f.sync().unwrap();
        f.crash();

        let mut f = FileDurable::open(&dir).unwrap();
        let rec = f.load().unwrap();
        assert_eq!(rec.snapshot.as_ref().map(|s| s.len), Some(4));
        assert_eq!(rec.wal, vec![decided(5)]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
