//! Deterministic in-memory durable backend for the simulator and model
//! checker, with faithful crash semantics.

use crate::record::{decode_snapshot, decode_wal, encode_record, encode_snapshot};
use crate::{DurableStore, Recovered, Snapshot, WalError, WalRecord};

/// An in-memory [`DurableStore`]: "disk" is a byte vector, `sync` moves
/// buffered appends into it, `crash` drops whatever was not synced.
///
/// Everything is a pure function of the append sequence — no clocks, no
/// entropy — so checker runs with crash faults stay byte-replayable.
#[derive(Debug, Default)]
pub struct MemDurable {
    /// Durable WAL bytes (survive crash).
    synced: Vec<u8>,
    /// Appended but not yet synced (lost on crash).
    buffered: Vec<u8>,
    /// Durable snapshot image, if one was installed.
    snapshot: Option<Vec<u8>>,
}

impl MemDurable {
    /// An empty backend.
    pub fn new() -> Self {
        MemDurable::default()
    }

    /// Durable WAL size in bytes (excludes the unsynced buffer).
    pub fn wal_bytes(&self) -> usize {
        self.synced.len()
    }

    /// Durable snapshot size in bytes, 0 when none is installed.
    pub fn snapshot_bytes(&self) -> usize {
        self.snapshot.as_ref().map_or(0, Vec::len)
    }

    /// Flips one bit of the durable WAL image (fault injection for the
    /// corruption corpus: recovery must degrade, never panic).
    pub fn corrupt_wal_bit(&mut self, byte: usize, bit: u32) {
        if let Some(b) = self.synced.get_mut(byte) {
            *b ^= 1u8 << (bit % 8);
        }
    }

    /// Drops the last `n` durable WAL bytes (a torn tail).
    pub fn tear_wal_tail(&mut self, n: usize) {
        let keep = self.synced.len().saturating_sub(n);
        self.synced.truncate(keep);
    }

    /// Flips one bit of the durable snapshot image.
    pub fn corrupt_snapshot_bit(&mut self, byte: usize, bit: u32) {
        if let Some(snap) = self.snapshot.as_mut() {
            if let Some(b) = snap.get_mut(byte) {
                *b ^= 1u8 << (bit % 8);
            }
        }
    }
}

impl DurableStore for MemDurable {
    fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        encode_record(&mut self.buffered, record)
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.synced.append(&mut self.buffered);
        Ok(())
    }

    fn install_snapshot(&mut self, snapshot: &Snapshot) -> Result<(), WalError> {
        let image = encode_snapshot(snapshot)?;
        self.snapshot = Some(image);
        // The snapshot subsumes the log it checkpoints.
        self.synced.clear();
        self.buffered.clear();
        Ok(())
    }

    fn load(&mut self) -> Result<Recovered, WalError> {
        let mut torn = 0u64;
        let snapshot = match &self.snapshot {
            None => None,
            Some(image) => match decode_snapshot(image) {
                Ok(snap) => Some(snap),
                Err(_) => {
                    // An undecodable checkpoint is discarded; recovery
                    // falls back to the WAL and the fetch plane.
                    torn = torn.saturating_add(image.len() as u64);
                    self.snapshot = None;
                    None
                }
            },
        };
        let (wal, torn_tail) = decode_wal(&self.synced);
        torn = torn.saturating_add(torn_tail);
        // Torn-tail truncation on open: the discarded suffix never
        // resurrects on a later load.
        let keep = self.synced.len().saturating_sub(torn_tail as usize);
        self.synced.truncate(keep);
        Ok(Recovered { snapshot, wal, torn_bytes: torn })
    }

    fn crash(&mut self) {
        self.buffered.clear();
    }

    // The trait's fault hooks forward to the inherent methods so a
    // `Box<dyn DurableStore>` behind a `SharedDurable` can be corrupted
    // without downcasting (the stabilization plane's durable faults).
    fn corrupt_wal_bit(&mut self, byte: usize, bit: u32) {
        MemDurable::corrupt_wal_bit(self, byte, bit);
    }

    fn corrupt_snapshot_bit(&mut self, byte: usize, bit: u32) {
        MemDurable::corrupt_snapshot_bit(self, byte, bit);
    }

    fn tear_wal_tail(&mut self, n: usize) {
        MemDurable::tear_wal_tail(self, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_crypto::Digest;
    use tobsvd_types::BlockId;

    fn decided(len: u64) -> WalRecord {
        WalRecord::Decided { tip: BlockId(Digest::from_bytes([len as u8; 32])), len }
    }

    #[test]
    fn corrupting_any_bit_degrades_to_truncation() {
        let mut mem = MemDurable::new();
        for len in 2..6 {
            mem.append(&decided(len)).unwrap();
        }
        mem.sync().unwrap();
        let full = mem.load().unwrap().wal.len();
        assert_eq!(full, 4);
        let total = mem.wal_bytes();
        for byte in 0..total {
            for bit in 0..8 {
                let mut copy = MemDurable::new();
                for len in 2..6 {
                    copy.append(&decided(len)).unwrap();
                }
                copy.sync().unwrap();
                copy.corrupt_wal_bit(byte, bit);
                let rec = copy.load().unwrap();
                assert!(rec.wal.len() < full, "flip {byte}.{bit} must cost records");
                assert!(rec.torn_bytes > 0);
            }
        }
    }

    #[test]
    fn torn_tail_is_gone_after_reload() {
        let mut mem = MemDurable::new();
        for len in 2..5 {
            mem.append(&decided(len)).unwrap();
        }
        mem.sync().unwrap();
        mem.tear_wal_tail(3);
        let first = mem.load().unwrap();
        assert_eq!(first.wal.len(), 2);
        assert!(first.torn_bytes > 0);
        let second = mem.load().unwrap();
        assert_eq!(second.wal.len(), 2);
        assert_eq!(second.torn_bytes, 0, "truncation must persist");
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_wal() {
        let mut mem = MemDurable::new();
        mem.install_snapshot(&Snapshot {
            tip: BlockId(Digest::from_bytes([1; 32])),
            len: 2,
            blocks: vec![],
        })
        .unwrap();
        mem.append(&decided(3)).unwrap();
        mem.sync().unwrap();
        mem.corrupt_snapshot_bit(10, 2);
        let rec = mem.load().unwrap();
        assert!(rec.snapshot.is_none(), "corrupt checkpoint must be dropped");
        assert_eq!(rec.wal.len(), 1, "wal suffix still recovers");
        assert!(rec.torn_bytes > 0);
    }
}
