//! Property tests for the mempool's pruning and inclusion-memo
//! machinery under arbitrary churn:
//!
//! * transactions confirmed in a pruned decided prefix never reappear
//!   in any later pending batch (not even after resubmission);
//! * the inclusion memo never exceeds its FIFO cap, no matter how the
//!   chain grows or branches;
//! * the eviction-exempt post-prune base survives arbitrary memo churn
//!   (sets stay relative to the base — pruned txs never resurface).

use proptest::prelude::*;
use tobsvd_sim::{Admission, AdmissionPolicy, Mempool};
use tobsvd_types::{BlockStore, Log, Time, Transaction, TxId, ValidatorId, View};

/// Deterministically builds a chain of `blocks` blocks on top of `base`,
/// each carrying a batch of freshly-submitted transactions (batch sizes
/// 0..=2 driven by `shape`). Returns the tip log and the included txs.
fn grow_chain(
    store: &BlockStore,
    pool: &Mempool,
    base: Log,
    blocks: usize,
    shape: u64,
    tag: u64,
) -> (Log, Vec<Transaction>) {
    let mut log = base;
    let mut included = Vec::new();
    let mut nonce = 0u64;
    for i in 0..blocks {
        let batch = ((shape >> (i % 32)) & 0b11) as usize % 3;
        let txs: Vec<Transaction> = (0..batch)
            .map(|j| {
                let tx = Transaction::new(
                    format!("t{tag}:{i}:{j}:{nonce}").into_bytes(),
                );
                nonce += 1;
                pool.submit(tx.clone(), Time::new(i as u64));
                tx
            })
            .collect();
        included.extend(txs.iter().cloned());
        log = log.extend(
            store,
            ValidatorId::new((i % 4) as u32),
            View::new(log.len() + i as u64),
            txs,
        );
    }
    (log, included)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Confirmed (pruned) records never reappear: after pruning at a
    /// decided prefix, no pending batch for any later tip contains a
    /// confirmed tx — and resubmitting confirmed txs is suppressed.
    #[test]
    fn confirmed_records_never_reappear(
        decided_blocks in 1usize..8,
        extra_blocks in 0usize..6,
        shape in any::<u64>(),
        resubmit in any::<bool>(),
    ) {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let genesis = Log::genesis(&store);
        let (decided, confirmed) =
            grow_chain(&store, &pool, genesis, decided_blocks, shape | 1, 1);
        let before = pool.pending_len();
        pool.prune_confirmed(&decided, &store);
        prop_assert_eq!(pool.pending_len(), before - confirmed.len());

        if resubmit {
            // Resubmission of a pruned tx must be ignored: ids are
            // remembered forever, and the pool does not regrow.
            for tx in &confirmed {
                pool.submit(tx.clone(), Time::new(9999));
                prop_assert!(pool.submitted_at(tx.id()).is_some());
            }
            prop_assert_eq!(pool.pending_len(), before - confirmed.len());
        }

        // Grow further on top of the decided prefix: no pending batch,
        // at the prune base or at the new tip, may contain a confirmed
        // record.
        let (tip, _fresh) =
            grow_chain(&store, &pool, decided, extra_blocks, shape.rotate_left(7), 2);
        let confirmed_ids: Vec<TxId> = confirmed.iter().map(Transaction::id).collect();
        for log in [decided, tip] {
            for tx in pool.pending_for(&log, &store) {
                prop_assert!(
                    !confirmed_ids.contains(&tx.id()),
                    "confirmed tx resurfaced in a pending batch"
                );
                prop_assert!(
                    !log.contains_tx(tx.id(), &store),
                    "pending batch offered an already-included tx"
                );
            }
        }
    }

    /// The inclusion memo is bounded by its cap under arbitrary growth
    /// and branching.
    #[test]
    fn inclusion_memo_never_exceeds_cap(
        main_blocks in 1usize..30,
        branches in 0usize..6,
        shape in any::<u64>(),
    ) {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let genesis = Log::genesis(&store);
        let (tip, _) = grow_chain(&store, &pool, genesis, main_blocks, shape, 3);
        let _ = pool.included_set(tip.tip(), &store);
        prop_assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);

        // Branch off random interior points; every query keeps the memo
        // within the cap.
        for b in 0..branches {
            let cut = 1 + (shape.rotate_right(b as u32) % tip.len()).min(tip.len() - 1);
            if let Some(prefix) = tip.prefix(cut, &store) {
                let (side, _) = grow_chain(&store, &pool, prefix, 1 + b % 3, shape ^ b as u64, 4 + b as u64);
                let _ = pool.included_set(side.tip(), &store);
                prop_assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);
            }
        }
    }

    /// The eviction-exempt base: after a prune, any amount of memo
    /// churn (far beyond the cap) must not evict the base — walks from
    /// fresh branches resolve relative to it, so pruned txs never
    /// resurface in inclusion sets.
    #[test]
    fn eviction_exempt_base_survives_churn(
        churn_blocks in 0usize..80,
        shape in any::<u64>(),
    ) {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let pruned_tx = Transaction::new(b"pruned".to_vec());
        pool.submit(pruned_tx.clone(), Time::ZERO);
        let base = Log::genesis(&store).extend(
            &store,
            ValidatorId::new(0),
            View::new(1),
            vec![pruned_tx.clone()],
        );
        pool.prune_confirmed(&base, &store);

        // Churn: the cap is small enough to overflow many times over.
        let churn = Mempool::INCLUSION_MEMO_CAP / 8 + churn_blocks;
        let mut log = base;
        for i in 0..churn {
            log = log.extend_empty(&store, ValidatorId::new(1), View::new(2 + i as u64));
            if shape >> (i % 64) & 1 == 1 || i + 1 == churn {
                let _ = pool.included_set(log.tip(), &store);
            }
        }
        prop_assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);

        // A fresh branch off the base must resolve relative to it.
        let side_tx = Transaction::new(b"side".to_vec());
        pool.submit(side_tx.clone(), Time::ZERO);
        let side = base.extend(
            &store,
            ValidatorId::new(2),
            View::new(10_000),
            vec![side_tx.clone()],
        );
        let included = pool.included_set(side.tip(), &store);
        prop_assert!(included.contains(&side_tx.id()));
        prop_assert!(
            !included.contains(&pruned_tx.id()),
            "base evicted: walk fell through to genesis and rebuilt an absolute set"
        );
        // And the pruned tx is still not proposable anywhere.
        for tip in [base, side, log] {
            prop_assert!(pool
                .pending_for(&tip, &store)
                .iter()
                .all(|t| t.id() != pruned_tx.id()));
        }
    }

    /// Bounded admission under arbitrary fee sequences: the pool never
    /// exceeds its hard capacity, and the whole verdict sequence —
    /// including *which* transaction each acceptance evicts under fee
    /// ties — is a pure function of the submission sequence (replaying
    /// it yields identical verdicts and stats).
    #[test]
    fn bounded_admission_is_capacity_safe_and_deterministic(
        capacity in 1usize..24,
        fees in proptest::collection::vec(0u64..6, 1..160),
    ) {
        let policy = AdmissionPolicy { capacity, rate_cap: 0, rate_window: 64 };
        let mut replays = Vec::new();
        for _ in 0..2 {
            let pool = Mempool::bounded(policy);
            let mut verdicts = Vec::new();
            for (i, &fee) in fees.iter().enumerate() {
                let tx = Transaction::new(format!("adm{i}").into_bytes());
                let verdict = pool.admit(tx, Time::new(i as u64), fee, Some(i as u64 % 5));
                prop_assert!(
                    pool.pending_len() <= capacity,
                    "capacity breached: {} > {}",
                    pool.pending_len(),
                    capacity
                );
                verdicts.push(verdict);
            }
            prop_assert!(pool.admission_stats().pending_peak as usize <= capacity);
            replays.push((verdicts, pool.admission_stats()));
        }
        prop_assert_eq!(&replays[0], &replays[1], "admission verdicts must be deterministic");
    }

    /// Admission-pressure eviction never touches the decided-anchor
    /// machinery: with a tiny capacity forcing constant eviction, a
    /// pruned (confirmed) transaction stays suppressed as a duplicate
    /// and never resurfaces in a pending batch — eviction frees the
    /// *pending* record, not the confirmed-id memory or the
    /// eviction-exempt memo base.
    #[test]
    fn admission_churn_preserves_pruned_base(
        churn in 1usize..160,
        shape in any::<u64>(),
    ) {
        let store = BlockStore::new();
        let pool = Mempool::bounded(AdmissionPolicy { capacity: 4, rate_cap: 0, rate_window: 64 });
        let pruned_tx = Transaction::new(b"pruned-bounded".to_vec());
        prop_assert!(pool.admit(pruned_tx.clone(), Time::ZERO, 1, None).is_accepted());
        let base = Log::genesis(&store).extend(
            &store,
            ValidatorId::new(0),
            View::new(1),
            vec![pruned_tx.clone()],
        );
        pool.prune_confirmed(&base, &store);

        for i in 0..churn {
            let tx = Transaction::new(format!("churn{i}").into_bytes());
            let _ = pool.admit(
                tx,
                Time::new(1 + i as u64),
                (shape >> (i % 56)) & 7,
                Some(i as u64),
            );
            prop_assert!(pool.pending_len() <= 4);
        }

        // Still remembered as confirmed, churn notwithstanding.
        prop_assert_eq!(
            pool.admit(pruned_tx.clone(), Time::new(9_999), u64::MAX, None),
            Admission::Duplicate
        );
        prop_assert!(pool
            .pending_for(&base, &store)
            .iter()
            .all(|t| t.id() != pruned_tx.id()));

        // Evicted (not pruned) records, by contrast, may be resubmitted:
        // find one eviction and replay it.
        let stats = pool.admission_stats();
        prop_assert_eq!(
            stats.accepted + stats.duplicates + stats.busy + stats.rate_limited,
            1 + churn as u64 + 1
        );
    }

    /// The 1024-entry inclusion memo and the hard admission capacity are
    /// independent bounds: growing a chain from a bounded pool keeps the
    /// pending set under `capacity` and the memo under its cap, and no
    /// pending batch ever offers an already-included transaction.
    #[test]
    fn memo_cap_and_capacity_bound_independently(
        capacity in 1usize..16,
        blocks in 1usize..40,
        shape in any::<u64>(),
    ) {
        let store = BlockStore::new();
        let pool =
            Mempool::bounded(AdmissionPolicy { capacity, rate_cap: 0, rate_window: 64 });
        let mut log = Log::genesis(&store);
        let mut nonce = 0u64;
        for i in 0..blocks {
            // Over-submit relative to capacity, then include whatever
            // the pool currently proposes for the tip.
            for j in 0..(1 + (shape >> (i % 48)) % 4) {
                let tx = Transaction::new(format!("m{i}:{j}:{nonce}").into_bytes());
                nonce += 1;
                let _ = pool.admit(tx, Time::new(i as u64), j, Some(j));
                prop_assert!(pool.pending_len() <= capacity);
            }
            let batch = pool.pending_for(&log, &store);
            for tx in &batch {
                prop_assert!(
                    !log.contains_tx(tx.id(), &store),
                    "pending batch offered an included tx"
                );
            }
            log = log.extend(
                &store,
                ValidatorId::new((i % 4) as u32),
                View::new(1 + i as u64),
                batch,
            );
            pool.prune_confirmed(&log, &store);
            let _ = pool.included_set(log.tip(), &store);
            prop_assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);
            prop_assert!(pool.pending_len() <= capacity);
        }
    }

    /// Per-client rate caps: within any window, no client gets more
    /// than `rate_cap` acceptances, regardless of fees or interleaving
    /// with other clients.
    #[test]
    fn rate_cap_bounds_acceptances_per_client_window(
        rate_cap in 1u32..6,
        submissions in proptest::collection::vec((0u64..4, 0u64..8), 1..200),
    ) {
        let window = 16u64;
        let pool = Mempool::bounded(AdmissionPolicy {
            capacity: 10_000,
            rate_cap,
            rate_window: window,
        });
        let mut accepted_in_window: std::collections::BTreeMap<(u64, u64), u32> =
            std::collections::BTreeMap::new();
        for (i, &(client, fee)) in submissions.iter().enumerate() {
            let now = Time::new(i as u64);
            let tx = Transaction::new(format!("r{i}").into_bytes());
            if pool.admit(tx, now, fee, Some(client)).is_accepted() {
                let k = (client, now.ticks() / window);
                let c = accepted_in_window.entry(k).or_insert(0);
                *c += 1;
                prop_assert!(
                    *c <= rate_cap,
                    "client {client} got {c} acceptances in one window (cap {rate_cap})"
                );
            }
        }
    }
}
