//! Property tests for the mempool's pruning and inclusion-memo
//! machinery under arbitrary churn:
//!
//! * transactions confirmed in a pruned decided prefix never reappear
//!   in any later pending batch (not even after resubmission);
//! * the inclusion memo never exceeds its FIFO cap, no matter how the
//!   chain grows or branches;
//! * the eviction-exempt post-prune base survives arbitrary memo churn
//!   (sets stay relative to the base — pruned txs never resurface).

use proptest::prelude::*;
use tobsvd_sim::Mempool;
use tobsvd_types::{BlockStore, Log, Time, Transaction, TxId, ValidatorId, View};

/// Deterministically builds a chain of `blocks` blocks on top of `base`,
/// each carrying a batch of freshly-submitted transactions (batch sizes
/// 0..=2 driven by `shape`). Returns the tip log and the included txs.
fn grow_chain(
    store: &BlockStore,
    pool: &Mempool,
    base: Log,
    blocks: usize,
    shape: u64,
    tag: u64,
) -> (Log, Vec<Transaction>) {
    let mut log = base;
    let mut included = Vec::new();
    let mut nonce = 0u64;
    for i in 0..blocks {
        let batch = ((shape >> (i % 32)) & 0b11) as usize % 3;
        let txs: Vec<Transaction> = (0..batch)
            .map(|j| {
                let tx = Transaction::new(
                    format!("t{tag}:{i}:{j}:{nonce}").into_bytes(),
                );
                nonce += 1;
                pool.submit(tx.clone(), Time::new(i as u64));
                tx
            })
            .collect();
        included.extend(txs.iter().cloned());
        log = log.extend(
            store,
            ValidatorId::new((i % 4) as u32),
            View::new(log.len() + i as u64),
            txs,
        );
    }
    (log, included)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Confirmed (pruned) records never reappear: after pruning at a
    /// decided prefix, no pending batch for any later tip contains a
    /// confirmed tx — and resubmitting confirmed txs is suppressed.
    #[test]
    fn confirmed_records_never_reappear(
        decided_blocks in 1usize..8,
        extra_blocks in 0usize..6,
        shape in any::<u64>(),
        resubmit in any::<bool>(),
    ) {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let genesis = Log::genesis(&store);
        let (decided, confirmed) =
            grow_chain(&store, &pool, genesis, decided_blocks, shape | 1, 1);
        let before = pool.pending_len();
        pool.prune_confirmed(&decided, &store);
        prop_assert_eq!(pool.pending_len(), before - confirmed.len());

        if resubmit {
            // Resubmission of a pruned tx must be ignored: ids are
            // remembered forever, and the pool does not regrow.
            for tx in &confirmed {
                pool.submit(tx.clone(), Time::new(9999));
                prop_assert!(pool.submitted_at(tx.id()).is_some());
            }
            prop_assert_eq!(pool.pending_len(), before - confirmed.len());
        }

        // Grow further on top of the decided prefix: no pending batch,
        // at the prune base or at the new tip, may contain a confirmed
        // record.
        let (tip, _fresh) =
            grow_chain(&store, &pool, decided, extra_blocks, shape.rotate_left(7), 2);
        let confirmed_ids: Vec<TxId> = confirmed.iter().map(Transaction::id).collect();
        for log in [decided, tip] {
            for tx in pool.pending_for(&log, &store) {
                prop_assert!(
                    !confirmed_ids.contains(&tx.id()),
                    "confirmed tx resurfaced in a pending batch"
                );
                prop_assert!(
                    !log.contains_tx(tx.id(), &store),
                    "pending batch offered an already-included tx"
                );
            }
        }
    }

    /// The inclusion memo is bounded by its cap under arbitrary growth
    /// and branching.
    #[test]
    fn inclusion_memo_never_exceeds_cap(
        main_blocks in 1usize..30,
        branches in 0usize..6,
        shape in any::<u64>(),
    ) {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let genesis = Log::genesis(&store);
        let (tip, _) = grow_chain(&store, &pool, genesis, main_blocks, shape, 3);
        let _ = pool.included_set(tip.tip(), &store);
        prop_assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);

        // Branch off random interior points; every query keeps the memo
        // within the cap.
        for b in 0..branches {
            let cut = 1 + (shape.rotate_right(b as u32) % tip.len()).min(tip.len() - 1);
            if let Some(prefix) = tip.prefix(cut, &store) {
                let (side, _) = grow_chain(&store, &pool, prefix, 1 + b % 3, shape ^ b as u64, 4 + b as u64);
                let _ = pool.included_set(side.tip(), &store);
                prop_assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);
            }
        }
    }

    /// The eviction-exempt base: after a prune, any amount of memo
    /// churn (far beyond the cap) must not evict the base — walks from
    /// fresh branches resolve relative to it, so pruned txs never
    /// resurface in inclusion sets.
    #[test]
    fn eviction_exempt_base_survives_churn(
        churn_blocks in 0usize..80,
        shape in any::<u64>(),
    ) {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let pruned_tx = Transaction::new(b"pruned".to_vec());
        pool.submit(pruned_tx.clone(), Time::ZERO);
        let base = Log::genesis(&store).extend(
            &store,
            ValidatorId::new(0),
            View::new(1),
            vec![pruned_tx.clone()],
        );
        pool.prune_confirmed(&base, &store);

        // Churn: the cap is small enough to overflow many times over.
        let churn = Mempool::INCLUSION_MEMO_CAP / 8 + churn_blocks;
        let mut log = base;
        for i in 0..churn {
            log = log.extend_empty(&store, ValidatorId::new(1), View::new(2 + i as u64));
            if shape >> (i % 64) & 1 == 1 || i + 1 == churn {
                let _ = pool.included_set(log.tip(), &store);
            }
        }
        prop_assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);

        // A fresh branch off the base must resolve relative to it.
        let side_tx = Transaction::new(b"side".to_vec());
        pool.submit(side_tx.clone(), Time::ZERO);
        let side = base.extend(
            &store,
            ValidatorId::new(2),
            View::new(10_000),
            vec![side_tx.clone()],
        );
        let included = pool.included_set(side.tip(), &store);
        prop_assert!(included.contains(&side_tx.id()));
        prop_assert!(
            !included.contains(&pruned_tx.id()),
            "base evicted: walk fell through to genesis and rebuilt an absolute set"
        );
        // And the pruned tx is still not proposable anywhere.
        for tip in [base, side, log] {
            prop_assert!(pool
                .pending_for(&tip, &store)
                .iter()
                .all(|t| t.id() != pruned_tx.id()));
        }
    }
}
