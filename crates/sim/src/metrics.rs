//! Measurement: message counts, bytes, voting phases.
//!
//! The counters here feed the Table 1 reproduction directly:
//!
//! * *voting phases per new block* — a voting phase is "a point in time
//!   when every honest validator … sends a **new** message" (paper
//!   footnote 3). We count original `LOG` broadcasts (GA inputs) and
//!   `VOTE` broadcasts; proposals and forwards are not voting phases.
//! * *communication complexity* — per-delivery message counts and byte
//!   counts, whose growth vs `n` the complexity experiment fits against
//!   O(n²)/O(n³).
//!
//! Since the delta-sync refactor, byte accounting is two-sided and
//! per-message-kind: [`Metrics::bytes_delivered`] is the *actual* wire
//! encoding length of every delivered copy (hash announcements + fetch
//! traffic, via `wire::encoded_len`), broken down per payload kind in
//! the `*_bytes` counters; [`Metrics::inline_equiv_bytes`] accumulates,
//! for the same deliveries, what the pre-delta-sync full-chain codec
//! would have shipped (`wire::inline_equivalent_len`). The ratio of the
//! two is the delta-sync saving, measurable in a single run.

use serde::{Deserialize, Serialize};

/// Classification of a message for accounting purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageKind {
    /// GA input `⟨LOG, Λ⟩` (a vote in TOB-SVD's sense).
    Log,
    /// Leader-election proposal.
    Proposal,
    /// Momose–Ren GA `VOTE`.
    Vote,
    /// `RECOVERY` request (§2 recovery protocol).
    Recovery,
    /// Finality-gadget vote (ebb-and-flow extension).
    FinalityVote,
    /// Delta-sync block fetch request.
    BlockRequest,
    /// Delta-sync block fetch response.
    BlockResponse,
    /// Quorum certificate (aggregated vote group, aggregation plane).
    Certificate,
}

/// Aggregated counters for one simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Original (non-forward) broadcasts of `LOG` payloads.
    pub log_broadcasts: u64,
    /// Original broadcasts of `PROPOSAL` payloads.
    pub proposal_broadcasts: u64,
    /// Original broadcasts of `VOTE` payloads.
    pub vote_broadcasts: u64,
    /// Original broadcasts of `RECOVERY` requests.
    pub recovery_broadcasts: u64,
    /// Original broadcasts of finality votes.
    pub finality_broadcasts: u64,
    /// Block fetch requests sent (delta-sync subprotocol).
    pub block_request_broadcasts: u64,
    /// Block fetch responses sent (delta-sync subprotocol).
    pub block_response_broadcasts: u64,
    /// Quorum certificates broadcast (aggregation plane).
    pub certificate_broadcasts: u64,
    /// Forwarded (re-broadcast or recovery-resent) messages.
    pub forwards: u64,
    /// Per-recipient message deliveries.
    pub deliveries: u64,
    /// Actual wire bytes delivered (sum of every delivered copy's
    /// encoded length under the delta-sync codec).
    pub bytes_delivered: u64,
    /// Wire bytes the pre-delta-sync full-chain codec would have
    /// delivered for the same non-fetch messages (nominal envelope +
    /// full-log sizes). `inline_equiv_bytes / bytes_delivered` is the
    /// delta-sync saving.
    pub inline_equiv_bytes: u64,
    /// Delivered bytes of `LOG` payloads.
    pub log_bytes: u64,
    /// Delivered bytes of `PROPOSAL` payloads.
    pub proposal_bytes: u64,
    /// Delivered bytes of `VOTE` payloads.
    pub vote_bytes: u64,
    /// Delivered bytes of `RECOVERY` payloads.
    pub recovery_bytes: u64,
    /// Delivered bytes of finality votes.
    pub finality_bytes: u64,
    /// Delivered bytes of block fetch requests.
    pub block_request_bytes: u64,
    /// Delivered bytes of block fetch responses.
    pub block_response_bytes: u64,
    /// Delivered bytes of quorum certificates.
    pub certificate_bytes: u64,
    /// Signature verifications actually performed by nodes (first
    /// sighting of each unique message id per validator, plus every
    /// forged frame — forgeries never enter a verified-id set).
    pub sig_verifies: u64,
    /// Deliveries that skipped signature verification because the
    /// message id was already in the receiving node's verified-id set
    /// (duplicate copies of a broadcast; fetch-plane ids are never
    /// retained, so fetch frames always verify).
    pub sig_verify_skips: u64,
    /// VRF verifications actually performed (first sighting of each
    /// claimed `(sender, view)` VRF value, plus every forged claim).
    pub vrf_verifies: u64,
    /// Proposal receptions that skipped VRF verification because the
    /// claimed value matched the already-verified memo for
    /// `(sender, view)`.
    pub vrf_verify_skips: u64,
    /// Aggregate-signature verifications actually performed (certificate
    /// receptions whose signer set was not already fully vouched).
    pub agg_verifies: u64,
    /// Certificate receptions that skipped aggregate verification
    /// because every claimed signer was already individually
    /// authenticated at the receiver.
    pub agg_verify_skips: u64,
    /// Messages buffered for asleep validators.
    pub buffered: u64,
    /// Messages dropped because the recipient was asleep (only in
    /// drop-while-asleep mode — the practical setting the §2 recovery
    /// protocol exists for).
    pub dropped: u64,
    /// Kill/restart faults applied (process crashes, not sleeps:
    /// volatile state is lost and only durable storage survives).
    #[serde(default)]
    pub crashes: u64,
    /// State-corruption faults applied ([`crate::StateFault`]: bit rot
    /// in decided logs, counters, caches, sync knowledge, or the
    /// durable image — the stabilization plane's adversary).
    #[serde(default)]
    pub state_corruptions: u64,
    /// Message copies suppressed by an installed
    /// [`crate::DeliveryFilter`] (fetch-corruption experiments).
    pub filtered: u64,
    /// Decisions reported by nodes.
    pub decisions: u64,
    /// Ticks simulated (the horizon covered, regardless of advance mode).
    pub ticks: u64,
    /// Ticks actually executed by the engine. For a single run this
    /// equals `ticks` under the tick loop and is far smaller under the
    /// event-driven engine on sparse executions — the ratio is the
    /// engine's work saving. After [`Metrics::merge`] it is a *total
    /// work* counter (summed across runs, while `ticks` takes the max),
    /// so the per-run relationship no longer holds.
    pub executed_ticks: u64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an original broadcast of the given kind.
    pub fn record_broadcast(&mut self, kind: MessageKind) {
        match kind {
            MessageKind::Log => self.log_broadcasts += 1,
            MessageKind::Proposal => self.proposal_broadcasts += 1,
            MessageKind::Vote => self.vote_broadcasts += 1,
            MessageKind::Recovery => self.recovery_broadcasts += 1,
            MessageKind::FinalityVote => self.finality_broadcasts += 1,
            MessageKind::BlockRequest => self.block_request_broadcasts += 1,
            MessageKind::BlockResponse => self.block_response_broadcasts += 1,
            MessageKind::Certificate => self.certificate_broadcasts += 1,
        }
    }

    /// Records one delivered copy: `wire_bytes` under the delta-sync
    /// codec, `inline_bytes` under the counterfactual full-chain codec.
    pub fn record_delivery(&mut self, kind: MessageKind, wire_bytes: u64, inline_bytes: u64) {
        self.deliveries += 1;
        self.bytes_delivered += wire_bytes;
        self.inline_equiv_bytes += inline_bytes;
        match kind {
            MessageKind::Log => self.log_bytes += wire_bytes,
            MessageKind::Proposal => self.proposal_bytes += wire_bytes,
            MessageKind::Vote => self.vote_bytes += wire_bytes,
            MessageKind::Recovery => self.recovery_bytes += wire_bytes,
            MessageKind::FinalityVote => self.finality_bytes += wire_bytes,
            MessageKind::BlockRequest => self.block_request_bytes += wire_bytes,
            MessageKind::BlockResponse => self.block_response_bytes += wire_bytes,
            MessageKind::Certificate => self.certificate_bytes += wire_bytes,
        }
    }

    /// Total *voting-phase* messages: original LOG + VOTE broadcasts.
    pub fn voting_messages(&self) -> u64 {
        self.log_broadcasts + self.vote_broadcasts
    }

    /// Total original broadcasts of any protocol kind (fetch traffic is
    /// transport, not protocol, and is excluded — see
    /// [`Metrics::sync_broadcasts`]).
    pub fn total_broadcasts(&self) -> u64 {
        self.log_broadcasts
            + self.proposal_broadcasts
            + self.vote_broadcasts
            + self.recovery_broadcasts
            + self.certificate_broadcasts
    }

    /// Total fetch-subprotocol sends (requests + responses).
    pub fn sync_broadcasts(&self) -> u64 {
        self.block_request_broadcasts + self.block_response_broadcasts
    }

    /// Delivered bytes of the fetch subprotocol (requests + responses).
    pub fn sync_bytes(&self) -> u64 {
        self.block_request_bytes + self.block_response_bytes
    }

    /// Wire bytes delivered per decided block, or `None` before any
    /// decision — the headline delta-sync efficiency metric.
    pub fn bytes_per_decided_block(&self) -> Option<f64> {
        if self.decisions == 0 {
            return None;
        }
        Some(self.bytes_delivered as f64 / self.decisions as f64)
    }

    /// Merges another metrics bundle into this one. Counters sum
    /// (including `executed_ticks`, which becomes total work across
    /// runs); `ticks` takes the maximum horizon.
    pub fn merge(&mut self, other: &Metrics) {
        self.log_broadcasts += other.log_broadcasts;
        self.proposal_broadcasts += other.proposal_broadcasts;
        self.vote_broadcasts += other.vote_broadcasts;
        self.recovery_broadcasts += other.recovery_broadcasts;
        self.finality_broadcasts += other.finality_broadcasts;
        self.block_request_broadcasts += other.block_request_broadcasts;
        self.block_response_broadcasts += other.block_response_broadcasts;
        self.certificate_broadcasts += other.certificate_broadcasts;
        self.forwards += other.forwards;
        self.deliveries += other.deliveries;
        self.bytes_delivered += other.bytes_delivered;
        self.inline_equiv_bytes += other.inline_equiv_bytes;
        self.log_bytes += other.log_bytes;
        self.proposal_bytes += other.proposal_bytes;
        self.vote_bytes += other.vote_bytes;
        self.recovery_bytes += other.recovery_bytes;
        self.finality_bytes += other.finality_bytes;
        self.block_request_bytes += other.block_request_bytes;
        self.block_response_bytes += other.block_response_bytes;
        self.certificate_bytes += other.certificate_bytes;
        self.sig_verifies += other.sig_verifies;
        self.sig_verify_skips += other.sig_verify_skips;
        self.vrf_verifies += other.vrf_verifies;
        self.vrf_verify_skips += other.vrf_verify_skips;
        self.agg_verifies += other.agg_verifies;
        self.agg_verify_skips += other.agg_verify_skips;
        self.buffered += other.buffered;
        self.dropped += other.dropped;
        self.crashes += other.crashes;
        self.state_corruptions += other.state_corruptions;
        self.filtered += other.filtered;
        self.decisions += other.decisions;
        self.ticks = self.ticks.max(other.ticks);
        self.executed_ticks += other.executed_ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_classification() {
        let mut m = Metrics::new();
        m.record_broadcast(MessageKind::Log);
        m.record_broadcast(MessageKind::Log);
        m.record_broadcast(MessageKind::Proposal);
        m.record_broadcast(MessageKind::Vote);
        m.record_broadcast(MessageKind::BlockRequest);
        m.record_broadcast(MessageKind::BlockResponse);
        assert_eq!(m.log_broadcasts, 2);
        assert_eq!(m.voting_messages(), 3);
        assert_eq!(m.total_broadcasts(), 4, "fetch traffic is not a protocol broadcast");
        assert_eq!(m.sync_broadcasts(), 2);
    }

    #[test]
    fn delivery_accounting_is_per_kind_and_two_sided() {
        let mut m = Metrics::new();
        m.record_delivery(MessageKind::Log, 100, 1000);
        m.record_delivery(MessageKind::BlockResponse, 700, 0);
        assert_eq!(m.deliveries, 2);
        assert_eq!(m.bytes_delivered, 800);
        assert_eq!(m.inline_equiv_bytes, 1000);
        assert_eq!(m.log_bytes, 100);
        assert_eq!(m.block_response_bytes, 700);
        assert_eq!(m.sync_bytes(), 700);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Metrics::new();
        a.deliveries = 5;
        a.ticks = 10;
        a.block_request_bytes = 3;
        let mut b = Metrics::new();
        b.deliveries = 7;
        b.ticks = 4;
        b.block_request_bytes = 4;
        b.filtered = 2;
        a.merge(&b);
        assert_eq!(a.deliveries, 12);
        assert_eq!(a.ticks, 10);
        assert_eq!(a.block_request_bytes, 7);
        assert_eq!(a.filtered, 2);
    }
}
