//! Measurement: message counts, bytes, voting phases.
//!
//! The counters here feed the Table 1 reproduction directly:
//!
//! * *voting phases per new block* — a voting phase is "a point in time
//!   when every honest validator … sends a **new** message" (paper
//!   footnote 3). We count original `LOG` broadcasts (GA inputs) and
//!   `VOTE` broadcasts; proposals and forwards are not voting phases.
//! * *communication complexity* — per-delivery message counts and
//!   nominal byte counts (full-log sizes), whose growth vs `n` the
//!   complexity experiment fits against O(n²)/O(n³).

use serde::{Deserialize, Serialize};

/// Classification of a message for accounting purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageKind {
    /// GA input `⟨LOG, Λ⟩` (a vote in TOB-SVD's sense).
    Log,
    /// Leader-election proposal.
    Proposal,
    /// Momose–Ren GA `VOTE`.
    Vote,
    /// `RECOVERY` request (§2 recovery protocol).
    Recovery,
    /// Finality-gadget vote (ebb-and-flow extension).
    FinalityVote,
}

/// Aggregated counters for one simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Original (non-forward) broadcasts of `LOG` payloads.
    pub log_broadcasts: u64,
    /// Original broadcasts of `PROPOSAL` payloads.
    pub proposal_broadcasts: u64,
    /// Original broadcasts of `VOTE` payloads.
    pub vote_broadcasts: u64,
    /// Original broadcasts of `RECOVERY` requests.
    pub recovery_broadcasts: u64,
    /// Original broadcasts of finality votes.
    pub finality_broadcasts: u64,
    /// Forwarded (re-broadcast or recovery-resent) messages.
    pub forwards: u64,
    /// Per-recipient message deliveries.
    pub deliveries: u64,
    /// Nominal bytes delivered (full-log sizes + fixed envelope).
    pub bytes_delivered: u64,
    /// Messages buffered for asleep validators.
    pub buffered: u64,
    /// Messages dropped because the recipient was asleep (only in
    /// drop-while-asleep mode — the practical setting the §2 recovery
    /// protocol exists for).
    pub dropped: u64,
    /// Decisions reported by nodes.
    pub decisions: u64,
    /// Ticks simulated (the horizon covered, regardless of advance mode).
    pub ticks: u64,
    /// Ticks actually executed by the engine. For a single run this
    /// equals `ticks` under the tick loop and is far smaller under the
    /// event-driven engine on sparse executions — the ratio is the
    /// engine's work saving. After [`Metrics::merge`] it is a *total
    /// work* counter (summed across runs, while `ticks` takes the max),
    /// so the per-run relationship no longer holds.
    pub executed_ticks: u64,
}

/// Fixed per-message envelope overhead assumed by byte accounting.
pub const MESSAGE_ENVELOPE_BYTES: u64 = 64;

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an original broadcast of the given kind.
    pub fn record_broadcast(&mut self, kind: MessageKind) {
        match kind {
            MessageKind::Log => self.log_broadcasts += 1,
            MessageKind::Proposal => self.proposal_broadcasts += 1,
            MessageKind::Vote => self.vote_broadcasts += 1,
            MessageKind::Recovery => self.recovery_broadcasts += 1,
            MessageKind::FinalityVote => self.finality_broadcasts += 1,
        }
    }

    /// Total *voting-phase* messages: original LOG + VOTE broadcasts.
    pub fn voting_messages(&self) -> u64 {
        self.log_broadcasts + self.vote_broadcasts
    }

    /// Total original broadcasts of any kind.
    pub fn total_broadcasts(&self) -> u64 {
        self.log_broadcasts
            + self.proposal_broadcasts
            + self.vote_broadcasts
            + self.recovery_broadcasts
    }

    /// Merges another metrics bundle into this one. Counters sum
    /// (including `executed_ticks`, which becomes total work across
    /// runs); `ticks` takes the maximum horizon.
    pub fn merge(&mut self, other: &Metrics) {
        self.log_broadcasts += other.log_broadcasts;
        self.proposal_broadcasts += other.proposal_broadcasts;
        self.vote_broadcasts += other.vote_broadcasts;
        self.recovery_broadcasts += other.recovery_broadcasts;
        self.finality_broadcasts += other.finality_broadcasts;
        self.forwards += other.forwards;
        self.deliveries += other.deliveries;
        self.bytes_delivered += other.bytes_delivered;
        self.buffered += other.buffered;
        self.dropped += other.dropped;
        self.decisions += other.decisions;
        self.ticks = self.ticks.max(other.ticks);
        self.executed_ticks += other.executed_ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_classification() {
        let mut m = Metrics::new();
        m.record_broadcast(MessageKind::Log);
        m.record_broadcast(MessageKind::Log);
        m.record_broadcast(MessageKind::Proposal);
        m.record_broadcast(MessageKind::Vote);
        assert_eq!(m.log_broadcasts, 2);
        assert_eq!(m.voting_messages(), 3);
        assert_eq!(m.total_broadcasts(), 4);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Metrics::new();
        a.deliveries = 5;
        a.ticks = 10;
        let mut b = Metrics::new();
        b.deliveries = 7;
        b.ticks = 4;
        a.merge(&b);
        assert_eq!(a.deliveries, 12);
        assert_eq!(a.ticks, 10);
    }
}
