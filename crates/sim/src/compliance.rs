//! Condition (1) — (T_b, T_s, ρ)-sleepy-model compliance checking.
//!
//! A system is compliant with the (T_b, T_s, ρ)-sleepy model iff for
//! every time t ≥ 0:
//!
//! ```text
//! |B_{t+T_b}| < ρ · |H_{t−T_s,t} ∪ B_{t+T_b}|        (Condition 1)
//! ```
//!
//! where `H_{t1,t2} = ⋂_{s∈[t1,t2]} H_s` is the set of honest validators
//! awake throughout `[t1, t2]` (with `H_s := V` for `s < 0`). The GA
//! protocols need (3Δ,0,½) / (5Δ,0,½); TOB-SVD needs (5Δ,2Δ,½).
//!
//! Experiments call [`check`] on their generated schedules before running
//! so that claimed results genuinely fall inside the model.

use tobsvd_types::{Time, ValidatorId};

use crate::schedule::{CorruptionSchedule, ParticipationSchedule};

/// Parameters of the sleepy model variant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SleepyParams {
    /// Backward-simulation window T_b, in ticks.
    pub t_b: u64,
    /// Stabilization period T_s, in ticks.
    pub t_s: u64,
    /// Failure ratio ρ ≤ ½ (as a fraction).
    pub rho: f64,
}

impl SleepyParams {
    /// The (T_b, T_s, ½) model used throughout the paper.
    pub fn half(t_b: u64, t_s: u64) -> Self {
        SleepyParams { t_b, t_s, rho: 0.5 }
    }
}

/// A violation of Condition (1) at a specific time.
#[derive(Clone, Debug, PartialEq)]
pub struct ComplianceViolation {
    /// The time `t` at which the condition fails.
    pub at: Time,
    /// `|B_{t+T_b}|`.
    pub byzantine: usize,
    /// `|H_{t−T_s,t} ∪ B_{t+T_b}|` — the active validators at `t`.
    pub active: usize,
}

impl std::fmt::Display for ComplianceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Condition (1) violated at {}: |B| = {} !< ρ·|active| with |active| = {}",
            self.at, self.byzantine, self.active
        )
    }
}

/// Checks Condition (1) for every `t ∈ [0, horizon]`.
///
/// Returns the first violation, or `None` if the schedules are compliant.
///
/// ```
/// use tobsvd_sim::compliance::{check, SleepyParams};
/// use tobsvd_sim::{CorruptionSchedule, ParticipationSchedule};
/// use tobsvd_types::{Time, ValidatorId};
///
/// let part = ParticipationSchedule::always_awake(4);
/// let corr = CorruptionSchedule::from_genesis([ValidatorId::new(0)]);
/// // 1 Byzantine of 4 active: 1 < 0.5·4 — compliant.
/// assert!(check(&part, &corr, SleepyParams::half(40, 16), Time::new(200)).is_none());
/// ```
pub fn check(
    participation: &ParticipationSchedule,
    corruption: &CorruptionSchedule,
    params: SleepyParams,
    horizon: Time,
) -> Option<ComplianceViolation> {
    let n = participation.n();
    for t in 0..=horizon.ticks() {
        let t = Time::new(t);
        let (byz, active) = active_sets(participation, corruption, params, t, n);
        if (byz as f64) >= params.rho * (active as f64) {
            return Some(ComplianceViolation { at: t, byzantine: byz, active });
        }
    }
    None
}

/// Computes `(|B_{t+T_b}|, |H_{t−T_s,t} ∪ B_{t+T_b}|)` at time `t`.
pub fn active_sets(
    participation: &ParticipationSchedule,
    corruption: &CorruptionSchedule,
    params: SleepyParams,
    t: Time,
    n: usize,
) -> (usize, usize) {
    let b_end = t + params.t_b;
    let from = t.saturating_sub(Time::new(params.t_s));
    let mut byz = 0usize;
    let mut active = 0usize;
    for v in ValidatorId::all(n) {
        let is_byz = corruption.is_byzantine(v, b_end);
        // v ∈ H_{t−T_s,t}: awake for all of [t−T_s, t] and still honest at t.
        let in_h = !corruption.is_byzantine(v, t) && participation.awake_throughout(v, from, t);
        if is_byz {
            byz += 1;
        }
        if is_byz || in_h {
            active += 1;
        }
    }
    (byz, active)
}

/// Brute-force reference implementation of `H_{t1,t2}` used by the
/// property tests: intersects `H_s` tick by tick.
pub fn honest_throughout_bruteforce(
    participation: &ParticipationSchedule,
    corruption: &CorruptionSchedule,
    from: Time,
    to: Time,
) -> Vec<ValidatorId> {
    let mut result: Option<Vec<ValidatorId>> = None;
    let mut s = from;
    loop {
        let h_s = participation.awake_honest_at(s, corruption);
        result = Some(match result {
            None => h_s,
            Some(prev) => prev.into_iter().filter(|v| h_s.contains(v)).collect(),
        });
        if s >= to {
            break;
        }
        s += 1;
    }
    result.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_honest_always_compliant() {
        let part = ParticipationSchedule::always_awake(4);
        let corr = CorruptionSchedule::none();
        assert!(check(&part, &corr, SleepyParams::half(40, 16), Time::new(100)).is_none());
    }

    #[test]
    fn half_byzantine_violates() {
        let part = ParticipationSchedule::always_awake(4);
        let corr = CorruptionSchedule::from_genesis([ValidatorId::new(0), ValidatorId::new(1)]);
        // 2 Byzantine of 4 active: 2 !< 0.5·4.
        let v = check(&part, &corr, SleepyParams::half(40, 16), Time::new(100));
        assert_eq!(
            v,
            Some(ComplianceViolation { at: Time::ZERO, byzantine: 2, active: 4 })
        );
    }

    #[test]
    fn sleeping_honest_shrinks_active_set() {
        // 5 validators, 2 Byzantine: compliant while all awake (2 < 2.5),
        // but if one honest validator sleeps, active = 4 and 2 !< 2.
        let mut part = ParticipationSchedule::always_awake(5);
        let corr =
            CorruptionSchedule::from_genesis([ValidatorId::new(0), ValidatorId::new(1)]);
        assert!(check(&part, &corr, SleepyParams::half(8, 0), Time::new(50)).is_none());
        part.set_intervals(ValidatorId::new(2), vec![(Time::new(0), Time::new(10))]);
        let v = check(&part, &corr, SleepyParams::half(8, 0), Time::new(50)).expect("violation");
        assert_eq!(v.at, Time::new(10));
    }

    #[test]
    fn backward_window_counts_future_corruptions() {
        // Corruption effective at t=20 with T_b=10: counted from t=10.
        let part = ParticipationSchedule::always_awake(2);
        let mut corr = CorruptionSchedule::none();
        corr.schedule(ValidatorId::new(0), Time::new(12), tobsvd_types::Delta::new(8));
        let params = SleepyParams::half(10, 0);
        let (b_at_9, _) = active_sets(&part, &corr, params, Time::new(9), 2);
        let (b_at_10, _) = active_sets(&part, &corr, params, Time::new(10), 2);
        assert_eq!(b_at_9, 0);
        assert_eq!(b_at_10, 1);
    }

    #[test]
    fn stabilization_window_excludes_churning_honest() {
        // An honest validator awake only from t=5 is not in H_{t−T_s,t}
        // until t ≥ 5 + T_s.
        let mut part = ParticipationSchedule::always_awake(2);
        part.set_intervals(ValidatorId::new(1), vec![(Time::new(5), Time::new(1000))]);
        let corr = CorruptionSchedule::none();
        let params = SleepyParams::half(0, 4);
        let (_, active_at_7) = active_sets(&part, &corr, params, Time::new(7), 2);
        let (_, active_at_9) = active_sets(&part, &corr, params, Time::new(9), 2);
        assert_eq!(active_at_7, 1); // window [3,7] not fully awake
        assert_eq!(active_at_9, 2); // window [5,9] fully awake
    }

    #[test]
    fn bruteforce_matches_fast_path() {
        let mut part = ParticipationSchedule::always_awake(4);
        part.set_intervals(ValidatorId::new(0), vec![(Time::new(3), Time::new(9))]);
        part.set_intervals(ValidatorId::new(1), vec![(Time::new(0), Time::new(6)), (Time::new(8), Time::new(20))]);
        let mut corr = CorruptionSchedule::none();
        corr.schedule(ValidatorId::new(2), Time::new(2), tobsvd_types::Delta::new(4));
        for t in 0..20u64 {
            let t = Time::new(t);
            let from = t.saturating_sub(Time::new(3));
            let brute = honest_throughout_bruteforce(&part, &corr, from, t);
            let fast: Vec<ValidatorId> = ValidatorId::all(4)
                .filter(|v| {
                    !corr.is_byzantine(*v, t) && part.awake_throughout(*v, from, t)
                })
                .collect();
            // The brute force also excludes validators corrupted mid-window.
            let brute_fixed: Vec<ValidatorId> = brute
                .into_iter()
                .filter(|v| !corr.is_byzantine(*v, t))
                .collect();
            assert_eq!(fast, brute_fixed, "at {t}");
        }
    }
}
