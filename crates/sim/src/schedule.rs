//! Participation (sleep/wake) and corruption schedules.

use serde::{Deserialize, Serialize};
use tobsvd_types::{Delta, Time, ValidatorId};

/// Per-validator awake intervals.
///
/// Validator `v` is awake at tick `t` iff some stored interval
/// `[start, end)` contains `t`. The default schedule (no intervals
/// stored for a validator) means *always awake*.
///
/// ```
/// use tobsvd_sim::ParticipationSchedule;
/// use tobsvd_types::{Time, ValidatorId};
///
/// let mut sched = ParticipationSchedule::always_awake(3);
/// sched.set_intervals(ValidatorId::new(1), vec![(Time::new(0), Time::new(10))]);
/// assert!(sched.is_awake(ValidatorId::new(1), Time::new(9)));
/// assert!(!sched.is_awake(ValidatorId::new(1), Time::new(10)));
/// assert!(sched.is_awake(ValidatorId::new(0), Time::new(999))); // default
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParticipationSchedule {
    n: usize,
    /// `None` = always awake; `Some(intervals)` = awake exactly during
    /// those half-open tick intervals, sorted and non-overlapping.
    intervals: Vec<Option<Vec<(Time, Time)>>>,
}

impl ParticipationSchedule {
    /// All `n` validators awake forever.
    pub fn always_awake(n: usize) -> Self {
        ParticipationSchedule { n, intervals: vec![None; n] }
    }

    /// Number of validators covered.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Replaces a validator's awake intervals.
    ///
    /// Intervals are normalized: sorted by start, overlapping or touching
    /// intervals merged, empty intervals dropped.
    pub fn set_intervals(&mut self, v: ValidatorId, mut ivs: Vec<(Time, Time)>) {
        ivs.retain(|(s, e)| e > s);
        ivs.sort_by_key(|(s, _)| *s);
        let mut merged: Vec<(Time, Time)> = Vec::with_capacity(ivs.len());
        for (s, e) in ivs {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => {
                    if e > *last_end {
                        *last_end = e;
                    }
                }
                _ => merged.push((s, e)),
            }
        }
        self.intervals[v.index()] = Some(merged);
    }

    /// Whether `v` is awake at `t`.
    pub fn is_awake(&self, v: ValidatorId, t: Time) -> bool {
        match &self.intervals[v.index()] {
            None => true,
            Some(ivs) => ivs.iter().any(|(s, e)| *s <= t && t < *e),
        }
    }

    /// Whether `v` is awake for every tick of `[from, to]` (inclusive).
    pub fn awake_throughout(&self, v: ValidatorId, from: Time, to: Time) -> bool {
        match &self.intervals[v.index()] {
            None => true,
            Some(ivs) => ivs.iter().any(|(s, e)| *s <= from && to < *e),
        }
    }

    /// All wake/sleep transition times for `v` (wake = interval starts,
    /// sleep = interval ends), used by the engine to schedule events.
    pub fn transitions(&self, v: ValidatorId) -> Vec<(Time, bool)> {
        match &self.intervals[v.index()] {
            None => vec![(Time::ZERO, true)],
            Some(ivs) => {
                let mut out = Vec::with_capacity(ivs.len() * 2);
                for (s, e) in ivs {
                    out.push((*s, true));
                    out.push((*e, false));
                }
                out
            }
        }
    }

    /// The awake honest set `H_t` given the corruption schedule.
    pub fn awake_honest_at(&self, t: Time, corruption: &CorruptionSchedule) -> Vec<ValidatorId> {
        ValidatorId::all(self.n)
            .filter(|v| self.is_awake(*v, t) && !corruption.is_byzantine(*v, t))
            .collect()
    }
}

/// The growing-adversary corruption schedule.
///
/// Entries record when each corruption was *scheduled*; it becomes
/// *effective* Δ later (mildly adaptive adversary, paper §3.1). The
/// Byzantine set is monotone non-decreasing by construction.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CorruptionSchedule {
    /// `(validator, effective_time)`, sorted by effective time.
    entries: Vec<(ValidatorId, Time)>,
}

impl CorruptionSchedule {
    /// No corruptions.
    pub fn none() -> Self {
        Self::default()
    }

    /// Validators Byzantine from the start of the execution.
    pub fn from_genesis(validators: impl IntoIterator<Item = ValidatorId>) -> Self {
        let mut s = Self::default();
        for v in validators {
            s.entries.push((v, Time::ZERO));
        }
        s.entries.sort_by_key(|(_, t)| *t);
        s
    }

    /// Schedules a corruption at `scheduled_at`; it becomes effective at
    /// `scheduled_at + Δ`. Returns the effective time. Idempotent per
    /// validator (the earliest effective time wins).
    pub fn schedule(&mut self, v: ValidatorId, scheduled_at: Time, delta: Delta) -> Time {
        let effective = scheduled_at + delta;
        if let Some(existing) = self.effective_time(v) {
            return existing.min(effective);
        }
        self.entries.push((v, effective));
        self.entries.sort_by_key(|(_, t)| *t);
        effective
    }

    /// Inserts an entry with an explicit effective time (used when
    /// copying schedules; [`CorruptionSchedule::schedule`] is the normal,
    /// mild-adaptivity-enforcing path). Idempotent per validator.
    pub fn insert_effective(&mut self, v: ValidatorId, effective: Time) {
        if self.effective_time(v).is_some() {
            return;
        }
        self.entries.push((v, effective));
        self.entries.sort_by_key(|(_, t)| *t);
    }

    /// The time `v` becomes Byzantine, if ever.
    pub fn effective_time(&self, v: ValidatorId) -> Option<Time> {
        self.entries.iter().find(|(w, _)| *w == v).map(|(_, t)| *t)
    }

    /// Whether `v` is Byzantine at `t` (`v ∈ B_t`).
    pub fn is_byzantine(&self, v: ValidatorId, t: Time) -> bool {
        matches!(self.effective_time(v), Some(eff) if eff <= t)
    }

    /// The Byzantine set `B_t`.
    pub fn byzantine_at(&self, t: Time) -> Vec<ValidatorId> {
        self.entries
            .iter()
            .filter(|(_, eff)| *eff <= t)
            .map(|(v, _)| *v)
            .collect()
    }

    /// All `(validator, effective_time)` entries, sorted by time.
    pub fn entries(&self) -> &[(ValidatorId, Time)] {
        &self.entries
    }

    /// Total number of eventually-Byzantine validators.
    pub fn total(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_membership() {
        let mut s = ParticipationSchedule::always_awake(2);
        s.set_intervals(ValidatorId::new(0), vec![(Time::new(5), Time::new(10)), (Time::new(20), Time::new(25))]);
        assert!(!s.is_awake(ValidatorId::new(0), Time::new(4)));
        assert!(s.is_awake(ValidatorId::new(0), Time::new(5)));
        assert!(!s.is_awake(ValidatorId::new(0), Time::new(10)));
        assert!(s.is_awake(ValidatorId::new(0), Time::new(24)));
        assert!(s.is_awake(ValidatorId::new(1), Time::new(999)));
    }

    #[test]
    fn interval_normalization_merges_overlaps() {
        let mut s = ParticipationSchedule::always_awake(1);
        s.set_intervals(
            ValidatorId::new(0),
            vec![
                (Time::new(10), Time::new(20)),
                (Time::new(0), Time::new(12)),
                (Time::new(30), Time::new(30)), // empty, dropped
            ],
        );
        assert_eq!(
            s.transitions(ValidatorId::new(0)),
            vec![(Time::new(0), true), (Time::new(20), false)]
        );
    }

    #[test]
    fn awake_throughout_window() {
        let mut s = ParticipationSchedule::always_awake(1);
        s.set_intervals(ValidatorId::new(0), vec![(Time::new(5), Time::new(15))]);
        assert!(s.awake_throughout(ValidatorId::new(0), Time::new(5), Time::new(14)));
        assert!(!s.awake_throughout(ValidatorId::new(0), Time::new(5), Time::new(15)));
        assert!(!s.awake_throughout(ValidatorId::new(0), Time::new(4), Time::new(10)));
    }

    #[test]
    fn corruption_mild_adaptivity() {
        let mut c = CorruptionSchedule::none();
        let eff = c.schedule(ValidatorId::new(1), Time::new(10), Delta::new(8));
        assert_eq!(eff, Time::new(18));
        assert!(!c.is_byzantine(ValidatorId::new(1), Time::new(17)));
        assert!(c.is_byzantine(ValidatorId::new(1), Time::new(18)));
    }

    #[test]
    fn corruption_monotone_and_idempotent() {
        let mut c = CorruptionSchedule::none();
        c.schedule(ValidatorId::new(1), Time::new(10), Delta::new(8));
        let second = c.schedule(ValidatorId::new(1), Time::new(0), Delta::new(8));
        // First corruption wins; B_t stays monotone.
        assert_eq!(second, Time::new(8).min(Time::new(18)));
        assert_eq!(c.total(), 1);
        assert_eq!(c.effective_time(ValidatorId::new(1)), Some(Time::new(18)));
    }

    #[test]
    fn genesis_corruption() {
        let c = CorruptionSchedule::from_genesis([ValidatorId::new(0), ValidatorId::new(2)]);
        assert!(c.is_byzantine(ValidatorId::new(0), Time::ZERO));
        assert!(!c.is_byzantine(ValidatorId::new(1), Time::new(100)));
        assert_eq!(c.byzantine_at(Time::ZERO).len(), 2);
    }

    #[test]
    fn awake_honest_excludes_byzantine_and_asleep() {
        let mut s = ParticipationSchedule::always_awake(3);
        s.set_intervals(ValidatorId::new(1), vec![(Time::new(10), Time::new(20))]);
        let c = CorruptionSchedule::from_genesis([ValidatorId::new(2)]);
        let h0 = s.awake_honest_at(Time::ZERO, &c);
        assert_eq!(h0, vec![ValidatorId::new(0)]);
        let h15 = s.awake_honest_at(Time::new(15), &c);
        assert_eq!(h15, vec![ValidatorId::new(0), ValidatorId::new(1)]);
    }
}
