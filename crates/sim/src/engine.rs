//! The discrete-event simulation engine.
//!
//! Within one executed tick, events are applied in a fixed order that
//! mirrors the paper's timing conventions:
//!
//! 1. **Wake** — the validator's buffered messages are delivered, then
//!    `on_wake` runs ("upon waking up, validators immediately receive all
//!    messages they should have received while asleep").
//! 2. **Sleep** — the validator stops participating.
//! 3. **Corrupt** — a scheduled corruption becomes effective (Δ after it
//!    was scheduled); the honest node is replaced by a Byzantine strategy
//!    and the validator becomes permanently awake.
//! 4. **Deliveries** — in schedule order. Processing deliveries *before*
//!    the phase timer makes "received by time t" inclusive, as the
//!    paper's quorum arguments require.
//! 5. **Phase** — on Δ-multiples, every awake node's `on_phase` runs (in
//!    validator order).
//! 6. **Controller** — the adversary observes the tick's traffic and may
//!    issue commands.
//!
//! # Time advancement
//!
//! How the engine moves *between* ticks is governed by [`AdvanceMode`]:
//!
//! * [`AdvanceMode::EventDriven`] (the default) jumps simulation time
//!   directly to the next *interesting* tick —
//!   `min(next heap event, next phase boundary, next controller wakeup)`
//!   — and executes only those. A tick with no scheduled event, off the
//!   Δ-grid, and unclaimed by [`AdversaryController::next_wakeup`] can
//!   affect nothing (steps 1–4 have no events to drain, step 5 does not
//!   fire, and step 6 would see an empty [`TickView`]), so skipping it
//!   is unobservable. In particular, no RNG draws happen on skipped
//!   ticks (delays are drawn per delivery when a message is sent), so
//!   the event-driven engine produces **byte-identical transcripts** to
//!   the tick loop for the same seed and inputs.
//! * [`AdvanceMode::TickLoop`] executes every tick in `[0, t_end]` —
//!   the original reference semantics, kept as the oracle for the
//!   differential determinism suite and the speedup benchmarks.
//!
//! [`Metrics::executed_ticks`] counts the ticks actually executed; in
//! sparse executions (long horizons, large Δ, quiet controllers) it is
//! orders of magnitude below [`Metrics::ticks`], which is where the
//! event-driven engine's speedup comes from.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tobsvd_types::{
    wire, BlockStore, Log, Payload, SignedMessage, Time, ValidatorId,
};

use crate::config::SimConfig;
use crate::controller::{AdversaryCommand, AdversaryController, NullController, TickView};
use crate::fault::StateFault;
use crate::invariant::{DecisionEvent, Invariant, InvariantViolation};
use crate::mempool::{AdmissionStats, Mempool};
use crate::metrics::{MessageKind, Metrics};
use crate::network::{DelayPolicy, DeliveryFilter, UniformDelay};
use crate::node::{Context, IdleNode, Node, Outgoing};
use crate::observer::{ConfirmedTx, DecisionObserver, DecisionRecord, SafetyViolation};
use crate::schedule::{CorruptionSchedule, ParticipationSchedule};

/// Factory that produces the Byzantine replacement node when a validator
/// is corrupted mid-run.
pub type ByzantineFactory = Box<dyn FnMut(ValidatorId, Time) -> Box<dyn Node> + Send>;

/// Factory that rebuilds a validator's node after a kill/restart fault.
/// Unlike a wake-up, a crash destroys all volatile state: the factory is
/// expected to reconstruct the node from durable storage (or from
/// nothing, for protocols without a storage plane).
pub type RestartFactory = Box<dyn FnMut(ValidatorId, Time) -> Box<dyn Node> + Send>;

/// How [`Simulation::run_until`] advances time between ticks.
///
/// Both modes execute the same ticks' contents in the same order and are
/// guaranteed to produce byte-identical transcripts; they differ only in
/// whether provably-inert ticks are visited at all (see the module doc).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdvanceMode {
    /// Jump straight to the next heap event, phase boundary, or
    /// controller wakeup. O(events + phases) per run.
    #[default]
    EventDriven,
    /// Visit every tick of the horizon. O(horizon) per run; the
    /// reference semantics used as the differential-testing oracle.
    TickLoop,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Wake = 0,
    Sleep = 1,
    Corrupt = 2,
    Deliver = 3,
    /// Kill fault: the process dies at this tick. Deliveries scheduled
    /// for the same tick land first (and are dropped — the dying
    /// process never saw them durably), matching the ordering of the
    /// other state transitions.
    Crash = 4,
    /// The killed process comes back, rebuilt by the restart factory
    /// from durable state only.
    Restart = 5,
    /// State corruption: a [`crate::StateFault`] strikes the target's
    /// in-memory (or durable-image) state. Ordered after Restart so a
    /// same-tick corruption hits the *recovered* incarnation — the
    /// worst case for the stabilization layer.
    StateFault = 6,
}

/// One broadcast's shared delivery payload: the `Arc`'d message plus
/// its byte accounting, computed once at send time (both lengths are
/// invariant per message — blocks are immutable once stored) instead of
/// re-derived for each of the n per-recipient deliveries.
#[derive(Clone)]
struct Delivery {
    msg: Arc<SignedMessage>,
    /// Exact wire encoding length under the delta-sync codec.
    wire_len: u64,
    /// Legacy full-chain accounting for the same message.
    inline_len: u64,
}

struct Event {
    time: Time,
    kind: EventKind,
    seq: u64,
    target: ValidatorId,
    /// Delivery events share one `Arc`'d message per broadcast: the
    /// engine allocates once in `apply_context` and every per-recipient
    /// event holds a handle, not a deep copy.
    msg: Option<Delivery>,
    /// State-fault events carry the corruption to apply.
    fault: Option<StateFault>,
}

impl Event {
    fn key(&self) -> (Time, EventKind, u64) {
        (self.time, self.kind, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

struct Slot {
    node: Box<dyn Node>,
    awake: bool,
    byzantine: bool,
    /// Killed and not yet restarted: volatile state (node, buffer) is
    /// gone and deliveries are dropped regardless of the sleep mode.
    crashed: bool,
    /// Whether the builder installed this slot's Byzantine node directly
    /// (in which case corruption events never swap it for the factory's).
    explicit_byzantine: bool,
    buffer: Vec<Arc<SignedMessage>>,
    /// (time, awake?) transition log for post-hoc compliance checking.
    transitions: Vec<(Time, bool)>,
}

/// Builder for a [`Simulation`].
pub struct SimulationBuilder {
    cfg: SimConfig,
    store: BlockStore,
    mempool: Mempool,
    nodes: Vec<Option<Box<dyn Node>>>,
    byz_at_start: Vec<bool>,
    participation: ParticipationSchedule,
    corruption: CorruptionSchedule,
    delay: Box<dyn DelayPolicy>,
    filter: Option<Box<dyn DeliveryFilter>>,
    controller: Box<dyn AdversaryController>,
    byz_factory: ByzantineFactory,
    restart_factory: RestartFactory,
    crashes: Vec<(ValidatorId, Time, Time)>,
    state_faults: Vec<(ValidatorId, Time, StateFault)>,
    drop_while_asleep: bool,
    max_delay_factor: u64,
    advance: AdvanceMode,
    invariants: Vec<Box<dyn Invariant>>,
}

impl SimulationBuilder {
    /// Starts building a simulation; the shared [`BlockStore`] and
    /// [`Mempool`] are created here so nodes can be constructed against
    /// them before being added.
    pub fn new(cfg: SimConfig) -> Self {
        let n = cfg.n;
        SimulationBuilder {
            participation: ParticipationSchedule::always_awake(n),
            corruption: CorruptionSchedule::none(),
            delay: Box::new(UniformDelay),
            filter: None,
            controller: Box::new(NullController),
            byz_factory: Box::new(|_, _| Box::new(IdleNode)),
            restart_factory: Box::new(|_, _| Box::new(IdleNode)),
            crashes: Vec::new(),
            state_faults: Vec::new(),
            store: BlockStore::new(),
            mempool: Mempool::new(),
            nodes: (0..n).map(|_| None).collect(),
            byz_at_start: vec![false; n],
            drop_while_asleep: false,
            max_delay_factor: 1,
            advance: AdvanceMode::default(),
            invariants: Vec::new(),
            cfg,
        }
    }

    /// Installs a run-time [`Invariant`], checked after every decision
    /// event (and once more at [`Simulation::check_end_invariants`]).
    /// Violations are recorded, not panicked on, so model checkers can
    /// collect every failure of a schedule.
    pub fn invariant(mut self, inv: Box<dyn Invariant>) -> Self {
        self.invariants.push(inv);
        self
    }

    /// Selects the time-advancement strategy (event-driven by default).
    pub fn advance_mode(mut self, mode: AdvanceMode) -> Self {
        self.advance = mode;
        self
    }

    /// Switches the engine to the *practical* sleep semantics of §2:
    /// messages sent to asleep validators are dropped rather than
    /// magically buffered. Waking validators must use the recovery
    /// protocol to catch up.
    pub fn drop_while_asleep(mut self, drop: bool) -> Self {
        self.drop_while_asleep = drop;
        self
    }

    /// Lifts the synchrony clamp: delay policies may return up to
    /// `factor`·Δ. With `factor > 1` the network is (temporarily)
    /// *asynchronous* — the setting of the ebb-and-flow experiments,
    /// where the dynamically available chain loses its guarantees and
    /// only the finality gadget's checkpoints remain safe.
    pub fn max_delay_factor(mut self, factor: u64) -> Self {
        assert!(factor >= 1, "factor must be at least 1");
        self.max_delay_factor = factor;
        self
    }

    /// The shared block store (for constructing node initial state).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Replaces the shared block store (e.g. when node state was built
    /// against an externally-created store). Call before installing
    /// nodes that capture the store.
    pub fn with_store(mut self, store: BlockStore) -> Self {
        self.store = store;
        self
    }

    /// Replaces the shared mempool.
    pub fn with_mempool(mut self, mempool: Mempool) -> Self {
        self.mempool = mempool;
        self
    }

    /// The shared mempool.
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// Installs an honest node for validator `v`.
    pub fn node(mut self, v: ValidatorId, node: Box<dyn Node>) -> Self {
        self.nodes[v.index()] = Some(node);
        self
    }

    /// Installs a Byzantine-from-genesis node for validator `v`.
    pub fn byzantine_node(mut self, v: ValidatorId, node: Box<dyn Node>) -> Self {
        self.nodes[v.index()] = Some(node);
        self.byz_at_start[v.index()] = true;
        self
    }

    /// Sets the participation (sleep/wake) schedule.
    pub fn participation(mut self, p: ParticipationSchedule) -> Self {
        assert_eq!(p.n(), self.cfg.n, "schedule size must match n");
        self.participation = p;
        self
    }

    /// Sets pre-scheduled corruptions (mid-run node replacement uses the
    /// Byzantine factory).
    pub fn corruption(mut self, c: CorruptionSchedule) -> Self {
        self.corruption = c;
        self
    }

    /// Sets the network delay policy.
    pub fn delay(mut self, d: Box<dyn DelayPolicy>) -> Self {
        self.delay = d;
        self
    }

    /// Installs a per-copy [`DeliveryFilter`] (lossy-network adversary;
    /// none by default). Suppressed copies count in `Metrics::filtered`
    /// and consume no RNG draw.
    pub fn delivery_filter(mut self, f: Box<dyn DeliveryFilter>) -> Self {
        self.filter = Some(f);
        self
    }

    /// Sets the live adversary controller.
    pub fn controller(mut self, c: Box<dyn AdversaryController>) -> Self {
        self.controller = c;
        self
    }

    /// Sets the factory building Byzantine replacements at corruption
    /// time.
    pub fn byzantine_factory(mut self, f: ByzantineFactory) -> Self {
        self.byz_factory = f;
        self
    }

    /// Schedules kill/restart faults: each `(v, at, restart_at)` kills
    /// validator `v` at `at` (volatile state destroyed, deliveries
    /// dropped while down) and restarts it at `restart_at` via the
    /// [`SimulationBuilder::restart_factory`].
    ///
    /// # Panics
    ///
    /// Panics if a fault's restart time is not after its kill time.
    pub fn crashes(mut self, crashes: Vec<(ValidatorId, Time, Time)>) -> Self {
        for (v, at, restart_at) in &crashes {
            assert!(restart_at > at, "{v}: restart {restart_at} must follow crash {at}");
        }
        self.crashes = crashes;
        self
    }

    /// Sets the factory rebuilding a node after a kill/restart fault
    /// ([`IdleNode`] by default — a crash with no storage plane loses
    /// the validator for the rest of the run).
    pub fn restart_factory(mut self, f: RestartFactory) -> Self {
        self.restart_factory = f;
        self
    }

    /// Schedules state-corruption faults: each `(v, at, fault)` applies
    /// `fault` to validator `v`'s state at tick `at` (via
    /// [`Node::on_state_fault`]). Corruption does not wait for a
    /// wake-up — bit rot strikes sleeping processes too — but a crashed
    /// process has no state to corrupt, so faults landing while `v` is
    /// down are dropped.
    pub fn state_faults(mut self, faults: Vec<(ValidatorId, Time, StateFault)>) -> Self {
        self.state_faults = faults;
        self
    }

    /// Finalizes the simulation.
    ///
    /// # Panics
    ///
    /// Panics if any validator slot was left without a node.
    pub fn build(self) -> Simulation {
        let n = self.cfg.n;
        let mut slots = Vec::with_capacity(n);
        for (i, node) in self.nodes.into_iter().enumerate() {
            let node = node.unwrap_or_else(|| panic!("no node installed for validator v{i}"));
            slots.push(Slot {
                node,
                awake: false,
                byzantine: false,
                crashed: false,
                explicit_byzantine: self.byz_at_start[i],
                buffer: Vec::new(),
                transitions: Vec::new(),
            });
        }
        // Byzantine-from-genesis validators enter the corruption schedule
        // with effective time 0 so compliance accounting sees them.
        let mut corruption = CorruptionSchedule::from_genesis(
            self.byz_at_start
                .iter()
                .enumerate()
                .filter(|(_, b)| **b)
                .map(|(i, _)| ValidatorId::new(i as u32)),
        );
        for (v, t) in self.corruption.entries() {
            corruption.insert_effective(*v, *t);
        }

        let mut sim = Simulation {
            rng: StdRng::seed_from_u64(self.cfg.seed),
            observer: DecisionObserver::new(self.store.clone()),
            metrics: Metrics::new(),
            time: Time::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            slots,
            sent_this_tick: Vec::new(),
            drop_while_asleep: self.drop_while_asleep,
            max_delay_factor: self.max_delay_factor,
            advance: self.advance,
            pruned_len: 1,
            invariants: self.invariants,
            invariant_violations: Vec::new(),
            end_violations: Vec::new(),
            cfg: self.cfg,
            store: self.store,
            mempool: self.mempool,
            participation: self.participation,
            corruption,
            delay: self.delay,
            filter: self.filter,
            controller: self.controller,
            byz_factory: self.byz_factory,
            restart_factory: self.restart_factory,
            crashes: self.crashes,
            state_faults: self.state_faults,
        };
        sim.schedule_initial_events();
        sim
    }
}

/// The discrete-event sleepy-model simulation.
pub struct Simulation {
    cfg: SimConfig,
    store: BlockStore,
    mempool: Mempool,
    time: Time,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    slots: Vec<Slot>,
    participation: ParticipationSchedule,
    corruption: CorruptionSchedule,
    delay: Box<dyn DelayPolicy>,
    filter: Option<Box<dyn DeliveryFilter>>,
    controller: Box<dyn AdversaryController>,
    byz_factory: ByzantineFactory,
    restart_factory: RestartFactory,
    /// Scheduled kill/restart faults, `(validator, at, restart_at)`.
    crashes: Vec<(ValidatorId, Time, Time)>,
    /// Scheduled state corruptions, `(validator, at, fault)`.
    state_faults: Vec<(ValidatorId, Time, StateFault)>,
    metrics: Metrics,
    observer: DecisionObserver,
    rng: StdRng,
    sent_this_tick: Vec<Arc<SignedMessage>>,
    /// When set, messages delivered to asleep validators are dropped
    /// instead of buffered (the §2 practical setting).
    drop_while_asleep: bool,
    /// Delay clamp ceiling as a multiple of Δ (1 = synchronous).
    max_delay_factor: u64,
    /// Time-advancement strategy (see [`AdvanceMode`]).
    advance: AdvanceMode,
    /// Length of the decided-anchor prefix already pruned from the
    /// mempool (1 = genesis only, nothing pruned yet).
    pruned_len: u64,
    /// Installed run-time invariants, checked after every decision.
    invariants: Vec<Box<dyn Invariant>>,
    /// Violations from per-decision checks (accumulated monotonically).
    invariant_violations: Vec<InvariantViolation>,
    /// Violations from the latest end-of-run evaluation (recomputed on
    /// every [`Simulation::check_end_invariants`] call, so a mid-run
    /// snapshot never pollutes the final report).
    end_violations: Vec<InvariantViolation>,
}

impl Simulation {
    /// Starts a builder.
    pub fn builder(cfg: SimConfig) -> SimulationBuilder {
        SimulationBuilder::new(cfg)
    }

    fn schedule_initial_events(&mut self) {
        for v in ValidatorId::all(self.cfg.n) {
            // Byzantine-from-genesis validators are always awake.
            if self.corruption.is_byzantine(v, Time::ZERO) {
                self.push_event(Time::ZERO, EventKind::Corrupt, v, None);
                self.push_event(Time::ZERO, EventKind::Wake, v, None);
                continue;
            }
            for (t, wake) in self.participation.transitions(v) {
                let kind = if wake { EventKind::Wake } else { EventKind::Sleep };
                self.push_event(t, kind, v, None);
            }
            if let Some(eff) = self.corruption.effective_time(v) {
                self.push_event(eff, EventKind::Corrupt, v, None);
            }
        }
        let faults = std::mem::take(&mut self.crashes);
        for (v, at, restart_at) in &faults {
            self.push_event(*at, EventKind::Crash, *v, None);
            self.push_event(*restart_at, EventKind::Restart, *v, None);
        }
        self.crashes = faults;
        let corruptions = std::mem::take(&mut self.state_faults);
        for (v, at, fault) in &corruptions {
            self.push_state_fault(*at, *v, *fault);
        }
        self.state_faults = corruptions;
    }

    fn push_event(
        &mut self,
        time: Time,
        kind: EventKind,
        target: ValidatorId,
        msg: Option<Delivery>,
    ) {
        self.seq += 1;
        self.events.push(Reverse(Event { time, kind, seq: self.seq, target, msg, fault: None }));
    }

    fn push_state_fault(&mut self, time: Time, target: ValidatorId, fault: StateFault) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            kind: EventKind::StateFault,
            seq: self.seq,
            target,
            msg: None,
            fault: Some(fault),
        }));
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// The shared block store.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The shared mempool.
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// Immutable access to a node (downcast via [`Node::as_any`]).
    pub fn node(&self, v: ValidatorId) -> &dyn Node {
        self.slots[v.index()].node.as_ref()
    }

    /// Whether `v` is currently Byzantine.
    pub fn is_byzantine(&self, v: ValidatorId) -> bool {
        self.slots[v.index()].byzantine
    }

    /// Whether `v` is currently awake.
    pub fn is_awake(&self, v: ValidatorId) -> bool {
        self.slots[v.index()].awake
    }

    /// Whether `v` is currently down from a kill fault (crashed, not
    /// yet restarted).
    pub fn is_crashed(&self, v: ValidatorId) -> bool {
        self.slots[v.index()].crashed
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The decision observer.
    pub fn observer(&self) -> &DecisionObserver {
        &self.observer
    }

    /// The (possibly controller-extended) corruption schedule.
    pub fn corruption(&self) -> &CorruptionSchedule {
        &self.corruption
    }

    /// Invariant violations as of now: every per-decision violation,
    /// followed by the latest end-of-run evaluation's.
    pub fn invariant_violations(&self) -> Vec<InvariantViolation> {
        let mut all = self.invariant_violations.clone();
        all.extend(self.end_violations.iter().cloned());
        all
    }

    /// Runs every installed invariant's [`Invariant::at_end`] check
    /// against the current state, *replacing* the previous end-of-run
    /// evaluation. Safe to call at any time (every [`Simulation::report`]
    /// does): an early snapshot's findings are recomputed — not kept —
    /// once the run has actually advanced.
    pub fn check_end_invariants(&mut self) {
        self.end_violations.clear();
        let now = self.time;
        for inv in &mut self.invariants {
            if let Err(detail) = inv.at_end(&self.observer, &self.store, now) {
                self.end_violations.push(InvariantViolation {
                    invariant: inv.name(),
                    at: now,
                    detail,
                });
            }
        }
    }

    /// Runs the simulation up to and including tick `t_end`.
    ///
    /// In [`AdvanceMode::EventDriven`] (the default) time jumps straight
    /// to each next interesting tick; in [`AdvanceMode::TickLoop`] every
    /// tick is visited. Both end with `now() == t_end + 1` and identical
    /// state (see the module doc's determinism argument).
    pub fn run_until(&mut self, t_end: Time) {
        match self.advance {
            AdvanceMode::TickLoop => {
                while self.time <= t_end {
                    self.step_tick();
                }
            }
            AdvanceMode::EventDriven => {
                while self.time <= t_end {
                    let next = self.next_interesting_tick();
                    if next > t_end {
                        self.time = t_end + 1;
                        break;
                    }
                    self.time = next;
                    self.step_tick();
                }
            }
        }
        self.metrics.ticks = self.time.ticks();
    }

    /// The earliest tick at or after `self.time` where anything can
    /// happen: a scheduled heap event, a Δ phase boundary, or a
    /// controller-requested wakeup.
    fn next_interesting_tick(&mut self) -> Time {
        let now = self.time;
        let delta = self.cfg.delta.ticks();
        // Next phase boundary at or after `now`. Saturating: with a
        // sentinel-sized horizon the rounded-up boundary may exceed
        // u64::MAX, which must read as "past t_end", not wrap backwards.
        let mut next = Time::new(now.ticks().div_ceil(delta).saturating_mul(delta));
        if let Some(Reverse(ev)) = self.events.peek() {
            debug_assert!(ev.time >= now, "stale event below current time");
            next = next.min(ev.time.max(now));
        }
        if let Some(wakeup) = self.controller.next_wakeup(now) {
            next = next.min(wakeup.max(now));
        }
        next
    }

    /// Processes one tick.
    fn step_tick(&mut self) {
        let now = self.time;
        self.metrics.executed_ticks += 1;
        self.sent_this_tick.clear();

        // 1–4: drain all heap events scheduled for this tick, in
        // (kind, seq) order — the heap ordering guarantees this.
        while let Some(Reverse(ev)) = self.events.peek() {
            debug_assert!(ev.time >= now, "event in the past");
            if ev.time > now {
                break;
            }
            let Reverse(ev) = self.events.pop().expect("peeked");
            self.apply_event(ev);
        }

        // 5: phase boundary.
        if now.is_phase_boundary(self.cfg.delta) {
            for i in 0..self.slots.len() {
                if self.slots[i].awake {
                    self.call_node(i, |node, ctx| node.on_phase(ctx));
                }
            }
        }

        // 6: adversary controller.
        let commands = {
            let view = TickView { time: now, sent: &self.sent_this_tick };
            self.controller.on_tick(&view)
        };
        for cmd in commands {
            self.apply_command(cmd);
        }

        self.time += 1;
    }

    fn apply_event(&mut self, ev: Event) {
        let idx = ev.target.index();
        match ev.kind {
            EventKind::Wake => {
                // A crashed process cannot wake: only a Restart (which
                // rebuilds it from durable state) brings it back.
                if self.slots[idx].awake || self.slots[idx].crashed {
                    return;
                }
                self.slots[idx].awake = true;
                let t = self.time;
                self.slots[idx].transitions.push((t, true));
                // Deliver everything buffered while asleep, then on_wake.
                let buffered: Vec<Arc<SignedMessage>> = std::mem::take(&mut self.slots[idx].buffer);
                for msg in buffered {
                    self.call_node(idx, |node, ctx| node.on_message(&msg, ctx));
                }
                self.call_node(idx, |node, ctx| node.on_wake(ctx));
            }
            EventKind::Sleep => {
                // Byzantine validators are always awake.
                if self.slots[idx].byzantine || !self.slots[idx].awake {
                    return;
                }
                self.slots[idx].awake = false;
                let t = self.time;
                self.slots[idx].transitions.push((t, false));
            }
            EventKind::Corrupt => {
                if self.slots[idx].byzantine {
                    return;
                }
                self.slots[idx].byzantine = true;
                // Corruption of a downed validator supplants the
                // restart: the adversary's replacement is a new process.
                self.slots[idx].crashed = false;
                // Replace the honest node with the Byzantine strategy,
                // unless the builder installed this slot's Byzantine node
                // directly.
                if !self.slots[idx].explicit_byzantine {
                    let replacement = (self.byz_factory)(ev.target, self.time);
                    self.slots[idx].node = replacement;
                }
                // Byzantine validators are always awake.
                if !self.slots[idx].awake {
                    self.slots[idx].awake = true;
                    let t = self.time;
                    self.slots[idx].transitions.push((t, true));
                    let buffered: Vec<Arc<SignedMessage>> =
                        std::mem::take(&mut self.slots[idx].buffer);
                    for msg in buffered {
                        self.call_node(idx, |node, ctx| node.on_message(&msg, ctx));
                    }
                    self.call_node(idx, |node, ctx| node.on_wake(ctx));
                }
            }
            EventKind::Deliver => {
                let delivery = ev.msg.expect("deliver event carries a message");
                // Byte accounting: the copy's actual wire encoding under
                // the delta-sync codec, plus what the old full-chain
                // codec would have shipped (for the savings ratio) —
                // both computed once per broadcast at send time.
                let msg = delivery.msg;
                self.metrics.record_delivery(
                    kind_of(msg.payload()),
                    delivery.wire_len,
                    delivery.inline_len,
                );
                if self.slots[idx].crashed {
                    // A dead process receives nothing, and nothing
                    // buffers for it — regardless of the sleep mode.
                    self.metrics.dropped += 1;
                } else if self.slots[idx].awake {
                    self.call_node(idx, |node, ctx| node.on_message(&msg, ctx));
                } else if self.drop_while_asleep {
                    // The practical setting of §2: nobody buffers for
                    // you; the recovery protocol must fill the gap.
                    self.metrics.dropped += 1;
                } else {
                    self.metrics.buffered += 1;
                    self.slots[idx].buffer.push(msg);
                }
            }
            EventKind::Crash => {
                if self.slots[idx].byzantine || self.slots[idx].crashed {
                    return;
                }
                self.slots[idx].crashed = true;
                self.metrics.crashes += 1;
                if self.slots[idx].awake {
                    self.slots[idx].awake = false;
                    let t = self.time;
                    self.slots[idx].transitions.push((t, false));
                }
                // Volatile state dies with the process: the node's
                // in-memory protocol state and anything the engine
                // buffered on its behalf.
                self.slots[idx].buffer.clear();
                self.slots[idx].node = Box::new(IdleNode);
            }
            EventKind::Restart => {
                if self.slots[idx].byzantine || !self.slots[idx].crashed {
                    return;
                }
                self.slots[idx].crashed = false;
                let replacement = (self.restart_factory)(ev.target, self.time);
                self.slots[idx].node = replacement;
                self.slots[idx].awake = true;
                let t = self.time;
                self.slots[idx].transitions.push((t, true));
                // Restart is semantically a wake-up with amnesia: no
                // buffered deliveries exist, so the node goes straight
                // to on_wake (where the §2 recovery broadcast fires).
                self.call_node(idx, |node, ctx| node.on_wake(ctx));
            }
            EventKind::StateFault => {
                // A crashed process has no volatile state to corrupt
                // (its durable image is reachable only through a node,
                // which is gone too). Sleep does NOT protect: bit rot
                // strikes dormant processes, so the fault applies to
                // sleeping nodes in place without waking them.
                if self.slots[idx].crashed {
                    return;
                }
                let fault = ev.fault.expect("state-fault event carries a fault");
                self.metrics.state_corruptions += 1;
                self.call_node(idx, |node, ctx| node.on_state_fault(&fault, ctx));
            }
        }
    }

    /// Checks a node out of its slot, runs `f` with a fresh context, puts
    /// it back, then applies the context's collected actions.
    fn call_node<F>(&mut self, idx: usize, f: F)
    where
        F: FnOnce(&mut Box<dyn Node>, &mut Context),
    {
        let me = ValidatorId::new(idx as u32);
        let mut ctx = Context::new(
            self.time,
            me,
            self.cfg.delta,
            self.store.clone(),
            self.mempool.clone(),
        );
        let mut node: Box<dyn Node> = std::mem::replace(&mut self.slots[idx].node, Box::new(IdleNode));
        f(&mut node, &mut ctx);
        self.slots[idx].node = node;
        self.apply_context(idx, ctx);
    }

    fn apply_context(&mut self, idx: usize, ctx: Context) {
        let from = ValidatorId::new(idx as u32);
        let byzantine = self.slots[idx].byzantine;
        self.metrics.sig_verifies += ctx.crypto_ops.sig_verifies;
        self.metrics.sig_verify_skips += ctx.crypto_ops.sig_verify_skips;
        self.metrics.vrf_verifies += ctx.crypto_ops.vrf_verifies;
        self.metrics.vrf_verify_skips += ctx.crypto_ops.vrf_verify_skips;
        self.metrics.agg_verifies += ctx.crypto_ops.agg_verifies;
        self.metrics.agg_verify_skips += ctx.crypto_ops.agg_verify_skips;
        for out in ctx.outbox {
            // One allocation (and one byte-length computation) per
            // broadcast: every delivery event and the controller's tick
            // view share the handle.
            match out {
                Outgoing::Broadcast(msg) => {
                    self.metrics.record_broadcast(kind_of(msg.payload()));
                    let delivery = self.share(msg);
                    self.deliver_to_all(from, &delivery);
                }
                Outgoing::Forward(msg) => {
                    self.metrics.forwards += 1;
                    let delivery = self.share(msg);
                    self.deliver_to_all(from, &delivery);
                }
                Outgoing::ForwardTo(targets, msg) => {
                    self.metrics.forwards += 1;
                    let delivery = self.share(msg);
                    let mut seen = vec![false; self.cfg.n];
                    for to in targets {
                        if !seen[to.index()] {
                            seen[to.index()] = true;
                            self.deliver_one(from, to, &delivery);
                        }
                    }
                }
                Outgoing::Multicast(targets, msg) => {
                    self.metrics.record_broadcast(kind_of(msg.payload()));
                    let delivery = self.share(msg);
                    let mut seen = vec![false; self.cfg.n];
                    for to in targets {
                        if !seen[to.index()] {
                            seen[to.index()] = true;
                            self.deliver_one(from, to, &delivery);
                        }
                    }
                }
            }
        }
        let decided_something = !ctx.decisions.is_empty();
        for log in ctx.decisions {
            self.metrics.decisions += 1;
            if !byzantine {
                let t = self.time;
                self.observer.record(from, t, log, &self.mempool);
                let rec = DecisionRecord { validator: from, at: t, log };
                for inv in &mut self.invariants {
                    let ev = DecisionEvent {
                        record: &rec,
                        observer: &self.observer,
                        store: &self.store,
                    };
                    if let Err(detail) = inv.on_decision(&ev) {
                        self.invariant_violations.push(InvariantViolation {
                            invariant: inv.name(),
                            at: t,
                            detail,
                        });
                    }
                }
            }
        }
        // Memory hygiene for long sweeps: whenever the decided anchor
        // grows (which only a decision can cause — keep this off the
        // per-message path), drop its transactions from the mempool
        // (they can never be proposed again) and reset the inclusion
        // memo behind it.
        if decided_something {
            if let Some(anchor) = self.observer.longest_decided() {
                if anchor.len() > self.pruned_len {
                    self.mempool.prune_confirmed(&anchor, &self.store);
                    self.pruned_len = anchor.len();
                }
            }
        }
    }

    /// Wraps an outgoing message into its shared per-broadcast handle,
    /// computing both byte accountings exactly once.
    fn share(&mut self, msg: SignedMessage) -> Delivery {
        // The sim's store is the single shared source of truth, so a
        // constructed message always has its chain stored; a failure here
        // is a sim bug and must not be silently charged as 0 bytes.
        let wire_len = wire::encoded_len(&msg, &self.store).expect("sim store holds every chain");
        let inline_len = wire::inline_equivalent_len(&msg, &self.store);
        let msg = Arc::new(msg);
        self.sent_this_tick.push(Arc::clone(&msg));
        Delivery { msg, wire_len, inline_len }
    }

    fn deliver_to_all(&mut self, from: ValidatorId, delivery: &Delivery) {
        for to in ValidatorId::all(self.cfg.n) {
            self.deliver_one(from, to, delivery);
        }
    }

    fn deliver_one(&mut self, from: ValidatorId, to: ValidatorId, delivery: &Delivery) {
        let delta = self.cfg.delta;
        let msg = &delivery.msg;
        let delay = if from == to {
            // A validator always has its own message on the next tick
            // (and a lossy-network filter cannot touch the local copy).
            1
        } else {
            if let Some(filter) = &mut self.filter {
                if !filter.allow(msg, from, to, self.time) {
                    self.metrics.filtered += 1;
                    return;
                }
            }
            self.delay
                .delay(msg, from, to, self.time, delta, &mut self.rng)
                .clamp(1, delta.ticks().saturating_mul(self.max_delay_factor))
        };
        let at = self.time + delay;
        self.push_event(at, EventKind::Deliver, to, Some(delivery.clone()));
    }

    fn apply_command(&mut self, cmd: AdversaryCommand) {
        match cmd {
            AdversaryCommand::Corrupt(v) => {
                if self.corruption.effective_time(v).is_some() {
                    return; // already scheduled or Byzantine
                }
                let t = self.time;
                let eff = self.corruption.schedule(v, t, self.cfg.delta);
                self.push_event(eff, EventKind::Corrupt, v, None);
            }
            AdversaryCommand::Sleep(v) => {
                let t = self.time + 1;
                self.push_event(t, EventKind::Sleep, v, None);
            }
            AdversaryCommand::Wake(v) => {
                let t = self.time + 1;
                self.push_event(t, EventKind::Wake, v, None);
            }
        }
    }

    /// Reconstructs the *effective* participation schedule actually
    /// realized (base schedule plus controller commands), for post-hoc
    /// Condition (1) checking.
    pub fn effective_participation(&self) -> ParticipationSchedule {
        let mut sched = ParticipationSchedule::always_awake(self.cfg.n);
        for (i, slot) in self.slots.iter().enumerate() {
            let mut intervals = Vec::new();
            let mut open: Option<Time> = None;
            for (t, awake) in &slot.transitions {
                if *awake {
                    if open.is_none() {
                        open = Some(*t);
                    }
                } else if let Some(start) = open.take() {
                    intervals.push((start, *t));
                }
            }
            if let Some(start) = open {
                intervals.push((start, self.time + 1));
            }
            sched.set_intervals(ValidatorId::new(i as u32), intervals);
        }
        sched
    }

    /// Produces a summary report of the run so far, (re-)evaluating the
    /// end-of-run invariant checks against the current state first —
    /// direct engine users can't silently skip an `at_end`-only
    /// invariant like a chain-growth bound, and a mid-run snapshot's
    /// findings never leak into a later report.
    pub fn report(&mut self) -> SimReport {
        self.check_end_invariants();
        SimReport {
            final_time: self.time,
            metrics: self.metrics.clone(),
            safe: self.observer.is_safe(),
            violations: self.observer.violations().to_vec(),
            longest_decided: self.observer.longest_decided(),
            // BTreeMap values come out in validator-id order already.
            latest_decisions: self.observer.latest_decisions().values().copied().collect(),
            confirmed: self.observer.confirmed().to_vec(),
            decisions: self.observer.history().to_vec(),
            invariant_violations: self.invariant_violations(),
            admission: self.mempool.admission_stats(),
            store: self.store.clone(),
        }
    }
}

fn kind_of(payload: &Payload) -> MessageKind {
    match payload {
        Payload::Log { .. } => MessageKind::Log,
        Payload::Proposal { .. } => MessageKind::Proposal,
        Payload::Vote { .. } => MessageKind::Vote,
        Payload::Recovery { .. } => MessageKind::Recovery,
        Payload::FinalityVote { .. } => MessageKind::FinalityVote,
        Payload::BlockRequest { .. } => MessageKind::BlockRequest,
        Payload::BlockResponse { .. } => MessageKind::BlockResponse,
        Payload::Certificate { .. } => MessageKind::Certificate,
    }
}

/// Summary of a finished (or in-progress) simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Time the report was taken.
    pub final_time: Time,
    /// Accumulated metrics.
    pub metrics: Metrics,
    /// Whether no safety violation was observed.
    pub safe: bool,
    /// Detected safety violations.
    pub violations: Vec<SafetyViolation>,
    /// The longest decided log across honest validators.
    pub longest_decided: Option<Log>,
    /// Latest decision per validator (sorted by validator id).
    pub latest_decisions: Vec<DecisionRecord>,
    /// Confirmed transactions with latencies.
    pub confirmed: Vec<ConfirmedTx>,
    /// Full decision history (every honest decision, in arrival order) —
    /// the evidence trail [`SimReport::assert_safety`] re-checks.
    pub decisions: Vec<DecisionRecord>,
    /// Violations of installed run-time invariants.
    pub invariant_violations: Vec<InvariantViolation>,
    /// Mempool admission counters (all-zero unless a bounded
    /// [`crate::AdmissionPolicy`] was installed and exercised).
    pub admission: AdmissionStats,
    /// The shared block store (for post-hoc log walks).
    pub store: BlockStore,
}

impl SimReport {
    /// Length of the longest decided log (1 = genesis only).
    pub fn max_decided_len(&self) -> u64 {
        self.longest_decided.map(|l| l.len()).unwrap_or(1)
    }

    /// Re-derives cross-validator prefix agreement from the *full
    /// decision history*, independently of the online observer: every
    /// recorded decision must be compatible with the longest recorded
    /// decision. (Logs are chains, so any two prefixes of a common
    /// extension are pairwise compatible; checking every record against
    /// one maximal record is therefore complete.) Returns the offending
    /// pairs — empty iff agreement held at every intermediate decision
    /// point, not just in the final transcripts.
    pub fn prefix_agreement_violations(&self) -> Vec<(DecisionRecord, DecisionRecord)> {
        let Some(longest) = self.decisions.iter().max_by_key(|r| r.log.len()) else {
            return Vec::new();
        };
        self.decisions
            .iter()
            .filter(|r| !r.log.compatible(&longest.log, &self.store))
            .map(|r| (*longest, *r))
            .collect()
    }

    /// Panics with a descriptive message if a safety violation occurred,
    /// either online (observer) or in the post-hoc prefix-agreement
    /// re-check over every intermediate decision point.
    ///
    /// # Panics
    ///
    /// Panics when the run had conflicting decisions — including a
    /// transient fork window whose transcripts later reconverged.
    pub fn assert_safety(&self) {
        assert!(
            self.safe,
            "safety violated: {} conflicting decision pairs, first: {:?}",
            self.violations.len(),
            self.violations.first()
        );
        let cross = self.prefix_agreement_violations();
        assert!(
            cross.is_empty(),
            "cross-validator prefix agreement violated at an intermediate decision point \
             ({} pairs despite a clean observer — observer bug?), first: {:?}",
            cross.len(),
            cross.first()
        );
    }

    /// Panics if any installed run-time invariant was violated.
    ///
    /// # Panics
    ///
    /// Panics listing the first violation.
    pub fn assert_invariants(&self) {
        assert!(
            self.invariant_violations.is_empty(),
            "{} invariant violations, first: {}",
            self.invariant_violations.len(),
            self.invariant_violations[0]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_crypto::Keypair;
    use tobsvd_types::{InstanceId, Payload, View};

    /// Broadcasts one LOG at its first phase, counts received messages.
    struct PingNode {
        me: ValidatorId,
        sent: bool,
        received: Vec<(Time, ValidatorId)>,
    }

    impl PingNode {
        fn new(me: ValidatorId) -> Self {
            PingNode { me, sent: false, received: Vec::new() }
        }
    }

    impl Node for PingNode {
        fn on_phase(&mut self, ctx: &mut Context) {
            if !self.sent {
                self.sent = true;
                let kp = Keypair::from_seed(self.me.key_seed());
                let msg = SignedMessage::sign(
                    &kp,
                    self.me,
                    Payload::Log { instance: InstanceId(0), log: Log::genesis(&ctx.store) },
                );
                ctx.broadcast(msg);
            }
        }
        fn on_message(&mut self, msg: &SignedMessage, ctx: &mut Context) {
            self.received.push((ctx.time, msg.sender()));
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn build_ping_sim(n: usize, seed: u64) -> Simulation {
        let cfg = SimConfig::new(n).with_seed(seed);
        let mut b = Simulation::builder(cfg);
        for v in ValidatorId::all(n) {
            b = b.node(v, Box::new(PingNode::new(v)));
        }
        b.build()
    }

    fn ping_received(sim: &Simulation, v: ValidatorId) -> &[(Time, ValidatorId)] {
        &sim.node(v).as_any().downcast_ref::<PingNode>().unwrap().received
    }

    #[test]
    fn all_messages_delivered_within_delta() {
        let mut sim = build_ping_sim(4, 1);
        sim.run_until(Time::new(20));
        let delta = 8;
        for v in ValidatorId::all(4) {
            let recv = ping_received(&sim, v);
            // Everyone receives all 4 LOGs (incl. own) within Δ of t=0.
            assert_eq!(recv.len(), 4, "{v} received {recv:?}");
            for (t, _) in recv {
                assert!(t.ticks() >= 1 && t.ticks() <= delta);
            }
        }
        assert_eq!(sim.metrics().log_broadcasts, 4);
        assert_eq!(sim.metrics().deliveries, 16);
    }

    #[test]
    fn asleep_validator_gets_buffered_messages_at_wake() {
        let n = 3;
        let cfg = SimConfig::new(n).with_seed(2);
        let mut part = ParticipationSchedule::always_awake(n);
        // v2 sleeps ticks [0, 50), wakes at 50.
        part.set_intervals(ValidatorId::new(2), vec![(Time::new(50), Time::new(100))]);
        let mut b = Simulation::builder(cfg).participation(part);
        for v in ValidatorId::all(n) {
            b = b.node(v, Box::new(PingNode::new(v)));
        }
        let mut sim = b.build();
        sim.run_until(Time::new(60));
        let recv = ping_received(&sim, ValidatorId::new(2));
        // v0 and v1 broadcast at t=0 (delivered while asleep, buffered);
        // v2's own broadcast happens at its first phase after waking.
        let buffered: Vec<_> = recv.iter().filter(|(t, _)| t.ticks() == 50).collect();
        assert_eq!(buffered.len(), 2, "both early LOGs arrive at wake: {recv:?}");
        assert!(sim.metrics().buffered >= 2);
    }

    #[test]
    fn deliveries_precede_phase_at_same_tick() {
        // A message sent at t=0 with worst-case delay Δ=8 arrives at t=8,
        // which is also a phase boundary; on_message must run before
        // on_phase. We detect this with a node that records phase-time
        // message counts.
        struct ProbeNode {
            me: ValidatorId,
            msgs_before_phase_at_8: usize,
            phase8_seen: bool,
        }
        impl Node for ProbeNode {
            fn on_phase(&mut self, ctx: &mut Context) {
                if ctx.time == Time::new(0) && self.me.index() == 0 {
                    let kp = Keypair::from_seed(self.me.key_seed());
                    ctx.broadcast(SignedMessage::sign(
                        &kp,
                        self.me,
                        Payload::Log { instance: InstanceId(0), log: Log::genesis(&ctx.store) },
                    ));
                }
                if ctx.time == Time::new(8) {
                    self.phase8_seen = true;
                }
            }
            fn on_message(&mut self, _msg: &SignedMessage, ctx: &mut Context) {
                if ctx.time == Time::new(8) && !self.phase8_seen {
                    self.msgs_before_phase_at_8 += 1;
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let cfg = SimConfig::new(2).with_seed(3);
        let mut sim = Simulation::builder(cfg)
            .delay(Box::new(crate::network::WorstCaseDelay))
            .node(ValidatorId::new(0), Box::new(ProbeNode { me: ValidatorId::new(0), msgs_before_phase_at_8: 0, phase8_seen: false }))
            .node(ValidatorId::new(1), Box::new(ProbeNode { me: ValidatorId::new(1), msgs_before_phase_at_8: 0, phase8_seen: false }))
            .build();
        sim.run_until(Time::new(10));
        let probe = sim
            .node(ValidatorId::new(1))
            .as_any()
            .downcast_ref::<ProbeNode>()
            .unwrap();
        assert_eq!(probe.msgs_before_phase_at_8, 1, "delivery at t=8 must precede phase at t=8");
        assert!(probe.phase8_seen);
    }

    #[test]
    fn corruption_replaces_node_and_wakes_it() {
        let n = 2;
        let cfg = SimConfig::new(n).with_seed(4);
        let mut corr = CorruptionSchedule::none();
        corr.schedule(ValidatorId::new(1), Time::new(8), cfg.delta); // effective t=16
        let mut b = Simulation::builder(cfg)
            .corruption(corr)
            .byzantine_factory(Box::new(|_, _| Box::new(IdleNode)));
        for v in ValidatorId::all(n) {
            b = b.node(v, Box::new(PingNode::new(v)));
        }
        let mut sim = b.build();
        sim.run_until(Time::new(20));
        assert!(sim.is_byzantine(ValidatorId::new(1)));
        assert!(!sim.is_byzantine(ValidatorId::new(0)));
        // Node was replaced by IdleNode.
        assert!(sim.node(ValidatorId::new(1)).as_any().downcast_ref::<IdleNode>().is_some());
        assert_eq!(sim.node(ValidatorId::new(1)).label(), "idle");
    }

    #[test]
    fn crash_destroys_volatile_state_and_restart_rebuilds() {
        let n = 2;
        let cfg = SimConfig::new(n).with_seed(7);
        let mut b = Simulation::builder(cfg)
            .crashes(vec![(ValidatorId::new(1), Time::new(4), Time::new(12))])
            .restart_factory(Box::new(|v, _| Box::new(PingNode::new(v))));
        for v in ValidatorId::all(n) {
            b = b.node(v, Box::new(PingNode::new(v)));
        }
        let mut sim = b.build();
        sim.run_until(Time::new(30));
        assert!(!sim.is_crashed(ValidatorId::new(1)));
        assert!(sim.is_awake(ValidatorId::new(1)));
        assert_eq!(sim.metrics().crashes, 1);
        // Everything the pre-crash incarnation received died with it;
        // the restarted node only holds post-restart deliveries (its
        // own re-broadcast at the first post-restart phase).
        let recv = ping_received(&sim, ValidatorId::new(1));
        assert!(recv.iter().all(|(t, _)| t.ticks() >= 12), "pre-crash state leaked: {recv:?}");
        assert_eq!(recv.len(), 1, "only the fresh incarnation's own LOG remains: {recv:?}");
        // The downtime window shows up as an asleep interval in the
        // effective participation (compliance accounting sees crashes).
        let eff = sim.effective_participation();
        assert!(!eff.is_awake(ValidatorId::new(1), Time::new(8)));
        assert!(eff.is_awake(ValidatorId::new(1), Time::new(13)));
    }

    #[test]
    fn controller_commands_take_effect() {
        struct SleepAtTen;
        impl AdversaryController for SleepAtTen {
            fn on_tick(&mut self, view: &TickView<'_>) -> Vec<AdversaryCommand> {
                if view.time == Time::new(10) {
                    vec![AdversaryCommand::Sleep(ValidatorId::new(0))]
                } else {
                    Vec::new()
                }
            }
        }
        let cfg = SimConfig::new(2).with_seed(5);
        let mut b = Simulation::builder(cfg).controller(Box::new(SleepAtTen));
        for v in ValidatorId::all(2) {
            b = b.node(v, Box::new(PingNode::new(v)));
        }
        let mut sim = b.build();
        sim.run_until(Time::new(20));
        assert!(!sim.is_awake(ValidatorId::new(0)));
        assert!(sim.is_awake(ValidatorId::new(1)));
        // Effective participation reflects the controller-driven sleep.
        let eff = sim.effective_participation();
        assert!(eff.is_awake(ValidatorId::new(0), Time::new(10)));
        assert!(!eff.is_awake(ValidatorId::new(0), Time::new(12)));
    }

    /// A deliberately out-of-spec delay policy: returns `0` for copies to
    /// even validators and `u64::MAX` for odd ones. The engine must clamp
    /// both into `[1, Δ·max_delay_factor]`.
    struct OutOfSpecDelay;
    impl crate::network::DelayPolicy for OutOfSpecDelay {
        fn delay(
            &mut self,
            _msg: &SignedMessage,
            _from: ValidatorId,
            to: ValidatorId,
            _at: Time,
            _delta: tobsvd_types::Delta,
            _rng: &mut StdRng,
        ) -> u64 {
            if to.index() % 2 == 0 {
                0
            } else {
                u64::MAX
            }
        }
    }

    #[test]
    fn out_of_spec_delays_are_clamped_into_synchrony_window() {
        let delta = 8;
        let cfg = SimConfig::new(3).with_seed(9);
        let mut b = Simulation::builder(cfg).delay(Box::new(OutOfSpecDelay));
        for v in ValidatorId::all(3) {
            b = b.node(v, Box::new(PingNode::new(v)));
        }
        let mut sim = b.build();
        sim.run_until(Time::new(3 * delta));
        for v in ValidatorId::all(3) {
            for (t, from) in ping_received(&sim, v) {
                if from == &v {
                    continue; // own copy always arrives at t+1
                }
                let expect = if v.index() % 2 == 0 { 1 } else { delta };
                assert_eq!(
                    t.ticks(),
                    expect,
                    "copy {from}->{v} must be clamped to {expect}, arrived at {t}"
                );
            }
            // Nobody missed a message: a 0-delay must not become a
            // same-tick (lost) delivery, a u64::MAX delay must not park
            // the message past the horizon.
            assert_eq!(ping_received(&sim, v).len(), 3);
        }
    }

    #[test]
    fn out_of_spec_delays_respect_lifted_clamp_ceiling() {
        let cfg = SimConfig::new(2).with_seed(9);
        let factor = 3;
        let mut b = Simulation::builder(cfg)
            .max_delay_factor(factor)
            .delay(Box::new(OutOfSpecDelay));
        for v in ValidatorId::all(2) {
            b = b.node(v, Box::new(PingNode::new(v)));
        }
        let mut sim = b.build();
        sim.run_until(Time::new(8 * factor + 8));
        // v1 receives v0's copy at exactly Δ·factor.
        let recv = ping_received(&sim, ValidatorId::new(1));
        let from_v0: Vec<_> = recv.iter().filter(|(_, s)| s.index() == 0).collect();
        assert_eq!(from_v0.len(), 1);
        assert_eq!(from_v0[0].0.ticks(), 8 * factor);
    }

    fn build_ping_sim_mode(n: usize, seed: u64, mode: AdvanceMode) -> Simulation {
        let cfg = SimConfig::new(n).with_seed(seed);
        let mut b = Simulation::builder(cfg).advance_mode(mode);
        for v in ValidatorId::all(n) {
            b = b.node(v, Box::new(PingNode::new(v)));
        }
        b.build()
    }

    #[test]
    fn event_driven_matches_tick_loop_byte_for_byte() {
        for seed in [1u64, 7, 42] {
            let mut ev = build_ping_sim_mode(5, seed, AdvanceMode::EventDriven);
            let mut tl = build_ping_sim_mode(5, seed, AdvanceMode::TickLoop);
            ev.run_until(Time::new(100));
            tl.run_until(Time::new(100));
            assert_eq!(ev.now(), tl.now());
            for v in ValidatorId::all(5) {
                assert_eq!(
                    ping_received(&ev, v),
                    ping_received(&tl, v),
                    "seed {seed}: delivery transcripts diverged for {v}"
                );
            }
            assert_eq!(ev.metrics().deliveries, tl.metrics().deliveries);
            assert_eq!(ev.metrics().bytes_delivered, tl.metrics().bytes_delivered);
            assert_eq!(ev.metrics().ticks, tl.metrics().ticks);
            // The whole point: the event-driven run did strictly less work.
            assert!(
                ev.metrics().executed_ticks < tl.metrics().executed_ticks,
                "event-driven executed {} ticks, tick loop {}",
                ev.metrics().executed_ticks,
                tl.metrics().executed_ticks
            );
        }
    }

    #[test]
    fn event_driven_matches_tick_loop_with_sleep_and_corruption() {
        let build = |mode: AdvanceMode| {
            let n = 4;
            let cfg = SimConfig::new(n).with_seed(11);
            let mut part = ParticipationSchedule::always_awake(n);
            part.set_intervals(
                ValidatorId::new(2),
                vec![(Time::new(30), Time::new(70)), (Time::new(90), Time::new(200))],
            );
            let mut corr = CorruptionSchedule::none();
            corr.schedule(ValidatorId::new(3), Time::new(40), cfg.delta);
            let mut b = Simulation::builder(cfg)
                .advance_mode(mode)
                .participation(part)
                .corruption(corr)
                .byzantine_factory(Box::new(|_, _| Box::new(IdleNode)));
            for v in ValidatorId::all(n) {
                b = b.node(v, Box::new(PingNode::new(v)));
            }
            b.build()
        };
        let mut ev = build(AdvanceMode::EventDriven);
        let mut tl = build(AdvanceMode::TickLoop);
        ev.run_until(Time::new(150));
        tl.run_until(Time::new(150));
        for v in ValidatorId::all(4) {
            if ev.node(v).as_any().downcast_ref::<PingNode>().is_some() {
                assert_eq!(ping_received(&ev, v), ping_received(&tl, v), "{v} diverged");
            }
        }
        assert_eq!(ev.is_byzantine(ValidatorId::new(3)), tl.is_byzantine(ValidatorId::new(3)));
        assert_eq!(ev.metrics().buffered, tl.metrics().buffered);
        assert_eq!(
            ev.effective_participation().transitions(ValidatorId::new(2)),
            tl.effective_participation().transitions(ValidatorId::new(2))
        );
    }

    #[test]
    fn null_controller_costs_phases_not_horizon() {
        // Sparse horizon: Δ=1000, everything delivered within the first
        // 2Δ, then silence. The event-driven engine must only execute
        // the phase boundaries plus the handful of event ticks — not the
        // million-tick horizon.
        let delta = 1000u64;
        let horizon = 1_000_000u64;
        let cfg = SimConfig::new(3).with_seed(5).with_delta(tobsvd_types::Delta::new(delta));
        let mut b = Simulation::builder(cfg);
        for v in ValidatorId::all(3) {
            b = b.node(v, Box::new(PingNode::new(v)));
        }
        let mut sim = b.build();
        sim.run_until(Time::new(horizon));
        assert_eq!(sim.metrics().ticks, horizon + 1);
        let phases = horizon / delta + 1;
        assert!(
            sim.metrics().executed_ticks <= phases + 20,
            "executed {} ticks; expected about {} phase boundaries",
            sim.metrics().executed_ticks,
            phases
        );
        // Nothing was lost to the skipping.
        for v in ValidatorId::all(3) {
            assert_eq!(ping_received(&sim, v).len(), 3);
        }
    }

    #[test]
    fn time_triggered_controller_fires_via_next_wakeup() {
        // A controller that acts at one quiet, off-phase tick and
        // declares it through next_wakeup. The event-driven engine must
        // execute that tick even though no event or phase falls on it.
        struct SleepAt {
            at: Time,
            done: bool,
        }
        impl AdversaryController for SleepAt {
            fn on_tick(&mut self, view: &TickView<'_>) -> Vec<AdversaryCommand> {
                if view.time == self.at && !self.done {
                    self.done = true;
                    vec![AdversaryCommand::Sleep(ValidatorId::new(0))]
                } else {
                    Vec::new()
                }
            }
            fn next_wakeup(&mut self, from: Time) -> Option<Time> {
                if self.done {
                    None
                } else {
                    Some(self.at.max(from))
                }
            }
        }
        let delta = 100u64;
        let at = Time::new(157); // off the Δ grid, no deliveries pending
        let cfg = SimConfig::new(2).with_seed(6).with_delta(tobsvd_types::Delta::new(delta));
        let mut b = Simulation::builder(cfg).controller(Box::new(SleepAt { at, done: false }));
        for v in ValidatorId::all(2) {
            b = b.node(v, Box::new(PingNode::new(v)));
        }
        let mut sim = b.build();
        sim.run_until(Time::new(1000));
        assert!(!sim.is_awake(ValidatorId::new(0)));
        let eff = sim.effective_participation();
        assert!(eff.is_awake(ValidatorId::new(0), at));
        assert!(!eff.is_awake(ValidatorId::new(0), Time::new(200)));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = build_ping_sim(5, 42);
        let mut b = build_ping_sim(5, 42);
        a.run_until(Time::new(30));
        b.run_until(Time::new(30));
        for v in ValidatorId::all(5) {
            assert_eq!(ping_received(&a, v), ping_received(&b, v));
        }
        let mut c = build_ping_sim(5, 43);
        c.run_until(Time::new(30));
        let same: bool = ValidatorId::all(5)
            .all(|v| ping_received(&a, v) == ping_received(&c, v));
        assert!(!same, "different seeds should give different delivery times");
    }

    /// Decides a fixed sequence of logs at successive phase boundaries
    /// (one per phase), for forcing transient forks through the engine.
    struct ScriptedDecider {
        script: Vec<Log>,
        next: usize,
    }

    impl Node for ScriptedDecider {
        fn on_phase(&mut self, ctx: &mut Context) {
            if let Some(log) = self.script.get(self.next) {
                self.next += 1;
                ctx.decide(*log);
            }
        }
        fn on_message(&mut self, _m: &SignedMessage, _ctx: &mut Context) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn invariants_run_on_every_decision_and_record_violations() {
        let cfg = SimConfig::new(2).with_seed(1);
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, ValidatorId::new(0), View::new(1));
        let b = g.extend_empty(&store, ValidatorId::new(1), View::new(1));
        let c = a.extend_empty(&store, ValidatorId::new(0), View::new(2));
        let mut sim = Simulation::builder(cfg)
            .with_store(store)
            .node(ValidatorId::new(0), Box::new(ScriptedDecider { script: vec![a, c], next: 0 }))
            // v1 transiently forks to b, then reconverges onto c.
            .node(ValidatorId::new(1), Box::new(ScriptedDecider { script: vec![b, c], next: 0 }))
            .invariant(Box::new(crate::invariant::PrefixAgreement::new()))
            .invariant(Box::new(crate::invariant::DecisionMonotonicity::new()))
            .invariant(Box::new(crate::invariant::NoConflictingAnchor::new()))
            .build();
        sim.run_until(Time::new(20));
        sim.check_end_invariants();
        let violations = sim.invariant_violations();
        // All three independent invariants catch the a/b fork window.
        for name in ["prefix-agreement", "decision-monotonicity", "no-conflicting-anchor"] {
            assert!(
                violations.iter().any(|v| v.invariant == name),
                "{name} missing from {violations:?}"
            );
        }
        let report = sim.report();
        assert!(!report.safe, "observer must agree with the invariants");
        assert!(!report.invariant_violations.is_empty());
    }

    #[test]
    fn mid_run_report_does_not_pollute_final_end_checks() {
        /// Fails at_end until at least one decision was recorded.
        struct NeedsDecision;
        impl crate::invariant::Invariant for NeedsDecision {
            fn name(&self) -> &'static str {
                "needs-decision"
            }
            fn on_decision(
                &mut self,
                _ev: &crate::invariant::DecisionEvent<'_>,
            ) -> Result<(), String> {
                Ok(())
            }
            fn at_end(
                &mut self,
                observer: &DecisionObserver,
                _store: &BlockStore,
                now: Time,
            ) -> Result<(), String> {
                if observer.history().is_empty() {
                    Err(format!("no decision by t={now}"))
                } else {
                    Ok(())
                }
            }
        }
        let cfg = SimConfig::new(1).with_seed(3);
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, ValidatorId::new(0), View::new(1));
        let mut sim = Simulation::builder(cfg)
            .with_store(store)
            .node(ValidatorId::new(0), Box::new(ScriptedDecider { script: vec![a], next: 0 }))
            .invariant(Box::new(NeedsDecision))
            .build();
        // A t=0 snapshot legitimately reports the end-check violation…
        let early = sim.report();
        assert_eq!(early.invariant_violations.len(), 1);
        // …but it is recomputed, not latched: after the run decides,
        // the final report is clean.
        sim.run_until(Time::new(10));
        let fin = sim.report();
        assert!(fin.invariant_violations.is_empty(), "{:?}", fin.invariant_violations);
    }

    #[test]
    fn clean_run_has_no_invariant_violations() {
        let cfg = SimConfig::new(2).with_seed(2);
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, ValidatorId::new(0), View::new(1));
        let c = a.extend_empty(&store, ValidatorId::new(0), View::new(2));
        let mut sim = Simulation::builder(cfg)
            .with_store(store)
            .node(ValidatorId::new(0), Box::new(ScriptedDecider { script: vec![a, c], next: 0 }))
            .node(ValidatorId::new(1), Box::new(ScriptedDecider { script: vec![a, c], next: 0 }))
            .invariant(Box::new(crate::invariant::PrefixAgreement::new()))
            .invariant(Box::new(crate::invariant::NoConflictingAnchor::new()))
            .build();
        sim.run_until(Time::new(20));
        sim.check_end_invariants();
        assert!(sim.invariant_violations().is_empty());
        let report = sim.report();
        report.assert_safety();
        report.assert_invariants();
    }

    #[test]
    fn assert_safety_catches_transient_fork_even_in_clean_looking_report() {
        // Regression for the strengthened assert_safety: a report whose
        // *final* transcripts agree (and whose `safe` flag claims
        // innocence, as a buggy observer would) must still be rejected,
        // because the decision history shows an intermediate fork.
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, ValidatorId::new(0), View::new(1));
        let b = g.extend_empty(&store, ValidatorId::new(1), View::new(1));
        let c = a.extend_empty(&store, ValidatorId::new(0), View::new(2));
        let fork_then_converge = vec![
            DecisionRecord { validator: ValidatorId::new(0), at: Time::new(8), log: a },
            DecisionRecord { validator: ValidatorId::new(1), at: Time::new(8), log: b },
            DecisionRecord { validator: ValidatorId::new(0), at: Time::new(16), log: c },
            DecisionRecord { validator: ValidatorId::new(1), at: Time::new(16), log: c },
        ];
        let report = SimReport {
            final_time: Time::new(17),
            metrics: Metrics::new(),
            safe: true, // the lie the history check must expose
            violations: Vec::new(),
            longest_decided: Some(c),
            latest_decisions: fork_then_converge[2..].to_vec(),
            confirmed: Vec::new(),
            decisions: fork_then_converge,
            invariant_violations: Vec::new(),
            admission: AdmissionStats::default(),
            store,
        };
        let pairs = report.prefix_agreement_violations();
        assert_eq!(pairs.len(), 1, "exactly the b-vs-c conflict: {pairs:?}");
        assert_eq!(pairs[0].1.log, b);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| report.assert_safety()));
        assert!(caught.is_err(), "assert_safety must reject the transient fork");
    }

    #[test]
    fn decisions_flow_to_observer() {
        struct DecideOnce {
            done: bool,
        }
        impl Node for DecideOnce {
            fn on_phase(&mut self, ctx: &mut Context) {
                if !self.done {
                    self.done = true;
                    let g = Log::genesis(&ctx.store);
                    ctx.decide(g);
                }
            }
            fn on_message(&mut self, _m: &SignedMessage, _ctx: &mut Context) {}
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let cfg = SimConfig::new(1).with_seed(1);
        let mut sim = Simulation::builder(cfg)
            .node(ValidatorId::new(0), Box::new(DecideOnce { done: false }))
            .build();
        sim.run_until(Time::new(5));
        let report = sim.report();
        assert!(report.safe);
        assert_eq!(report.metrics.decisions, 1);
        assert_eq!(report.max_decided_len(), 1);
        report.assert_safety();
    }
}
