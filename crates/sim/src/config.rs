//! Simulation configuration.

use serde::{Deserialize, Serialize};
use tobsvd_types::Delta;

/// Static parameters of a simulation run.
///
/// ```
/// use tobsvd_sim::SimConfig;
/// let cfg = SimConfig::new(16).with_seed(42);
/// assert_eq!(cfg.n, 16);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of validators `n`.
    pub n: usize,
    /// The network delay bound Δ, in ticks.
    pub delta: Delta,
    /// RNG seed; every run with the same seed and inputs is bit-identical.
    pub seed: u64,
}

impl SimConfig {
    /// Configuration for `n` validators with default Δ and seed 0.
    pub fn new(n: usize) -> Self {
        SimConfig { n, delta: Delta::default(), seed: 0 }
    }

    /// Sets Δ.
    pub fn with_delta(mut self, delta: Delta) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = SimConfig::new(8).with_delta(Delta::new(4)).with_seed(9);
        assert_eq!(cfg.n, 8);
        assert_eq!(cfg.delta.ticks(), 4);
        assert_eq!(cfg.seed, 9);
    }
}
