//! State-corruption fault vocabulary for the self-stabilization plane.
//!
//! The checker's other levers corrupt the *environment* — schedules,
//! delays, message loss, Byzantine casts. A [`StateFault`] corrupts a
//! validator's *state*: its decided log, durable-persistence counters,
//! verified-id cache, delta-sync knowledge, or (through the storage
//! plane's fault hooks) the persisted WAL/snapshot image a later
//! restart will recover from. Faults are delivered to the running node
//! through [`crate::Node::on_state_fault`] at a scheduled tick; the
//! node applies the mutation to its own fields and the stabilization
//! layer (per-phase local audits + re-sync via the fetch plane) is
//! expected to detect and repair the damage without panicking.
//!
//! The space is canonical and enumerable: every fault is one of
//! [`StateFault::KINDS`] kinds plus a single `u64` parameter, so
//! deterministic samplers ([`StateFault::from_draws`]) and serializers
//! ([`StateFault::tag`] / [`StateFault::from_parts`]) need exactly two
//! words per fault.

/// One scheduled corruption of a validator's in-memory or on-disk
/// state.
///
/// The first five kinds target volatile state and apply to any node;
/// the last three target the durable image behind a node's storage
/// handle (no-ops for nodes without one) and only become observable
/// when a later crash/restart recovers from that image.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StateFault {
    /// Reset the decided log to genesis: the validator forgets every
    /// decision it ever reported (its durable counters now overshoot
    /// the log — exactly the torn-counter shape local audits catch).
    DecidedReset,
    /// Skew the durability counters (persisted length, last snapshot
    /// length) upward by `skew`, breaking their monotone relation to
    /// the decided log.
    CounterSkew {
        /// Amount added (saturating) to each counter.
        skew: u64,
    },
    /// Insert garbage digests derived from `seed` into the verified-id
    /// set, breaking the `verified ⊆ seen` containment.
    VerifiedPoison {
        /// Seed for the deterministic garbage digests.
        seed: u64,
    },
    /// Insert garbage block ids derived from `seed` into the delta-sync
    /// knowledge set, breaking the chain-known invariant.
    SyncPoison {
        /// Seed for the deterministic garbage ids.
        seed: u64,
    },
    /// Erase all block knowledge (back to genesis-only), parked
    /// messages and in-flight fetches — total delta-sync amnesia.
    SyncAmnesia,
    /// Flip one bit of the durable snapshot image (out-of-range bytes
    /// no-op).
    SnapshotBitFlip {
        /// Byte offset into the snapshot image.
        byte: u64,
        /// Bit position (taken modulo 8).
        bit: u8,
    },
    /// Flip one bit of the durable WAL image (out-of-range bytes
    /// no-op).
    WalBitFlip {
        /// Byte offset into the WAL image.
        byte: u64,
        /// Bit position (taken modulo 8).
        bit: u8,
    },
    /// Drop the last `bytes` bytes of the durable WAL (a torn tail).
    WalTear {
        /// Number of tail bytes torn off.
        bytes: u64,
    },
}

impl StateFault {
    /// Number of fault kinds targeting volatile (in-memory) state —
    /// the prefix of the kind space that is meaningful for any node,
    /// with or without a storage plane.
    pub const MEMORY_KINDS: u64 = 5;

    /// Total number of fault kinds (memory + durable-image kinds).
    pub const KINDS: u64 = 8;

    /// Deterministically maps two sampler draws onto the fault space:
    /// `kind` selects the variant (modulo the requested bound — pass
    /// [`StateFault::MEMORY_KINDS`] draws to stay in volatile state),
    /// `param` fills the variant's parameter. Total: every fault is
    /// reachable, and equal draws always produce equal faults.
    pub fn from_draws(kind: u64, param: u64) -> StateFault {
        match kind % Self::KINDS {
            0 => StateFault::DecidedReset,
            1 => StateFault::CounterSkew { skew: (param % 1024).saturating_add(1) },
            2 => StateFault::VerifiedPoison { seed: param },
            3 => StateFault::SyncPoison { seed: param },
            4 => StateFault::SyncAmnesia,
            5 => StateFault::SnapshotBitFlip { byte: (param >> 3) % 4096, bit: (param & 7) as u8 },
            6 => StateFault::WalBitFlip { byte: (param >> 3) % 4096, bit: (param & 7) as u8 },
            _ => StateFault::WalTear { bytes: (param % 64).saturating_add(1) },
        }
    }

    /// Canonical string tag (serialization vocabulary).
    pub fn tag(&self) -> &'static str {
        match self {
            StateFault::DecidedReset => "decided-reset",
            StateFault::CounterSkew { .. } => "counter-skew",
            StateFault::VerifiedPoison { .. } => "verified-poison",
            StateFault::SyncPoison { .. } => "sync-poison",
            StateFault::SyncAmnesia => "sync-amnesia",
            StateFault::SnapshotBitFlip { .. } => "snapshot-bit-flip",
            StateFault::WalBitFlip { .. } => "wal-bit-flip",
            StateFault::WalTear { .. } => "wal-tear",
        }
    }

    /// The fault's two serialized parameters (unused slots are 0).
    pub fn params(&self) -> (u64, u64) {
        match *self {
            StateFault::DecidedReset | StateFault::SyncAmnesia => (0, 0),
            StateFault::CounterSkew { skew } => (skew, 0),
            StateFault::VerifiedPoison { seed } => (seed, 0),
            StateFault::SyncPoison { seed } => (seed, 0),
            StateFault::SnapshotBitFlip { byte, bit } => (byte, u64::from(bit)),
            StateFault::WalBitFlip { byte, bit } => (byte, u64::from(bit)),
            StateFault::WalTear { bytes } => (bytes, 0),
        }
    }

    /// Reconstructs a fault from its tag and parameters; `None` for an
    /// unknown tag (forward compatibility for artifact parsers).
    pub fn from_parts(tag: &str, a: u64, b: u64) -> Option<StateFault> {
        Some(match tag {
            "decided-reset" => StateFault::DecidedReset,
            "counter-skew" => StateFault::CounterSkew { skew: a },
            "verified-poison" => StateFault::VerifiedPoison { seed: a },
            "sync-poison" => StateFault::SyncPoison { seed: a },
            "sync-amnesia" => StateFault::SyncAmnesia,
            "snapshot-bit-flip" => StateFault::SnapshotBitFlip { byte: a, bit: (b % 8) as u8 },
            "wal-bit-flip" => StateFault::WalBitFlip { byte: a, bit: (b % 8) as u8 },
            "wal-tear" => StateFault::WalTear { bytes: a },
            _ => return None,
        })
    }
}

/// Deterministic garbage bytes for poisoning faults: a splitmix64
/// stream keyed by `(seed, lane)`, so the same fault always injects the
/// same junk (replayability) while distinct lanes stay distinct.
pub fn garbage_bytes(seed: u64, lane: u64) -> [u8; 32] {
    let mut state = seed ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03;
    let mut out = [0u8; 32];
    for chunk in out.chunks_exact_mut(8) {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        chunk.copy_from_slice(&z.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_is_reachable_and_round_trips() {
        for kind in 0..StateFault::KINDS {
            for param in [0u64, 1, 7, 63, 0x1234_5678_9abc_def0, u64::MAX] {
                let fault = StateFault::from_draws(kind, param);
                let (a, b) = fault.params();
                let back = StateFault::from_parts(fault.tag(), a, b)
                    .expect("canonical tag must parse");
                assert_eq!(back, fault, "kind {kind} param {param}");
            }
        }
        assert!(StateFault::from_parts("no-such-fault", 0, 0).is_none());
    }

    #[test]
    fn memory_kind_prefix_stays_volatile() {
        for kind in 0..StateFault::MEMORY_KINDS {
            let fault = StateFault::from_draws(kind, 99);
            assert!(
                !matches!(
                    fault,
                    StateFault::SnapshotBitFlip { .. }
                        | StateFault::WalBitFlip { .. }
                        | StateFault::WalTear { .. }
                ),
                "kind {kind} must target volatile state, got {fault:?}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(StateFault::from_draws(3, 42), StateFault::from_draws(3, 42));
        assert_ne!(garbage_bytes(1, 0), garbage_bytes(1, 1));
        assert_eq!(garbage_bytes(7, 3), garbage_bytes(7, 3));
    }
}
