//! Decision observation: online Safety checking, per-transaction
//! confirmation times, per-validator decided logs.
//!
//! Safety (paper §3.2): "If two honest validators deliver logs Λ₁ and
//! Λ₂, then Λ₁ and Λ₂ are compatible." The observer maintains the
//! longest decided log as an anchor; every new decision must be
//! compatible with it. Because compatibility with a common extension
//! nests prefixes, all accepted decisions are pairwise compatible, and
//! any conflicting decision is caught the moment it is reported.

use std::collections::BTreeMap;

use tobsvd_types::{BlockStore, Log, Time, TxId, ValidatorId};

use crate::mempool::Mempool;

/// One decision event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// The deciding validator.
    pub validator: ValidatorId,
    /// When it decided.
    pub at: Time,
    /// The decided log.
    pub log: Log,
}

/// A detected Safety violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SafetyViolation {
    /// The earlier (anchor) decision.
    pub anchor: DecisionRecord,
    /// The conflicting decision.
    pub conflicting: DecisionRecord,
}

/// A transaction confirmation: submission → first decision including it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfirmedTx {
    /// The transaction id.
    pub tx: TxId,
    /// Submission time (from the mempool).
    pub submitted_at: Time,
    /// First time any honest validator decided a log containing it.
    pub confirmed_at: Time,
}

impl ConfirmedTx {
    /// Confirmation latency in ticks.
    pub fn latency(&self) -> u64 {
        self.confirmed_at - self.submitted_at
    }
}

/// Observes decisions from all honest validators in a run.
#[derive(Debug)]
pub struct DecisionObserver {
    store: BlockStore,
    /// Longest decided log so far (safety anchor) with its record.
    anchor: Option<DecisionRecord>,
    /// Latest decision per validator.
    latest: BTreeMap<ValidatorId, DecisionRecord>,
    /// All decisions in order.
    history: Vec<DecisionRecord>,
    /// Violations found.
    violations: Vec<SafetyViolation>,
    /// Tx confirmations in anchor-extension order.
    confirmed: Vec<ConfirmedTx>,
    /// Length of the anchor prefix whose txs have been confirmed.
    confirmed_len: u64,
}

impl DecisionObserver {
    /// Creates an observer over the shared store.
    pub fn new(store: BlockStore) -> Self {
        DecisionObserver {
            store,
            anchor: None,
            latest: BTreeMap::new(),
            history: Vec::new(),
            violations: Vec::new(),
            confirmed: Vec::new(),
            confirmed_len: 1, // genesis carries no txs
        }
    }

    /// Records a decision by an honest validator.
    pub fn record(&mut self, validator: ValidatorId, at: Time, log: Log, mempool: &Mempool) {
        let rec = DecisionRecord { validator, at, log };
        self.history.push(rec);

        // Per-validator monotonicity: a validator's decisions must extend
        // its previous ones; a regression is also a (local) violation.
        if let Some(prev) = self.latest.get(&validator) {
            if !prev.log.compatible(&log, &self.store) {
                self.violations.push(SafetyViolation { anchor: *prev, conflicting: rec });
            }
        }
        self.latest.insert(validator, rec);

        match self.anchor {
            None => {
                self.anchor = Some(rec);
                self.confirm_new_blocks(rec, mempool);
            }
            Some(anchor) => {
                if !anchor.log.compatible(&log, &self.store) {
                    self.violations.push(SafetyViolation { anchor, conflicting: rec });
                } else if log.len() > anchor.log.len() {
                    self.anchor = Some(rec);
                    self.confirm_new_blocks(rec, mempool);
                }
            }
        }
    }

    fn confirm_new_blocks(&mut self, rec: DecisionRecord, mempool: &Mempool) {
        // Confirm txs in anchor blocks beyond the previously confirmed
        // prefix. The anchor only ever extends, so each block is
        // processed once.
        if rec.log.len() <= self.confirmed_len {
            return;
        }
        if let Some(ids) = self.store.chain_range(rec.log.tip(), self.confirmed_len) {
            for id in ids {
                if let Some(block) = self.store.get(id) {
                    for tx in block.txs() {
                        let submitted_at =
                            mempool.submitted_at(tx.id()).unwrap_or(rec.at);
                        self.confirmed.push(ConfirmedTx {
                            tx: tx.id(),
                            submitted_at,
                            confirmed_at: rec.at,
                        });
                    }
                }
            }
        }
        self.confirmed_len = rec.log.len();
    }

    /// All recorded violations (empty in a safe execution).
    pub fn violations(&self) -> &[SafetyViolation] {
        &self.violations
    }

    /// Whether the execution was safe so far.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// The longest decided log, if any decision happened.
    pub fn longest_decided(&self) -> Option<Log> {
        self.anchor.map(|a| a.log)
    }

    /// Latest decision per validator.
    pub fn latest_decisions(&self) -> &BTreeMap<ValidatorId, DecisionRecord> {
        &self.latest
    }

    /// Full decision history in arrival order.
    pub fn history(&self) -> &[DecisionRecord] {
        &self.history
    }

    /// Confirmed transactions in confirmation order.
    pub fn confirmed(&self) -> &[ConfirmedTx] {
        &self.confirmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_types::{Transaction, View};

    fn ids(n: u32) -> Vec<ValidatorId> {
        (0..n).map(ValidatorId::new).collect()
    }

    #[test]
    fn compatible_decisions_are_safe() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let mut obs = DecisionObserver::new(store.clone());
        let v = ids(2);
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, v[0], View::new(1));
        let b = a.extend_empty(&store, v[1], View::new(2));
        obs.record(v[0], Time::new(10), a, &pool);
        obs.record(v[1], Time::new(12), b, &pool);
        obs.record(v[0], Time::new(14), a, &pool); // old but compatible
        assert!(obs.is_safe());
        assert_eq!(obs.longest_decided(), Some(b));
    }

    #[test]
    fn conflicting_decisions_flagged() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let mut obs = DecisionObserver::new(store.clone());
        let v = ids(2);
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, v[0], View::new(1));
        let b = g.extend_empty(&store, v[1], View::new(1));
        obs.record(v[0], Time::new(10), a, &pool);
        obs.record(v[1], Time::new(10), b, &pool);
        assert!(!obs.is_safe());
        assert_eq!(obs.violations().len(), 1);
    }

    #[test]
    fn per_validator_regression_flagged() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let mut obs = DecisionObserver::new(store.clone());
        let v = ids(1);
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, v[0], View::new(1));
        let b = g.extend_empty(&store, ValidatorId::new(5), View::new(1));
        obs.record(v[0], Time::new(10), a, &pool);
        obs.record(v[0], Time::new(14), b, &pool); // conflicts with own earlier decision
        assert!(!obs.is_safe());
    }

    #[test]
    fn tx_confirmation_times() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let tx = Transaction::new(vec![7]);
        pool.submit(tx.clone(), Time::new(2));
        let mut obs = DecisionObserver::new(store.clone());
        let g = Log::genesis(&store);
        let a = g.extend(&store, ValidatorId::new(0), View::new(1), vec![tx.clone()]);
        obs.record(ValidatorId::new(0), Time::new(20), a, &pool);
        // A later decision of the same log must not double-confirm.
        obs.record(ValidatorId::new(1), Time::new(24), a, &pool);
        assert_eq!(obs.confirmed().len(), 1);
        let c = obs.confirmed()[0];
        assert_eq!(c.tx, tx.id());
        assert_eq!(c.latency(), 18);
    }
}
