//! Deterministic open-loop client workload generator.
//!
//! Models a large population of distinct users (millions are fine — the
//! population is never materialized; users exist only as sampled ranks)
//! submitting transactions *open-loop*: arrivals occur at a configured
//! rate regardless of how the system is keeping up, which is what makes
//! saturation and backpressure observable at all. Closed-loop drivers
//! (wait-for-ack-then-send) self-throttle and hide overload — the
//! classic coordinated-omission trap.
//!
//! Per-user activity follows a Zipf distribution (a few hot users send
//! most traffic, a long tail sends rarely), sampled in O(1) via the
//! bounded-Pareto inverse CDF, and the aggregate rate is modulated by
//! periodic bursts. Everything is driven by one dedicated
//! [`rand::StdRng`] stream, so a given `(spec, seed)` pair yields a
//! byte-identical arrival schedule on every run — and, because the
//! stream is the generator's own, wiring a workload into an existing
//! simulation perturbs none of the simulation's other RNG streams.
//!
//! The same generator drives the sim engine (via
//! `TxWorkload::OpenLoop`) and the TCP runtime's ingestion bench, so
//! "the workload" means the same bytes in both worlds.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tobsvd_types::{Time, Transaction};

/// Parameters of an open-loop workload. All-integer (fixed-point in
/// milli-units where fractional values are useful) so specs are `Copy`,
/// `Eq` and hashable — sweep matrices and scenario labels need that.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpenLoopSpec {
    /// Distinct users in the population (sampled, never materialized).
    pub users: u64,
    /// Zipf exponent `s` ×1000 (1000 ⇒ s = 1.0; 0 ⇒ uniform).
    pub zipf_milli: u64,
    /// Mean arrivals per tick ×1000 (500 ⇒ one tx every other tick).
    pub rate_milli: u64,
    /// Ticks between burst onsets (0 disables bursts).
    pub burst_every: u64,
    /// Burst duration in ticks.
    pub burst_len: u64,
    /// Rate multiplier while a burst is active.
    pub burst_mult: u64,
    /// Transaction payload size in bytes (min 16: user + nonce header).
    pub tx_bytes: u32,
    /// Fee bids are drawn uniformly from `1..=fee_levels` (0 ⇒ all 1).
    pub fee_levels: u64,
}

impl Default for OpenLoopSpec {
    /// A million-user population with a mildly skewed (s = 0.9) Zipf
    /// profile, 2 tx/tick steady state and 8× bursts every 200 ticks.
    fn default() -> Self {
        OpenLoopSpec {
            users: 1_000_000,
            zipf_milli: 900,
            rate_milli: 2_000,
            burst_every: 200,
            burst_len: 20,
            burst_mult: 8,
            tx_bytes: 64,
            fee_levels: 16,
        }
    }
}

impl OpenLoopSpec {
    /// Compact human-readable label for sweep rows and scenario names.
    pub fn label(&self) -> String {
        format!(
            "open{}u-z{}-r{}{}",
            self.users,
            self.zipf_milli,
            self.rate_milli,
            if self.burst_every > 0 {
                format!("-b{}x{}", self.burst_every, self.burst_mult)
            } else {
                String::new()
            }
        )
    }

    /// Arrival rate (milli-tx per tick) in effect at `tick`, accounting
    /// for bursts.
    pub fn rate_milli_at(&self, tick: u64) -> u64 {
        let bursting = self.burst_every > 0
            && self.burst_len > 0
            && (tick % self.burst_every) < self.burst_len;
        if bursting {
            self.rate_milli.saturating_mul(self.burst_mult.max(1))
        } else {
            self.rate_milli
        }
    }
}

/// One generated client submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Submission tick.
    pub at: Time,
    /// Originating user (0-based rank; low ranks are the hot users).
    pub user: u64,
    /// Fee bid.
    pub fee: u64,
    /// The transaction (payload encodes user + per-user nonce, so every
    /// arrival is a distinct, content-addressed transaction).
    pub tx: Transaction,
}

/// Deterministic open-loop arrival generator.
///
/// ```
/// use tobsvd_sim::{OpenLoopSpec, OpenLoopWorkload};
/// use tobsvd_types::Time;
///
/// let spec = OpenLoopSpec { rate_milli: 1_500, burst_every: 0, ..OpenLoopSpec::default() };
/// let mut a = OpenLoopWorkload::new(spec, 42);
/// let mut b = OpenLoopWorkload::new(spec, 42);
/// let xs: Vec<_> = (0..10).flat_map(|t| a.tick(Time::new(t))).collect();
/// let ys: Vec<_> = (0..10).flat_map(|t| b.tick(Time::new(t))).collect();
/// assert_eq!(xs, ys);                // same seed ⇒ same schedule
/// assert_eq!(xs.len(), 15);          // 1.5 tx/tick over 10 ticks
/// ```
#[derive(Clone, Debug)]
pub struct OpenLoopWorkload {
    spec: OpenLoopSpec,
    rng: StdRng,
    /// Fractional-arrival accumulator in milli-units: arrival *counts*
    /// per tick are a pure function of (spec, tick), independent of the
    /// RNG, which only picks users and fees.
    carry_milli: u64,
    /// Per-user nonces (only touched users occupy memory).
    nonces: BTreeMap<u64, u64>,
    generated: u64,
}

impl OpenLoopWorkload {
    /// Creates a generator over its own dedicated RNG stream.
    pub fn new(spec: OpenLoopSpec, seed: u64) -> Self {
        OpenLoopWorkload {
            spec,
            rng: StdRng::seed_from_u64(seed),
            carry_milli: 0,
            nonces: BTreeMap::new(),
            generated: 0,
        }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> OpenLoopSpec {
        self.spec
    }

    /// Total arrivals generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Generates the arrivals for tick `now` (possibly none).
    pub fn tick(&mut self, now: Time) -> Vec<Arrival> {
        self.carry_milli += self.spec.rate_milli_at(now.ticks());
        let count = self.carry_milli / 1_000;
        self.carry_milli %= 1_000;
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            out.push(self.arrival(now));
        }
        out
    }

    fn arrival(&mut self, now: Time) -> Arrival {
        let user = self.sample_user();
        let fee = if self.spec.fee_levels > 1 {
            self.rng.gen_range(1..=self.spec.fee_levels)
        } else {
            1
        };
        let nonce = self.nonces.entry(user).or_insert(0);
        *nonce += 1;
        let tx = build_tx(user, *nonce, self.spec.tx_bytes);
        self.generated += 1;
        Arrival { at: now, user, fee, tx }
    }

    /// Samples a user rank from a Zipf(s) profile over `users` ranks via
    /// the bounded-Pareto inverse CDF — O(1) per sample, no per-user
    /// state, so million-user populations cost nothing up front.
    fn sample_user(&mut self) -> u64 {
        let n = self.spec.users.max(1) as f64;
        let s = self.spec.zipf_milli as f64 / 1_000.0;
        let u = self.rng.gen::<f64>();
        let x = if (s - 1.0).abs() < 1e-9 {
            // s = 1: inverse of H(x) ≈ ln x / ln N.
            n.powf(u)
        } else {
            // s ≠ 1: inverse of the truncated power-law CDF.
            let t: f64 = 1.0 + u * (n.powf(1.0 - s) - 1.0);
            t.powf(1.0 / (1.0 - s))
        };
        let rank = x.floor() as u64;
        rank.clamp(1, self.spec.users.max(1)) - 1
    }
}

/// Builds the deterministic payload for (user, nonce): an 8+8-byte
/// header zero-padded to `tx_bytes`. Content addressing then gives each
/// (user, nonce) pair a unique, reproducible [`tobsvd_types::TxId`].
fn build_tx(user: u64, nonce: u64, tx_bytes: u32) -> Transaction {
    let len = (tx_bytes as usize).max(16);
    let mut payload = vec![0u8; len];
    payload[..8].copy_from_slice(&user.to_be_bytes());
    payload[8..16].copy_from_slice(&nonce.to_be_bytes());
    Transaction::new(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn flat(spec: OpenLoopSpec, seed: u64, ticks: u64) -> Vec<Arrival> {
        let mut w = OpenLoopWorkload::new(spec, seed);
        (0..ticks).flat_map(|t| w.tick(Time::new(t))).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let spec = OpenLoopSpec::default();
        assert_eq!(flat(spec, 7, 300), flat(spec, 7, 300));
    }

    #[test]
    fn different_seeds_differ() {
        let spec = OpenLoopSpec { burst_every: 0, ..OpenLoopSpec::default() };
        assert_ne!(flat(spec, 7, 100), flat(spec, 8, 100));
    }

    #[test]
    fn arrival_count_matches_rate_exactly() {
        let spec = OpenLoopSpec {
            rate_milli: 1_250,
            burst_every: 0,
            ..OpenLoopSpec::default()
        };
        // Counts are RNG-independent: 1.25 tx/tick × 400 ticks = 500.
        assert_eq!(flat(spec, 1, 400).len(), 500);
        assert_eq!(flat(spec, 999, 400).len(), 500);
    }

    #[test]
    fn bursts_raise_the_rate() {
        let base = OpenLoopSpec {
            rate_milli: 1_000,
            burst_every: 0,
            ..OpenLoopSpec::default()
        };
        let bursty = OpenLoopSpec { burst_every: 50, burst_len: 10, burst_mult: 5, ..base };
        let plain = flat(base, 3, 100).len();
        let burst = flat(bursty, 3, 100).len();
        // 20 of 100 ticks run at 5×: 80×1 + 20×5 = 180 vs 100.
        assert_eq!(plain, 100);
        assert_eq!(burst, 180);
    }

    #[test]
    fn all_arrivals_are_distinct_txs() {
        let spec = OpenLoopSpec {
            users: 10, // tiny population forces nonce reuse pressure
            zipf_milli: 1_000,
            rate_milli: 5_000,
            burst_every: 0,
            ..OpenLoopSpec::default()
        };
        let arrivals = flat(spec, 5, 200);
        let ids: BTreeSet<_> = arrivals.iter().map(|a| a.tx.id()).collect();
        assert_eq!(ids.len(), arrivals.len());
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let spec = OpenLoopSpec {
            users: 1_000_000,
            zipf_milli: 1_100,
            rate_milli: 10_000,
            burst_every: 0,
            ..OpenLoopSpec::default()
        };
        let arrivals = flat(spec, 11, 1_000);
        let hot = arrivals.iter().filter(|a| a.user < 100).count();
        // Under s=1.1 the top-100 of a million users carry a large
        // share; under uniform they would carry ~0.01%.
        assert!(
            hot * 10 > arrivals.len(),
            "expected >10% of traffic from top-100 users, got {hot}/{}",
            arrivals.len()
        );
        // The tail exists too: some arrival from outside the top 10k.
        assert!(arrivals.iter().any(|a| a.user >= 10_000));
    }

    #[test]
    fn uniform_when_zipf_zero() {
        let spec = OpenLoopSpec {
            users: 1_000,
            zipf_milli: 0,
            rate_milli: 20_000,
            burst_every: 0,
            ..OpenLoopSpec::default()
        };
        let arrivals = flat(spec, 13, 500);
        let hot = arrivals.iter().filter(|a| a.user < 10).count();
        // ~1% expected; allow generous slack but rule out Zipf-like mass.
        assert!(hot < arrivals.len() / 20, "uniform sampling looks skewed: {hot}");
    }

    #[test]
    fn fees_span_the_configured_levels() {
        let spec = OpenLoopSpec {
            fee_levels: 4,
            rate_milli: 10_000,
            burst_every: 0,
            ..OpenLoopSpec::default()
        };
        let fees: BTreeSet<u64> = flat(spec, 21, 200).iter().map(|a| a.fee).collect();
        assert_eq!(fees, (1..=4).collect());
    }
}
