//! Message delay policies.
//!
//! The network is synchronous with delay bound Δ: a message sent at `t`
//! must be delivered at some `t' ∈ (t, t+Δ]`. Within that window, delays
//! are adversary-controlled; a [`DelayPolicy`] decides the delay of each
//! individual copy. Adversarial split/targeted policies live in
//! `tobsvd-adversary`; the three canonical policies are here.

use rand::rngs::StdRng;
use rand::Rng;
use tobsvd_types::{Delta, SignedMessage, Time, ValidatorId};

/// Decides per-copy message delays, in ticks within `[1, Δ]`.
pub trait DelayPolicy: Send {
    /// Delay for the copy of `msg` sent by `from` to `to` at time `at`.
    ///
    /// Implementations must return a value in `[1, delta.ticks()]`; the
    /// engine clamps out-of-range values defensively into
    /// `[1, Δ · max_delay_factor]` (factor 1 unless the builder lifted
    /// the synchrony clamp), so a buggy policy returning `0` or
    /// `u64::MAX` cannot produce same-tick or unbounded delivery.
    fn delay(
        &mut self,
        msg: &SignedMessage,
        from: ValidatorId,
        to: ValidatorId,
        at: Time,
        delta: Delta,
        rng: &mut StdRng,
    ) -> u64;
}

/// Per-copy delivery veto, consulted before the delay draw.
///
/// A `DeliveryFilter` models a lossy network adversary: returning
/// `false` suppresses that copy entirely (counted in
/// `Metrics::filtered`), which is *stronger* than anything a
/// [`DelayPolicy`] may do — delays are clamped into the synchrony
/// window, drops step outside the model. The model checker uses filters
/// to attack the delta-sync fetch subprotocol (dropping
/// `BlockRequest`/`BlockResponse` copies in bounded windows) and to
/// verify that fetch retries recover. Self-copies (`from == to`) are
/// never filtered. The default configuration installs no filter.
pub trait DeliveryFilter: Send {
    /// Whether the copy of `msg` from `from` to `to` sent at `at` may
    /// be delivered.
    fn allow(
        &mut self,
        msg: &SignedMessage,
        from: ValidatorId,
        to: ValidatorId,
        at: Time,
    ) -> bool;
}

/// Uniform random delay in `[1, Δ]` — the "benign network" default.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformDelay;

impl DelayPolicy for UniformDelay {
    fn delay(
        &mut self,
        _msg: &SignedMessage,
        _from: ValidatorId,
        _to: ValidatorId,
        _at: Time,
        delta: Delta,
        rng: &mut StdRng,
    ) -> u64 {
        rng.gen_range(1..=delta.ticks())
    }
}

/// Every copy takes exactly Δ — the adversarial worst case allowed by
/// synchrony, and the setting under which the paper's latency numbers
/// (6Δ best case etc.) are tight.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorstCaseDelay;

impl DelayPolicy for WorstCaseDelay {
    fn delay(
        &mut self,
        _msg: &SignedMessage,
        _from: ValidatorId,
        _to: ValidatorId,
        _at: Time,
        _delta: Delta,
        _rng: &mut StdRng,
    ) -> u64 {
        _delta.ticks()
    }
}

/// Every copy arrives on the next tick — instantaneous network.
#[derive(Clone, Copy, Debug, Default)]
pub struct BestCaseDelay;

impl DelayPolicy for BestCaseDelay {
    fn delay(
        &mut self,
        _msg: &SignedMessage,
        _from: ValidatorId,
        _to: ValidatorId,
        _at: Time,
        _delta: Delta,
        _rng: &mut StdRng,
    ) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tobsvd_crypto::Keypair;
    use tobsvd_types::{BlockStore, InstanceId, Log, Payload, SignedMessage};

    fn sample_msg() -> SignedMessage {
        let store = BlockStore::new();
        let v = ValidatorId::new(0);
        let kp = Keypair::from_seed(v.key_seed());
        SignedMessage::sign(&kp, v, Payload::Log { instance: InstanceId(0), log: Log::genesis(&store) })
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = UniformDelay;
        let msg = sample_msg();
        let delta = Delta::new(8);
        for _ in 0..200 {
            let d = p.delay(&msg, ValidatorId::new(0), ValidatorId::new(1), Time::ZERO, delta, &mut rng);
            assert!((1..=8).contains(&d));
        }
    }

    #[test]
    fn worst_case_is_delta() {
        let mut rng = StdRng::seed_from_u64(1);
        let msg = sample_msg();
        let d = WorstCaseDelay.delay(
            &msg,
            ValidatorId::new(0),
            ValidatorId::new(1),
            Time::ZERO,
            Delta::new(8),
            &mut rng,
        );
        assert_eq!(d, 8);
    }

    #[test]
    fn best_case_is_one_tick() {
        let mut rng = StdRng::seed_from_u64(1);
        let msg = sample_msg();
        let d = BestCaseDelay.delay(
            &msg,
            ValidatorId::new(0),
            ValidatorId::new(1),
            Time::ZERO,
            Delta::new(8),
            &mut rng,
        );
        assert_eq!(d, 1);
    }
}
