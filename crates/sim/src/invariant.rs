//! First-class run-time invariants, checked after every decision event.
//!
//! A [`Invariant`] is a predicate over the evolving execution that the
//! engine evaluates *online*: every time an honest validator reports a
//! decision, [`Invariant::on_decision`] runs with the fresh
//! [`DecisionRecord`] and the full [`DecisionObserver`] state; when a
//! run finishes, [`Invariant::at_end`] gets one final look (for bounds
//! that only make sense over a whole horizon, e.g. decision-latency
//! ceilings). A failed check is recorded as an [`InvariantViolation`]
//! and surfaced through `Simulation::invariant_violations` and the
//! `SimReport` — it never panics mid-run, so a model checker can keep
//! exploring and report every violation of a schedule, not just the
//! first.
//!
//! Invariants are installed with `SimulationBuilder::invariant` (or the
//! `TobSimulationBuilder::invariant` passthrough one layer up) and are
//! deliberately *redundant* with the engine's built-in observer checks:
//! the model checker in `tobsvd-check` uses them to cross-validate the
//! observer with independent implementations of the paper's properties:
//!
//! * [`PrefixAgreement`] — Safety (§3.2): every pair of honest
//!   decisions must be compatible, checked against all per-validator
//!   latest decisions at every intermediate decision point.
//! * [`DecisionMonotonicity`] — a validator never decides a log that
//!   conflicts with its own earlier decision (local TOB delivery is
//!   append-only).
//! * [`NoConflictingAnchor`] — an independently-maintained longest
//!   decided anchor that every decision must be compatible with.
//!
//! Latency-style invariants that need protocol-level knowledge (view
//! schedules, good leaders) live in `tobsvd-check`, which is allowed to
//! depend on `tobsvd-core`.

use std::collections::BTreeMap;

use tobsvd_types::{BlockStore, Log, Time, ValidatorId};

use crate::observer::{DecisionObserver, DecisionRecord};

/// A recorded failure of an installed [`Invariant`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// [`Invariant::name`] of the failing invariant.
    pub invariant: &'static str,
    /// Simulation time of the decision (or run end) that failed it.
    pub at: Time,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at t={}: {}", self.invariant, self.at, self.detail)
    }
}

/// Everything an invariant may inspect when a decision lands.
pub struct DecisionEvent<'a> {
    /// The decision that was just recorded (already visible in the
    /// observer's latest/history state).
    pub record: &'a DecisionRecord,
    /// The observer's full view of the run so far.
    pub observer: &'a DecisionObserver,
    /// The shared block store (for log prefix walks).
    pub store: &'a BlockStore,
}

/// An online execution invariant.
///
/// Implementations are stateful (they may carry their own bookkeeping
/// across decisions) and must be deterministic: the model checker
/// replays schedules and expects identical verdicts.
pub trait Invariant: Send {
    /// Stable identifier used in violation reports and reproducers.
    fn name(&self) -> &'static str;

    /// Checks the invariant after a decision event. Return `Err` with a
    /// description to record a violation; the run continues either way.
    fn on_decision(&mut self, ev: &DecisionEvent<'_>) -> Result<(), String>;

    /// A whole-run check (e.g. horizon-wide bounds). May be invoked on
    /// *intermediate* snapshots too — the engine re-evaluates it for
    /// every report and keeps only the latest result — so
    /// implementations must be side-effect-free and give the same
    /// answer for the same observer state. The default does nothing.
    fn at_end(
        &mut self,
        observer: &DecisionObserver,
        store: &BlockStore,
        now: Time,
    ) -> Result<(), String> {
        let _ = (observer, store, now);
        Ok(())
    }
}

/// Safety as pairwise prefix agreement: the new decision must be
/// compatible with every validator's latest decision — checked at every
/// intermediate decision point, so a transient fork window is caught
/// even if the transcripts later reconverge.
#[derive(Debug, Default)]
pub struct PrefixAgreement;

impl PrefixAgreement {
    /// Creates the invariant.
    pub fn new() -> Self {
        PrefixAgreement
    }
}

impl Invariant for PrefixAgreement {
    fn name(&self) -> &'static str {
        "prefix-agreement"
    }

    fn on_decision(&mut self, ev: &DecisionEvent<'_>) -> Result<(), String> {
        // BTreeMap iteration is already validator-id order, which keeps
        // the violation detail deterministic (verdicts are replayed and
        // compared byte-for-byte).
        let latest: Vec<&DecisionRecord> = ev.observer.latest_decisions().values().collect();
        for other in latest {
            if other.validator == ev.record.validator {
                continue;
            }
            if !ev.record.log.compatible(&other.log, ev.store) {
                return Err(format!(
                    "{} decided {} which conflicts with {}'s decision {} (decided at t={})",
                    ev.record.validator, ev.record.log, other.validator, other.log, other.at
                ));
            }
        }
        Ok(())
    }
}

/// Local monotonicity: a validator's decisions never conflict with its
/// own longest earlier decision (deliveries are append-only; a shorter
/// re-announcement must be a prefix of what it already delivered).
#[derive(Debug, Default)]
pub struct DecisionMonotonicity {
    longest: BTreeMap<ValidatorId, Log>,
}

impl DecisionMonotonicity {
    /// Creates the invariant.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Invariant for DecisionMonotonicity {
    fn name(&self) -> &'static str {
        "decision-monotonicity"
    }

    fn on_decision(&mut self, ev: &DecisionEvent<'_>) -> Result<(), String> {
        let v = ev.record.validator;
        let log = ev.record.log;
        if let Some(prev) = self.longest.get(&v) {
            if !prev.compatible(&log, ev.store) {
                return Err(format!(
                    "{v} decided {log} which conflicts with its own earlier decision {prev}"
                ));
            }
            if log.len() <= prev.len() {
                return Ok(());
            }
        }
        self.longest.insert(v, log);
        Ok(())
    }
}

/// An independent re-implementation of the observer's anchor argument:
/// the longest decided log is tracked here from scratch, and every
/// decision must be compatible with it. Redundant with the engine's
/// [`DecisionObserver`] by design — the model checker uses the pair to
/// cross-validate each other.
#[derive(Debug, Default)]
pub struct NoConflictingAnchor {
    anchor: Option<Log>,
}

impl NoConflictingAnchor {
    /// Creates the invariant.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Invariant for NoConflictingAnchor {
    fn name(&self) -> &'static str {
        "no-conflicting-anchor"
    }

    fn on_decision(&mut self, ev: &DecisionEvent<'_>) -> Result<(), String> {
        let log = ev.record.log;
        match self.anchor {
            None => {
                self.anchor = Some(log);
            }
            Some(anchor) => {
                if !anchor.compatible(&log, ev.store) {
                    return Err(format!(
                        "{} decided {} which conflicts with the decided anchor {}",
                        ev.record.validator, log, anchor
                    ));
                }
                if log.len() > anchor.len() {
                    self.anchor = Some(log);
                }
            }
        }
        Ok(())
    }
}

/// The standard cross-validation bundle: every generic invariant in
/// this module, ready to hand to `SimulationBuilder::invariant`.
pub fn standard_invariants() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(PrefixAgreement::new()),
        Box::new(DecisionMonotonicity::new()),
        Box::new(NoConflictingAnchor::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mempool::Mempool;
    use tobsvd_types::View;

    fn store_and_logs() -> (BlockStore, Log, Log, Log) {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, ValidatorId::new(0), View::new(1));
        let b = g.extend_empty(&store, ValidatorId::new(1), View::new(1));
        (store, g, a, b)
    }

    fn drive(
        inv: &mut dyn Invariant,
        observer: &mut DecisionObserver,
        store: &BlockStore,
        v: u32,
        at: u64,
        log: Log,
    ) -> Result<(), String> {
        let pool = Mempool::new();
        let rec = DecisionRecord { validator: ValidatorId::new(v), at: Time::new(at), log };
        observer.record(rec.validator, rec.at, rec.log, &pool);
        inv.on_decision(&DecisionEvent { record: &rec, observer, store })
    }

    #[test]
    fn prefix_agreement_flags_conflicting_pair() {
        let (store, _g, a, b) = store_and_logs();
        let mut obs = DecisionObserver::new(store.clone());
        let mut inv = PrefixAgreement::new();
        assert!(drive(&mut inv, &mut obs, &store, 0, 10, a).is_ok());
        let err = drive(&mut inv, &mut obs, &store, 1, 12, b);
        assert!(err.is_err(), "conflicting sibling must be flagged");
    }

    #[test]
    fn prefix_agreement_accepts_extension() {
        let (store, g, a, _b) = store_and_logs();
        let mut obs = DecisionObserver::new(store.clone());
        let mut inv = PrefixAgreement::new();
        assert!(drive(&mut inv, &mut obs, &store, 0, 10, g).is_ok());
        assert!(drive(&mut inv, &mut obs, &store, 1, 12, a).is_ok());
        let c = a.extend_empty(&store, ValidatorId::new(0), View::new(2));
        assert!(drive(&mut inv, &mut obs, &store, 0, 14, c).is_ok());
    }

    #[test]
    fn monotonicity_flags_own_regression() {
        let (store, _g, a, b) = store_and_logs();
        let mut obs = DecisionObserver::new(store.clone());
        let mut inv = DecisionMonotonicity::new();
        assert!(drive(&mut inv, &mut obs, &store, 0, 10, a).is_ok());
        // Same validator, conflicting branch: local violation even
        // though it's also a global one.
        assert!(drive(&mut inv, &mut obs, &store, 0, 14, b).is_err());
        // A prefix re-announcement is fine.
        let mut inv2 = DecisionMonotonicity::new();
        let c = a.extend_empty(&store, ValidatorId::new(0), View::new(2));
        let mut obs2 = DecisionObserver::new(store.clone());
        assert!(drive(&mut inv2, &mut obs2, &store, 0, 10, c).is_ok());
        assert!(drive(&mut inv2, &mut obs2, &store, 0, 14, a).is_ok());
    }

    #[test]
    fn anchor_invariant_tracks_longest() {
        let (store, _g, a, b) = store_and_logs();
        let mut obs = DecisionObserver::new(store.clone());
        let mut inv = NoConflictingAnchor::new();
        let a2 = a.extend_empty(&store, ValidatorId::new(0), View::new(2));
        assert!(drive(&mut inv, &mut obs, &store, 0, 10, a2).is_ok());
        // Prefix of the anchor: fine.
        assert!(drive(&mut inv, &mut obs, &store, 1, 12, a).is_ok());
        // Conflicting sibling: flagged.
        assert!(drive(&mut inv, &mut obs, &store, 2, 14, b).is_err());
    }

    #[test]
    fn standard_bundle_has_distinct_names() {
        let invs = standard_invariants();
        let names: Vec<&str> = invs.iter().map(|i| i.name()).collect();
        assert_eq!(names.len(), 3);
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
