//! The external transaction pool of §2/§3.2.
//!
//! "Upon submission, transactions are immediately added to a transaction
//! pool from which validators can retrieve and validate them … honest
//! validators batch into any proposed block any valid transaction
//! included in the transaction pool that is not already included in the
//! log that the proposed block is appended to."
//!
//! The pool records submission times so the latency experiments can
//! measure confirmation time = decision time − submission time.
//!
//! Two mechanisms keep memory bounded over million-tick sweeps:
//!
//! * [`Mempool::prune_confirmed`] drops the full records (payloads) of
//!   transactions confirmed in the common decided prefix — the engine
//!   calls it whenever the decision observer's anchor grows. Only the
//!   `TxId → submission time` index survives pruning, so duplicate
//!   suppression and latency lookups keep working.
//! * The per-block inclusion memo is FIFO-capped at
//!   [`Mempool::INCLUSION_MEMO_CAP`] entries and reset to a fresh base
//!   at the decided tip on every prune. The base entry itself is exempt
//!   from eviction, so inclusion walks always stop there: memo entry
//!   count is bounded by the cap, and memoized sets only grow with the
//!   chain *beyond the last decided prefix*, not with the whole chain.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use tobsvd_types::{BlockId, BlockStore, Log, Time, Transaction, TxId};

/// A pooled transaction plus its submission time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxRecord {
    /// The transaction.
    pub tx: Transaction,
    /// When it entered the pool.
    pub submitted_at: Time,
}

#[derive(Debug, Default)]
struct Inner {
    /// Pending pool in submission order; pruned as the decided prefix
    /// advances.
    pool: Vec<TxRecord>,
    /// Submission time of every transaction ever submitted (ids only —
    /// retained after pruning for duplicate suppression and latency
    /// lookups).
    submitted: BTreeMap<TxId, Time>,
    /// Memoized set of tx ids included on the chain ending at each block.
    inclusion: BTreeMap<BlockId, Arc<BTreeSet<TxId>>>,
    /// Memo insertion order, for FIFO eviction.
    inclusion_order: VecDeque<BlockId>,
}

impl Inner {
    fn memoize(&mut self, id: BlockId, set: Arc<BTreeSet<TxId>>) {
        if self.inclusion.insert(id, set).is_none() {
            self.inclusion_order.push_back(id);
        }
        // Evict FIFO from the queue only; the prune base is never queued
        // (see `memoize_base`), so it survives any amount of memo churn —
        // evicting it would silently reopen the walk-to-genesis recompute
        // path the base exists to close.
        while self.inclusion.len() > Mempool::INCLUSION_MEMO_CAP {
            if let Some(old) = self.inclusion_order.pop_front() {
                self.inclusion.remove(&old);
            } else {
                break;
            }
        }
    }

    /// Installs an eviction-exempt memo entry (the post-prune base).
    fn memoize_base(&mut self, id: BlockId, set: Arc<BTreeSet<TxId>>) {
        self.inclusion.insert(id, set);
    }
}

/// Shared transaction pool with submission-time tracking and an
/// inclusion index for efficient "not already included" filtering.
///
/// ```
/// use tobsvd_sim::Mempool;
/// use tobsvd_types::{BlockStore, Log, Time, Transaction};
///
/// let store = BlockStore::new();
/// let pool = Mempool::new();
/// let tx = Transaction::new(b"tx".to_vec());
/// pool.submit(tx.clone(), Time::new(5));
/// let pending = pool.pending_for(&Log::genesis(&store), &store);
/// assert_eq!(pending, vec![tx]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    inner: Arc<Mutex<Inner>>,
}

impl Mempool {
    /// Maximum number of memoized inclusion sets kept at once. Old
    /// entries are evicted FIFO — except the post-prune base entry,
    /// which walks must be able to stop at; evicted blocks are simply
    /// recomputed by walking to the nearest still-memoized ancestor.
    pub const INCLUSION_MEMO_CAP: usize = 1024;

    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a transaction at `now`. Duplicate ids are ignored (the
    /// first submission time wins), including ids whose records were
    /// already pruned after confirmation.
    pub fn submit(&self, tx: Transaction, now: Time) {
        let mut inner = self.inner.lock();
        let id = tx.id();
        if inner.submitted.contains_key(&id) {
            return;
        }
        inner.submitted.insert(id, now);
        inner.pool.push(TxRecord { tx, submitted_at: now });
    }

    /// Submission time of a transaction, if ever submitted (survives
    /// pruning).
    pub fn submitted_at(&self, id: TxId) -> Option<Time> {
        self.inner.lock().submitted.get(&id).copied()
    }

    /// Number of pooled transactions (ever submitted).
    pub fn len(&self) -> usize {
        self.inner.lock().submitted.len()
    }

    /// Number of transactions currently pending (submitted, not yet
    /// pruned as confirmed).
    pub fn pending_len(&self) -> usize {
        self.inner.lock().pool.len()
    }

    /// Number of memoized inclusion sets currently held.
    pub fn inclusion_memo_len(&self) -> usize {
        self.inner.lock().inclusion.len()
    }

    /// Whether the pool has never seen a transaction.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All pooled transactions submitted at or before `now` that are not
    /// already included in `log` — the batch an honest proposer puts in
    /// its next block.
    pub fn pending_for_at(&self, log: &Log, store: &BlockStore, now: Time) -> Vec<Transaction> {
        let included = self.included_set(log.tip(), store);
        let inner = self.inner.lock();
        inner
            .pool
            .iter()
            .filter(|r| r.submitted_at <= now && !included.contains(&r.tx.id()))
            .map(|r| r.tx.clone())
            .collect()
    }

    /// [`Mempool::pending_for_at`] with no submission-time cutoff.
    pub fn pending_for(&self, log: &Log, store: &BlockStore) -> Vec<Transaction> {
        self.pending_for_at(log, store, Time::new(u64::MAX))
    }

    /// Drops the records of every pending transaction included in
    /// `decided` (a log all honest validators' decisions are compatible
    /// with — the engine passes the observer's anchor), and resets the
    /// inclusion memo to an empty base at `decided.tip()`.
    ///
    /// After the reset, memoized sets only track transactions beyond the
    /// pruned prefix. That is sufficient: `pending_for` consults the
    /// memo solely for membership of still-pending ids, and anything in
    /// the pruned prefix has just left the pool for good.
    pub fn prune_confirmed(&self, decided: &Log, store: &BlockStore) {
        let included = self.included_set(decided.tip(), store);
        let mut inner = self.inner.lock();
        inner.pool.retain(|r| !included.contains(&r.tx.id()));
        inner.inclusion.clear();
        inner.inclusion_order.clear();
        inner.memoize_base(decided.tip(), Arc::new(BTreeSet::new()));
    }

    /// The set of tx ids included on the chain ending at `tip`, memoized
    /// per block so repeated queries stay cheap as the chain grows.
    ///
    /// After a [`Mempool::prune_confirmed`] the sets are relative to the
    /// pruned base block (they omit its, already unpoolable, prefix).
    pub fn included_set(&self, tip: BlockId, store: &BlockStore) -> Arc<BTreeSet<TxId>> {
        let mut inner = self.inner.lock();
        if let Some(set) = inner.inclusion.get(&tip) {
            return Arc::clone(set);
        }
        // Walk down to the nearest memoized ancestor, then build back up.
        let mut stack = Vec::new();
        let mut cur = tip;
        let base = loop {
            if let Some(set) = inner.inclusion.get(&cur) {
                break Arc::clone(set);
            }
            let block = match store.get(cur) {
                Some(b) => b,
                None => break Arc::new(BTreeSet::new()),
            };
            stack.push(Arc::clone(&block));
            if block.is_genesis() {
                break Arc::new(BTreeSet::new());
            }
            cur = block.parent();
        };
        let mut acc = base;
        while let Some(block) = stack.pop() {
            let mut set: BTreeSet<TxId> = (*acc).clone();
            set.extend(block.txs().iter().map(|t| t.id()));
            acc = Arc::new(set);
            inner.memoize(block.id(), Arc::clone(&acc));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_types::{ValidatorId, View};

    #[test]
    fn submit_and_query() {
        let pool = Mempool::new();
        let tx = Transaction::new(vec![1]);
        pool.submit(tx.clone(), Time::new(3));
        assert_eq!(pool.submitted_at(tx.id()), Some(Time::new(3)));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.pending_len(), 1);
    }

    #[test]
    fn duplicate_submission_keeps_first_time() {
        let pool = Mempool::new();
        let tx = Transaction::new(vec![1]);
        pool.submit(tx.clone(), Time::new(3));
        pool.submit(tx.clone(), Time::new(9));
        assert_eq!(pool.submitted_at(tx.id()), Some(Time::new(3)));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.pending_len(), 1);
    }

    #[test]
    fn pending_excludes_included() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let t1 = Transaction::new(vec![1]);
        let t2 = Transaction::new(vec![2]);
        pool.submit(t1.clone(), Time::ZERO);
        pool.submit(t2.clone(), Time::ZERO);
        let log = Log::genesis(&store).extend(
            &store,
            ValidatorId::new(0),
            View::new(1),
            vec![t1.clone()],
        );
        assert_eq!(pool.pending_for(&log, &store), vec![t2.clone()]);
        // But t1 still pending relative to genesis.
        assert_eq!(pool.pending_for(&Log::genesis(&store), &store).len(), 2);
    }

    #[test]
    fn pending_respects_submission_cutoff() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let t1 = Transaction::new(vec![1]);
        pool.submit(t1, Time::new(10));
        let g = Log::genesis(&store);
        assert!(pool.pending_for_at(&g, &store, Time::new(9)).is_empty());
        assert_eq!(pool.pending_for_at(&g, &store, Time::new(10)).len(), 1);
    }

    #[test]
    fn inclusion_memoization_consistent_across_extensions() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let txs: Vec<Transaction> = (0..5).map(|i| Transaction::new(vec![i])).collect();
        for tx in &txs {
            pool.submit(tx.clone(), Time::ZERO);
        }
        let mut log = Log::genesis(&store);
        for (i, tx) in txs.iter().enumerate() {
            log = log.extend(&store, ValidatorId::new(0), View::new(i as u64 + 1), vec![tx.clone()]);
            let included = pool.included_set(log.tip(), &store);
            assert_eq!(included.len(), i + 1);
        }
        assert!(pool.pending_for(&log, &store).is_empty());
    }

    #[test]
    fn prune_confirmed_drops_only_decided_txs() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let confirmed = Transaction::new(vec![1]);
        let pending = Transaction::new(vec![2]);
        pool.submit(confirmed.clone(), Time::new(1));
        pool.submit(pending.clone(), Time::new(2));
        let decided = Log::genesis(&store).extend(
            &store,
            ValidatorId::new(0),
            View::new(1),
            vec![confirmed.clone()],
        );
        pool.prune_confirmed(&decided, &store);

        assert_eq!(pool.pending_len(), 1);
        assert_eq!(pool.len(), 2, "len counts ever-submitted txs");
        // The decided tx's submission time survives for latency lookups.
        assert_eq!(pool.submitted_at(confirmed.id()), Some(Time::new(1)));
        // Resubmitting a pruned tx is still suppressed.
        pool.submit(confirmed.clone(), Time::new(50));
        assert_eq!(pool.pending_len(), 1);
        // The pending tx is still proposable on top of the decided log.
        assert_eq!(pool.pending_for(&decided, &store), vec![pending]);
    }

    #[test]
    fn pending_filter_correct_after_prune_and_further_extension() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let a = Transaction::new(vec![1]);
        let b = Transaction::new(vec![2]);
        let c = Transaction::new(vec![3]);
        for tx in [&a, &b, &c] {
            pool.submit(tx.clone(), Time::ZERO);
        }
        let l1 =
            Log::genesis(&store).extend(&store, ValidatorId::new(0), View::new(1), vec![a]);
        pool.prune_confirmed(&l1, &store);
        // A block beyond the pruned base includes b; only c stays pending.
        let l2 = l1.extend(&store, ValidatorId::new(1), View::new(2), vec![b]);
        assert_eq!(pool.pending_for(&l2, &store), vec![c]);
        pool.prune_confirmed(&l2, &store);
        assert_eq!(pool.pending_len(), 1);
    }

    #[test]
    fn inclusion_memo_is_capped() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let mut log = Log::genesis(&store);
        for i in 0..(Mempool::INCLUSION_MEMO_CAP + 50) {
            let tx = Transaction::new(i.to_be_bytes().to_vec());
            pool.submit(tx.clone(), Time::ZERO);
            log = log.extend(&store, ValidatorId::new(0), View::new(i as u64 + 1), vec![tx]);
            let _ = pool.included_set(log.tip(), &store);
        }
        assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);
        // Evicted entries are recomputed correctly on demand.
        let included = pool.included_set(log.tip(), &store);
        assert_eq!(included.len(), Mempool::INCLUSION_MEMO_CAP + 50);
    }

    #[test]
    fn prune_base_survives_memo_churn() {
        // Regression: the post-prune base must be exempt from FIFO
        // eviction. If it were evicted, later walks would fall through
        // to genesis and rebuild *absolute* sets (containing pruned
        // txs) — observable below as tx_a reappearing in the memo.
        let store = BlockStore::new();
        let pool = Mempool::new();
        let tx_a = Transaction::new(vec![0xa]);
        pool.submit(tx_a.clone(), Time::ZERO);
        let base = Log::genesis(&store).extend(
            &store,
            ValidatorId::new(0),
            View::new(1),
            vec![tx_a.clone()],
        );
        pool.prune_confirmed(&base, &store);
        // Churn far past the cap so FIFO eviction runs many times.
        let mut log = base;
        for i in 0..(Mempool::INCLUSION_MEMO_CAP as u64 + 50) {
            log = log.extend_empty(&store, ValidatorId::new(0), View::new(i + 2));
            let _ = pool.included_set(log.tip(), &store);
        }
        assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);
        // A fresh branch off the base still resolves relative to it:
        // the pruned tx must NOT resurface in its inclusion set.
        let tx_b = Transaction::new(vec![0xb]);
        pool.submit(tx_b.clone(), Time::ZERO);
        let side = base.extend(&store, ValidatorId::new(1), View::new(9999), vec![tx_b.clone()]);
        let included = pool.included_set(side.tip(), &store);
        assert!(included.contains(&tx_b.id()));
        assert!(
            !included.contains(&tx_a.id()),
            "base was evicted: walk fell through to genesis and rebuilt an absolute set"
        );
    }

    #[test]
    fn prune_resets_memo_to_single_base() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let tx = Transaction::new(vec![9]);
        pool.submit(tx.clone(), Time::ZERO);
        let mut log = Log::genesis(&store);
        for i in 0..10 {
            log = log.extend_empty(&store, ValidatorId::new(0), View::new(i + 1));
            let _ = pool.included_set(log.tip(), &store);
        }
        assert!(pool.inclusion_memo_len() >= 10);
        pool.prune_confirmed(&log, &store);
        assert_eq!(pool.inclusion_memo_len(), 1);
        // The base is empty and the pending tx still proposable.
        assert_eq!(pool.pending_for(&log, &store), vec![tx]);
    }
}
