//! The external transaction pool of §2/§3.2.
//!
//! "Upon submission, transactions are immediately added to a transaction
//! pool from which validators can retrieve and validate them … honest
//! validators batch into any proposed block any valid transaction
//! included in the transaction pool that is not already included in the
//! log that the proposed block is appended to."
//!
//! The pool records submission times so the latency experiments can
//! measure confirmation time = decision time − submission time.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use tobsvd_types::{BlockId, BlockStore, Log, Time, Transaction, TxId};

/// A pooled transaction plus its submission time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxRecord {
    /// The transaction.
    pub tx: Transaction,
    /// When it entered the pool.
    pub submitted_at: Time,
}

#[derive(Debug, Default)]
struct Inner {
    /// Pool in submission order.
    pool: Vec<TxRecord>,
    by_id: HashMap<TxId, usize>,
    /// Memoized set of tx ids included on the chain ending at each block.
    inclusion: HashMap<BlockId, Arc<HashSet<TxId>>>,
}

/// Shared transaction pool with submission-time tracking and an
/// inclusion index for efficient "not already included" filtering.
///
/// ```
/// use tobsvd_sim::Mempool;
/// use tobsvd_types::{BlockStore, Log, Time, Transaction};
///
/// let store = BlockStore::new();
/// let pool = Mempool::new();
/// let tx = Transaction::new(b"tx".to_vec());
/// pool.submit(tx.clone(), Time::new(5));
/// let pending = pool.pending_for(&Log::genesis(&store), &store);
/// assert_eq!(pending, vec![tx]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    inner: Arc<Mutex<Inner>>,
}

impl Mempool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a transaction at `now`. Duplicate ids are ignored (the
    /// first submission time wins).
    pub fn submit(&self, tx: Transaction, now: Time) {
        let mut inner = self.inner.lock();
        let id = tx.id();
        if inner.by_id.contains_key(&id) {
            return;
        }
        let idx = inner.pool.len();
        inner.pool.push(TxRecord { tx, submitted_at: now });
        inner.by_id.insert(id, idx);
    }

    /// Submission time of a transaction, if pooled.
    pub fn submitted_at(&self, id: TxId) -> Option<Time> {
        let inner = self.inner.lock();
        inner.by_id.get(&id).map(|&i| inner.pool[i].submitted_at)
    }

    /// Number of pooled transactions (ever submitted).
    pub fn len(&self) -> usize {
        self.inner.lock().pool.len()
    }

    /// Whether the pool has never seen a transaction.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All pooled transactions submitted at or before `now` that are not
    /// already included in `log` — the batch an honest proposer puts in
    /// its next block.
    pub fn pending_for_at(&self, log: &Log, store: &BlockStore, now: Time) -> Vec<Transaction> {
        let included = self.included_set(log.tip(), store);
        let inner = self.inner.lock();
        inner
            .pool
            .iter()
            .filter(|r| r.submitted_at <= now && !included.contains(&r.tx.id()))
            .map(|r| r.tx.clone())
            .collect()
    }

    /// [`Mempool::pending_for_at`] with no submission-time cutoff.
    pub fn pending_for(&self, log: &Log, store: &BlockStore) -> Vec<Transaction> {
        self.pending_for_at(log, store, Time::new(u64::MAX))
    }

    /// The set of tx ids included on the chain ending at `tip`, memoized
    /// per block so repeated queries stay cheap as the chain grows.
    pub fn included_set(&self, tip: BlockId, store: &BlockStore) -> Arc<HashSet<TxId>> {
        let mut inner = self.inner.lock();
        if let Some(set) = inner.inclusion.get(&tip) {
            return Arc::clone(set);
        }
        // Walk down to the nearest memoized ancestor, then build back up.
        let mut stack = Vec::new();
        let mut cur = tip;
        let base = loop {
            if let Some(set) = inner.inclusion.get(&cur) {
                break Arc::clone(set);
            }
            let block = match store.get(cur) {
                Some(b) => b,
                None => break Arc::new(HashSet::new()),
            };
            stack.push(Arc::clone(&block));
            if block.is_genesis() {
                break Arc::new(HashSet::new());
            }
            cur = block.parent();
        };
        let mut acc = base;
        while let Some(block) = stack.pop() {
            let mut set: HashSet<TxId> = (*acc).clone();
            set.extend(block.txs().iter().map(|t| t.id()));
            acc = Arc::new(set);
            inner.inclusion.insert(block.id(), Arc::clone(&acc));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_types::{ValidatorId, View};

    #[test]
    fn submit_and_query() {
        let pool = Mempool::new();
        let tx = Transaction::new(vec![1]);
        pool.submit(tx.clone(), Time::new(3));
        assert_eq!(pool.submitted_at(tx.id()), Some(Time::new(3)));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn duplicate_submission_keeps_first_time() {
        let pool = Mempool::new();
        let tx = Transaction::new(vec![1]);
        pool.submit(tx.clone(), Time::new(3));
        pool.submit(tx.clone(), Time::new(9));
        assert_eq!(pool.submitted_at(tx.id()), Some(Time::new(3)));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn pending_excludes_included() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let t1 = Transaction::new(vec![1]);
        let t2 = Transaction::new(vec![2]);
        pool.submit(t1.clone(), Time::ZERO);
        pool.submit(t2.clone(), Time::ZERO);
        let log = Log::genesis(&store).extend(
            &store,
            ValidatorId::new(0),
            View::new(1),
            vec![t1.clone()],
        );
        assert_eq!(pool.pending_for(&log, &store), vec![t2.clone()]);
        // But t1 still pending relative to genesis.
        assert_eq!(pool.pending_for(&Log::genesis(&store), &store).len(), 2);
    }

    #[test]
    fn pending_respects_submission_cutoff() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let t1 = Transaction::new(vec![1]);
        pool.submit(t1, Time::new(10));
        let g = Log::genesis(&store);
        assert!(pool.pending_for_at(&g, &store, Time::new(9)).is_empty());
        assert_eq!(pool.pending_for_at(&g, &store, Time::new(10)).len(), 1);
    }

    #[test]
    fn inclusion_memoization_consistent_across_extensions() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let txs: Vec<Transaction> = (0..5).map(|i| Transaction::new(vec![i])).collect();
        for tx in &txs {
            pool.submit(tx.clone(), Time::ZERO);
        }
        let mut log = Log::genesis(&store);
        for (i, tx) in txs.iter().enumerate() {
            log = log.extend(&store, ValidatorId::new(0), View::new(i as u64 + 1), vec![tx.clone()]);
            let included = pool.included_set(log.tip(), &store);
            assert_eq!(included.len(), i + 1);
        }
        assert!(pool.pending_for(&log, &store).is_empty());
    }
}
