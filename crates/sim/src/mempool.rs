//! The external transaction pool of §2/§3.2, with bounded admission.
//!
//! "Upon submission, transactions are immediately added to a transaction
//! pool from which validators can retrieve and validate them … honest
//! validators batch into any proposed block any valid transaction
//! included in the transaction pool that is not already included in the
//! log that the proposed block is appended to."
//!
//! The pool records submission times so the latency experiments can
//! measure confirmation time = decision time − submission time.
//!
//! # Bounded admission
//!
//! Production ingestion cannot queue unboundedly, so the pool enforces
//! an [`AdmissionPolicy`] on every submission ([`Mempool::admit`]):
//!
//! * **hard capacity** — at most `capacity` pending records. A
//!   submission against a full pool either evicts the weakest pending
//!   entry (lowest fee; ties broken by evicting the *newest* of that
//!   fee, so earlier submissions keep their place) when the newcomer's
//!   fee is strictly higher, or is shed with [`Admission::Busy`].
//!   Eviction and its tie-break are fully deterministic: the priority
//!   index is a `BTreeSet<(fee, seq)>` — no hash-order iteration.
//! * **per-client rate caps** — at most `rate_cap` *accepted*
//!   submissions per client per `rate_window` ticks
//!   ([`Admission::RateLimited`] beyond that).
//! * **explicit verdicts** — callers (the runtime's ingest plane, the
//!   sim's open-loop workload) relay the verdict to the client as a
//!   `SubmitAck`, closing the backpressure loop.
//!
//! An evicted transaction leaves the pool *and* the duplicate-
//! suppression index: the client is expected to resubmit later, and a
//! resubmission must not be silently swallowed as a duplicate.
//! [`Mempool::new`] keeps the historical unbounded behavior
//! ([`AdmissionPolicy::unbounded`]), so existing simulations and their
//! fixed-seed fingerprints are untouched unless a policy is installed.
//!
//! Two mechanisms keep memory bounded over million-tick sweeps:
//!
//! * [`Mempool::prune_confirmed`] drops the full records (payloads) of
//!   transactions confirmed in the common decided prefix — the engine
//!   calls it whenever the decision observer's anchor grows. Only the
//!   `TxId → submission time` index survives pruning, so duplicate
//!   suppression and latency lookups keep working.
//! * The per-block inclusion memo is FIFO-capped at
//!   [`Mempool::INCLUSION_MEMO_CAP`] entries and reset to a fresh base
//!   at the decided tip on every prune. The base entry itself is exempt
//!   from eviction — admission-driven *pool* eviction never touches the
//!   memo, so the decided-anchor base survives any admission churn —
//!   and inclusion walks always stop there: memo entry count is bounded
//!   by the cap, and memoized sets only grow with the chain *beyond the
//!   last decided prefix*, not with the whole chain.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use tobsvd_types::{BlockId, BlockStore, Log, Time, Transaction, TxId};

/// A pooled transaction plus its submission time and fee bid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxRecord {
    /// The transaction.
    pub tx: Transaction,
    /// When it entered the pool.
    pub submitted_at: Time,
    /// Fee bid (0 for legacy [`Mempool::submit`] submissions).
    pub fee: u64,
}

/// Admission-control policy of a pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Hard cap on pending records.
    pub capacity: usize,
    /// Max accepted submissions per client per window (0 = unlimited).
    pub rate_cap: u32,
    /// Rate-cap window length in ticks.
    pub rate_window: u64,
}

impl AdmissionPolicy {
    /// No limits: the historical pool behavior (and the default of
    /// [`Mempool::new`], preserving existing simulation fingerprints).
    pub fn unbounded() -> Self {
        AdmissionPolicy { capacity: usize::MAX, rate_cap: 0, rate_window: 1 }
    }
}

impl Default for AdmissionPolicy {
    /// The runtime ingest default: 65 536 pending transactions, no
    /// per-client cap.
    fn default() -> Self {
        AdmissionPolicy { capacity: 65_536, rate_cap: 0, rate_window: 64 }
    }
}

/// Verdict of one [`Mempool::admit`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; `evicted` names the pending transaction displaced to
    /// make room, if any.
    Accepted {
        /// Displaced lower-priority transaction, if the pool was full.
        evicted: Option<TxId>,
    },
    /// Already known (pending or previously confirmed): ignored, first
    /// submission time wins.
    Duplicate,
    /// Pool full and the fee did not beat the weakest pending entry.
    Busy,
    /// The client exceeded its per-window rate cap.
    RateLimited,
}

impl Admission {
    /// Whether the transaction entered the pool.
    pub fn is_accepted(self) -> bool {
        matches!(self, Admission::Accepted { .. })
    }
}

/// Counters describing a pool's admission history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Submissions admitted.
    pub accepted: u64,
    /// Submissions ignored as duplicates.
    pub duplicates: u64,
    /// Submissions shed at capacity.
    pub busy: u64,
    /// Submissions shed by per-client rate caps.
    pub rate_limited: u64,
    /// Pending transactions displaced by priority eviction.
    pub evicted: u64,
    /// High-water mark of pending records (the bounded-memory witness).
    pub pending_peak: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Pending pool keyed by submission sequence number (iteration in
    /// key order is submission order); pruned as the decided prefix
    /// advances, evicted under admission pressure.
    pool: BTreeMap<u64, TxRecord>,
    /// Pending ids → their sequence number.
    pending: BTreeMap<TxId, u64>,
    /// Priority index: (fee, seq). The weakest entry is the lowest fee
    /// with the highest seq — deterministic eviction order.
    priority: BTreeSet<(u64, u64)>,
    /// Next submission sequence number.
    next_seq: u64,
    /// Submission time of every transaction ever admitted (ids only —
    /// retained after pruning for duplicate suppression and latency
    /// lookups; *removed* on eviction so clients can resubmit).
    submitted: BTreeMap<TxId, Time>,
    /// Per-client rate-cap windows: client → (window index, accepted).
    rate: BTreeMap<u64, (u64, u32)>,
    /// Admission policy.
    policy: Option<AdmissionPolicy>,
    /// Admission counters.
    stats: AdmissionStats,
    /// Memoized set of tx ids included on the chain ending at each block.
    inclusion: BTreeMap<BlockId, Arc<BTreeSet<TxId>>>,
    /// Memo insertion order, for FIFO eviction.
    inclusion_order: VecDeque<BlockId>,
}

impl Inner {
    fn policy(&self) -> AdmissionPolicy {
        self.policy.unwrap_or_else(AdmissionPolicy::unbounded)
    }

    fn memoize(&mut self, id: BlockId, set: Arc<BTreeSet<TxId>>) {
        if self.inclusion.insert(id, set).is_none() {
            self.inclusion_order.push_back(id);
        }
        // Evict FIFO from the queue only; the prune base is never queued
        // (see `memoize_base`), so it survives any amount of memo churn —
        // evicting it would silently reopen the walk-to-genesis recompute
        // path the base exists to close.
        while self.inclusion.len() > Mempool::INCLUSION_MEMO_CAP {
            if let Some(old) = self.inclusion_order.pop_front() {
                self.inclusion.remove(&old);
            } else {
                break;
            }
        }
    }

    /// Installs an eviction-exempt memo entry (the post-prune base).
    fn memoize_base(&mut self, id: BlockId, set: Arc<BTreeSet<TxId>>) {
        self.inclusion.insert(id, set);
    }

    /// Removes one pending record by sequence number (eviction path).
    fn evict_seq(&mut self, seq: u64) -> Option<TxId> {
        let rec = self.pool.remove(&seq)?;
        let id = rec.tx.id();
        self.pending.remove(&id);
        self.priority.remove(&(rec.fee, seq));
        // Forget the submission so the client may resubmit: a shed
        // transaction silently treated as a duplicate later would be a
        // liveness bug, not backpressure.
        self.submitted.remove(&id);
        self.stats.evicted += 1;
        Some(id)
    }

    /// The weakest pending entry: lowest fee, newest among that fee.
    fn weakest(&self) -> Option<(u64, u64)> {
        let (min_fee, _) = *self.priority.iter().next()?;
        self.priority
            .range((min_fee, 0)..=(min_fee, u64::MAX))
            .next_back()
            .copied()
    }

    fn insert_record(&mut self, tx: Transaction, now: Time, fee: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = tx.id();
        self.submitted.insert(id, now);
        self.pending.insert(id, seq);
        self.priority.insert((fee, seq));
        self.pool.insert(seq, TxRecord { tx, submitted_at: now, fee });
        self.stats.accepted += 1;
        self.stats.pending_peak = self.stats.pending_peak.max(self.pool.len() as u64);
    }
}

/// Shared transaction pool with submission-time tracking, bounded
/// admission, and an inclusion index for efficient "not already
/// included" filtering.
///
/// ```
/// use tobsvd_sim::{Admission, AdmissionPolicy, Mempool};
/// use tobsvd_types::{BlockStore, Log, Time, Transaction};
///
/// let store = BlockStore::new();
/// let pool = Mempool::new();
/// pool.set_policy(AdmissionPolicy { capacity: 1, rate_cap: 0, rate_window: 1 });
/// let tx = Transaction::new(b"tx".to_vec());
/// assert!(pool.admit(tx.clone(), Time::new(5), 3, Some(1)).is_accepted());
/// // Pool full; an equal-or-lower fee is shed with Busy.
/// let low = Transaction::new(b"low".to_vec());
/// assert_eq!(pool.admit(low, Time::new(6), 3, Some(2)), Admission::Busy);
/// let pending = pool.pending_for(&Log::genesis(&store), &store);
/// assert_eq!(pending, vec![tx]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    inner: Arc<Mutex<Inner>>,
}

impl Mempool {
    /// Maximum number of memoized inclusion sets kept at once. Old
    /// entries are evicted FIFO — except the post-prune base entry,
    /// which walks must be able to stop at; evicted blocks are simply
    /// recomputed by walking to the nearest still-memoized ancestor.
    pub const INCLUSION_MEMO_CAP: usize = 1024;

    /// Creates an empty pool with unbounded admission (the historical
    /// behavior — install an [`AdmissionPolicy`] to bound it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty pool with the given admission policy.
    pub fn bounded(policy: AdmissionPolicy) -> Self {
        let pool = Self::default();
        pool.set_policy(policy);
        pool
    }

    /// Installs (or replaces) the admission policy. Already-pending
    /// records are kept even if they exceed the new capacity; the bound
    /// applies to subsequent admissions.
    pub fn set_policy(&self, policy: AdmissionPolicy) {
        self.inner.lock().policy = Some(policy);
    }

    /// The current admission policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.inner.lock().policy()
    }

    /// Admission counters so far.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.inner.lock().stats
    }

    /// Submits a transaction at `now` (legacy unbounded-era interface:
    /// fee 0, no client identity). Duplicate ids are ignored (the first
    /// submission time wins), including ids whose records were already
    /// pruned after confirmation. Under a bounded policy this goes
    /// through [`Mempool::admit`] and may be shed.
    pub fn submit(&self, tx: Transaction, now: Time) {
        let _ = self.admit(tx, now, 0, None);
    }

    /// Submits a transaction with a fee bid and an optional client
    /// identity, returning the explicit admission verdict.
    pub fn admit(&self, tx: Transaction, now: Time, fee: u64, client: Option<u64>) -> Admission {
        let mut inner = self.inner.lock();
        let policy = inner.policy();
        let id = tx.id();
        if inner.submitted.contains_key(&id) {
            inner.stats.duplicates += 1;
            return Admission::Duplicate;
        }
        // Per-client rate cap (counts *accepted* submissions).
        let window = now.ticks().checked_div(policy.rate_window).unwrap_or(0);
        if policy.rate_cap > 0 {
            if let Some(c) = client {
                let entry = inner.rate.entry(c).or_insert((window, 0));
                if entry.0 != window {
                    *entry = (window, 0);
                }
                if entry.1 >= policy.rate_cap {
                    inner.stats.rate_limited += 1;
                    return Admission::RateLimited;
                }
            }
        }
        // Hard capacity with deterministic priority eviction.
        let mut evicted = None;
        if inner.pool.len() >= policy.capacity {
            match inner.weakest() {
                // A strictly higher fee displaces the weakest entry;
                // equal fees favor the incumbent (prevents eviction
                // churn between same-fee submissions).
                Some((weak_fee, weak_seq)) if fee > weak_fee => {
                    evicted = inner.evict_seq(weak_seq);
                }
                _ => {
                    inner.stats.busy += 1;
                    return Admission::Busy;
                }
            }
        }
        inner.insert_record(tx, now, fee);
        if policy.rate_cap > 0 {
            if let Some(c) = client {
                if let Some(entry) = inner.rate.get_mut(&c) {
                    entry.1 += 1;
                }
            }
        }
        Admission::Accepted { evicted }
    }

    /// Submission time of a transaction, if ever admitted (survives
    /// pruning; cleared by eviction).
    pub fn submitted_at(&self, id: TxId) -> Option<Time> {
        self.inner.lock().submitted.get(&id).copied()
    }

    /// Number of pooled transactions (ever admitted and not evicted).
    pub fn len(&self) -> usize {
        self.inner.lock().submitted.len()
    }

    /// Number of transactions currently pending (admitted, not yet
    /// pruned as confirmed or evicted).
    pub fn pending_len(&self) -> usize {
        self.inner.lock().pool.len()
    }

    /// Number of memoized inclusion sets currently held.
    pub fn inclusion_memo_len(&self) -> usize {
        self.inner.lock().inclusion.len()
    }

    /// Whether the pool has never seen a transaction.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All pooled transactions submitted at or before `now` that are not
    /// already included in `log` — the batch an honest proposer puts in
    /// its next block (in submission order).
    pub fn pending_for_at(&self, log: &Log, store: &BlockStore, now: Time) -> Vec<Transaction> {
        let included = self.included_set(log.tip(), store);
        let inner = self.inner.lock();
        inner
            .pool
            .values()
            .filter(|r| r.submitted_at <= now && !included.contains(&r.tx.id()))
            .map(|r| r.tx.clone())
            .collect()
    }

    /// [`Mempool::pending_for_at`] with no submission-time cutoff.
    pub fn pending_for(&self, log: &Log, store: &BlockStore) -> Vec<Transaction> {
        self.pending_for_at(log, store, Time::new(u64::MAX))
    }

    /// Drops the records of every pending transaction included in
    /// `decided` (a log all honest validators' decisions are compatible
    /// with — the engine passes the observer's anchor), and resets the
    /// inclusion memo to an empty base at `decided.tip()`.
    ///
    /// After the reset, memoized sets only track transactions beyond the
    /// pruned prefix. That is sufficient: `pending_for` consults the
    /// memo solely for membership of still-pending ids, and anything in
    /// the pruned prefix has just left the pool for good.
    pub fn prune_confirmed(&self, decided: &Log, store: &BlockStore) {
        let included = self.included_set(decided.tip(), store);
        let mut inner = self.inner.lock();
        let confirmed: Vec<(u64, TxId, u64)> = inner
            .pool
            .iter()
            .filter(|(_, r)| included.contains(&r.tx.id()))
            .map(|(seq, r)| (*seq, r.tx.id(), r.fee))
            .collect();
        for (seq, id, fee) in confirmed {
            // Unlike eviction, pruning keeps the `submitted` entry:
            // confirmed txs stay duplicate-suppressed and latency-
            // resolvable.
            self_remove(&mut inner, seq, id, fee);
        }
        inner.inclusion.clear();
        inner.inclusion_order.clear();
        inner.memoize_base(decided.tip(), Arc::new(BTreeSet::new()));
    }

    /// The set of tx ids included on the chain ending at `tip`, memoized
    /// per block so repeated queries stay cheap as the chain grows.
    ///
    /// After a [`Mempool::prune_confirmed`] the sets are relative to the
    /// pruned base block (they omit its, already unpoolable, prefix).
    pub fn included_set(&self, tip: BlockId, store: &BlockStore) -> Arc<BTreeSet<TxId>> {
        let mut inner = self.inner.lock();
        if let Some(set) = inner.inclusion.get(&tip) {
            return Arc::clone(set);
        }
        // Walk down to the nearest memoized ancestor, then build back up.
        let mut stack = Vec::new();
        let mut cur = tip;
        let base = loop {
            if let Some(set) = inner.inclusion.get(&cur) {
                break Arc::clone(set);
            }
            let block = match store.get(cur) {
                Some(b) => b,
                None => break Arc::new(BTreeSet::new()),
            };
            stack.push(Arc::clone(&block));
            if block.is_genesis() {
                break Arc::new(BTreeSet::new());
            }
            cur = block.parent();
        };
        let mut acc = base;
        while let Some(block) = stack.pop() {
            let mut set: BTreeSet<TxId> = (*acc).clone();
            set.extend(block.txs().iter().map(|t| t.id()));
            acc = Arc::new(set);
            inner.memoize(block.id(), Arc::clone(&acc));
        }
        acc
    }
}

/// Removes one pending record while keeping the `submitted` index (the
/// prune path — confirmed txs remain duplicate-suppressed).
fn self_remove(inner: &mut Inner, seq: u64, id: TxId, fee: u64) {
    inner.pool.remove(&seq);
    inner.pending.remove(&id);
    inner.priority.remove(&(fee, seq));
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_types::{ValidatorId, View};

    #[test]
    fn submit_and_query() {
        let pool = Mempool::new();
        let tx = Transaction::new(vec![1]);
        pool.submit(tx.clone(), Time::new(3));
        assert_eq!(pool.submitted_at(tx.id()), Some(Time::new(3)));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.pending_len(), 1);
    }

    #[test]
    fn duplicate_submission_keeps_first_time() {
        let pool = Mempool::new();
        let tx = Transaction::new(vec![1]);
        pool.submit(tx.clone(), Time::new(3));
        pool.submit(tx.clone(), Time::new(9));
        assert_eq!(pool.submitted_at(tx.id()), Some(Time::new(3)));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.pending_len(), 1);
        assert_eq!(pool.admission_stats().duplicates, 1);
    }

    #[test]
    fn pending_excludes_included() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let t1 = Transaction::new(vec![1]);
        let t2 = Transaction::new(vec![2]);
        pool.submit(t1.clone(), Time::ZERO);
        pool.submit(t2.clone(), Time::ZERO);
        let log = Log::genesis(&store).extend(
            &store,
            ValidatorId::new(0),
            View::new(1),
            vec![t1.clone()],
        );
        assert_eq!(pool.pending_for(&log, &store), vec![t2.clone()]);
        // But t1 still pending relative to genesis.
        assert_eq!(pool.pending_for(&Log::genesis(&store), &store).len(), 2);
    }

    #[test]
    fn pending_respects_submission_cutoff() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let t1 = Transaction::new(vec![1]);
        pool.submit(t1, Time::new(10));
        let g = Log::genesis(&store);
        assert!(pool.pending_for_at(&g, &store, Time::new(9)).is_empty());
        assert_eq!(pool.pending_for_at(&g, &store, Time::new(10)).len(), 1);
    }

    #[test]
    fn inclusion_memoization_consistent_across_extensions() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let txs: Vec<Transaction> = (0..5).map(|i| Transaction::new(vec![i])).collect();
        for tx in &txs {
            pool.submit(tx.clone(), Time::ZERO);
        }
        let mut log = Log::genesis(&store);
        for (i, tx) in txs.iter().enumerate() {
            log = log.extend(&store, ValidatorId::new(0), View::new(i as u64 + 1), vec![tx.clone()]);
            let included = pool.included_set(log.tip(), &store);
            assert_eq!(included.len(), i + 1);
        }
        assert!(pool.pending_for(&log, &store).is_empty());
    }

    #[test]
    fn prune_confirmed_drops_only_decided_txs() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let confirmed = Transaction::new(vec![1]);
        let pending = Transaction::new(vec![2]);
        pool.submit(confirmed.clone(), Time::new(1));
        pool.submit(pending.clone(), Time::new(2));
        let decided = Log::genesis(&store).extend(
            &store,
            ValidatorId::new(0),
            View::new(1),
            vec![confirmed.clone()],
        );
        pool.prune_confirmed(&decided, &store);

        assert_eq!(pool.pending_len(), 1);
        assert_eq!(pool.len(), 2, "len counts ever-submitted txs");
        // The decided tx's submission time survives for latency lookups.
        assert_eq!(pool.submitted_at(confirmed.id()), Some(Time::new(1)));
        // Resubmitting a pruned tx is still suppressed.
        pool.submit(confirmed.clone(), Time::new(50));
        assert_eq!(pool.pending_len(), 1);
        // The pending tx is still proposable on top of the decided log.
        assert_eq!(pool.pending_for(&decided, &store), vec![pending]);
    }

    #[test]
    fn pending_filter_correct_after_prune_and_further_extension() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let a = Transaction::new(vec![1]);
        let b = Transaction::new(vec![2]);
        let c = Transaction::new(vec![3]);
        for tx in [&a, &b, &c] {
            pool.submit(tx.clone(), Time::ZERO);
        }
        let l1 =
            Log::genesis(&store).extend(&store, ValidatorId::new(0), View::new(1), vec![a]);
        pool.prune_confirmed(&l1, &store);
        // A block beyond the pruned base includes b; only c stays pending.
        let l2 = l1.extend(&store, ValidatorId::new(1), View::new(2), vec![b]);
        assert_eq!(pool.pending_for(&l2, &store), vec![c]);
        pool.prune_confirmed(&l2, &store);
        assert_eq!(pool.pending_len(), 1);
    }

    #[test]
    fn inclusion_memo_is_capped() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let mut log = Log::genesis(&store);
        for i in 0..(Mempool::INCLUSION_MEMO_CAP + 50) {
            let tx = Transaction::new(i.to_be_bytes().to_vec());
            pool.submit(tx.clone(), Time::ZERO);
            log = log.extend(&store, ValidatorId::new(0), View::new(i as u64 + 1), vec![tx]);
            let _ = pool.included_set(log.tip(), &store);
        }
        assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);
        // Evicted entries are recomputed correctly on demand.
        let included = pool.included_set(log.tip(), &store);
        assert_eq!(included.len(), Mempool::INCLUSION_MEMO_CAP + 50);
    }

    #[test]
    fn prune_base_survives_memo_churn() {
        // Regression: the post-prune base must be exempt from FIFO
        // eviction. If it were evicted, later walks would fall through
        // to genesis and rebuild *absolute* sets (containing pruned
        // txs) — observable below as tx_a reappearing in the memo.
        let store = BlockStore::new();
        let pool = Mempool::new();
        let tx_a = Transaction::new(vec![0xa]);
        pool.submit(tx_a.clone(), Time::ZERO);
        let base = Log::genesis(&store).extend(
            &store,
            ValidatorId::new(0),
            View::new(1),
            vec![tx_a.clone()],
        );
        pool.prune_confirmed(&base, &store);
        // Churn far past the cap so FIFO eviction runs many times.
        let mut log = base;
        for i in 0..(Mempool::INCLUSION_MEMO_CAP as u64 + 50) {
            log = log.extend_empty(&store, ValidatorId::new(0), View::new(i + 2));
            let _ = pool.included_set(log.tip(), &store);
        }
        assert!(pool.inclusion_memo_len() <= Mempool::INCLUSION_MEMO_CAP);
        // A fresh branch off the base still resolves relative to it:
        // the pruned tx must NOT resurface in its inclusion set.
        let tx_b = Transaction::new(vec![0xb]);
        pool.submit(tx_b.clone(), Time::ZERO);
        let side = base.extend(&store, ValidatorId::new(1), View::new(9999), vec![tx_b.clone()]);
        let included = pool.included_set(side.tip(), &store);
        assert!(included.contains(&tx_b.id()));
        assert!(
            !included.contains(&tx_a.id()),
            "base was evicted: walk fell through to genesis and rebuilt an absolute set"
        );
    }

    #[test]
    fn prune_resets_memo_to_single_base() {
        let store = BlockStore::new();
        let pool = Mempool::new();
        let tx = Transaction::new(vec![9]);
        pool.submit(tx.clone(), Time::ZERO);
        let mut log = Log::genesis(&store);
        for i in 0..10 {
            log = log.extend_empty(&store, ValidatorId::new(0), View::new(i + 1));
            let _ = pool.included_set(log.tip(), &store);
        }
        assert!(pool.inclusion_memo_len() >= 10);
        pool.prune_confirmed(&log, &store);
        assert_eq!(pool.inclusion_memo_len(), 1);
        // The base is empty and the pending tx still proposable.
        assert_eq!(pool.pending_for(&log, &store), vec![tx]);
    }

    #[test]
    fn capacity_sheds_low_fee_and_evicts_for_high_fee() {
        let pool = Mempool::bounded(AdmissionPolicy { capacity: 2, rate_cap: 0, rate_window: 1 });
        let a = Transaction::new(vec![1]);
        let b = Transaction::new(vec![2]);
        assert!(pool.admit(a.clone(), Time::ZERO, 5, None).is_accepted());
        assert!(pool.admit(b.clone(), Time::ZERO, 9, None).is_accepted());
        // Lower fee than the weakest (5): shed.
        let low = Transaction::new(vec![3]);
        assert_eq!(pool.admit(low.clone(), Time::new(1), 4, None), Admission::Busy);
        // Equal fee: incumbent wins, newcomer shed.
        assert_eq!(pool.admit(low.clone(), Time::new(1), 5, None), Admission::Busy);
        assert_eq!(pool.pending_len(), 2);
        // Strictly higher fee: weakest (a, fee 5) is displaced.
        let high = Transaction::new(vec![4]);
        let verdict = pool.admit(high.clone(), Time::new(2), 6, None);
        assert_eq!(verdict, Admission::Accepted { evicted: Some(a.id()) });
        assert_eq!(pool.pending_len(), 2);
        // The evicted tx may be resubmitted (not duplicate-suppressed);
        // the pool now holds {b: 9, high: 6}, so the fee-6 entry goes.
        assert_eq!(pool.submitted_at(a.id()), None);
        assert_eq!(pool.admit(a.clone(), Time::new(3), 10, None),
            Admission::Accepted { evicted: Some(high.id()) });
        let stats = pool.admission_stats();
        assert_eq!(stats.busy, 2);
        assert_eq!(stats.evicted, 2);
        assert_eq!(stats.pending_peak, 2);
    }

    #[test]
    fn eviction_tie_break_is_newest_of_lowest_fee() {
        let pool = Mempool::bounded(AdmissionPolicy { capacity: 2, rate_cap: 0, rate_window: 1 });
        let older = Transaction::new(vec![1]);
        let newer = Transaction::new(vec![2]);
        pool.admit(older.clone(), Time::ZERO, 3, None);
        pool.admit(newer.clone(), Time::new(1), 3, None);
        // Both pending entries bid fee 3; the *newer* one is displaced.
        let high = Transaction::new(vec![3]);
        assert_eq!(
            pool.admit(high, Time::new(2), 7, None),
            Admission::Accepted { evicted: Some(newer.id()) }
        );
        assert_eq!(pool.submitted_at(older.id()), Some(Time::ZERO));
    }

    #[test]
    fn rate_cap_limits_accepted_submissions_per_window() {
        let pool = Mempool::bounded(AdmissionPolicy {
            capacity: 100,
            rate_cap: 2,
            rate_window: 10,
        });
        let mk = |i: u8| Transaction::new(vec![i]);
        assert!(pool.admit(mk(1), Time::new(0), 0, Some(7)).is_accepted());
        assert!(pool.admit(mk(2), Time::new(3), 0, Some(7)).is_accepted());
        assert_eq!(pool.admit(mk(3), Time::new(4), 0, Some(7)), Admission::RateLimited);
        // A different client is unaffected.
        assert!(pool.admit(mk(4), Time::new(4), 0, Some(8)).is_accepted());
        // The window rolls over at tick 10.
        assert!(pool.admit(mk(5), Time::new(10), 0, Some(7)).is_accepted());
        assert_eq!(pool.admission_stats().rate_limited, 1);
    }

    #[test]
    fn legacy_submit_unaffected_by_default() {
        // Mempool::new() stays unbounded: millions of legacy submissions
        // are admitted verbatim (fixed-seed sim fingerprints depend on
        // this).
        let pool = Mempool::new();
        for i in 0..100_000u64 {
            pool.submit(Transaction::new(i.to_be_bytes().to_vec()), Time::ZERO);
        }
        assert_eq!(pool.pending_len(), 100_000);
        assert_eq!(pool.admission_stats().busy, 0);
    }
}
