//! Live adversary controller.
//!
//! The sleepy-model adversary is *fully adaptive* for sleep/wake and
//! *mildly adaptive* for corruption (paper §3.1). Pre-computed schedules
//! cover most experiments, but reactive strategies — corrupt whoever
//! broadcast the highest VRF value this view (the Lemma 2 scenario) —
//! need to observe the execution. An [`AdversaryController`] is called at
//! the end of every tick with the messages sent during that tick and may
//! issue [`AdversaryCommand`]s. The engine enforces the model's rules:
//! corruptions take effect Δ later and the Byzantine set stays monotone;
//! sleep changes apply from the next tick and never affect Byzantine
//! validators (which are always awake).

use std::sync::Arc;

use tobsvd_types::{SignedMessage, Time, ValidatorId};

/// What the adversary saw happen during one tick.
#[derive(Debug)]
pub struct TickView<'a> {
    /// The tick that just completed.
    pub time: Time,
    /// Messages sent (originals and forwards) during this tick, in send
    /// order. The network adversary observes all traffic. Entries are
    /// the engine's shared per-broadcast handles — the same allocation
    /// every delivery event of that broadcast points at.
    pub sent: &'a [Arc<SignedMessage>],
}

/// Commands an adversary controller may issue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdversaryCommand {
    /// Schedule corruption of a validator; effective at `now + Δ`.
    Corrupt(ValidatorId),
    /// Put an honest validator to sleep starting next tick.
    Sleep(ValidatorId),
    /// Wake an honest validator starting next tick.
    Wake(ValidatorId),
}

/// A reactive adversary observing the execution tick by tick.
pub trait AdversaryController: Send {
    /// Called after all events of a tick have been processed.
    ///
    /// Under the event-driven engine this runs at every *executed* tick —
    /// every tick that had a heap event, fell on a phase boundary, or was
    /// requested via [`AdversaryController::next_wakeup`]. Ticks where
    /// nothing happens (so `view.sent` would be empty) may be skipped
    /// entirely unless `next_wakeup` claims them.
    fn on_tick(&mut self, view: &TickView<'_>) -> Vec<AdversaryCommand>;

    /// The earliest tick `>= from` at which this controller needs
    /// [`AdversaryController::on_tick`] called even if no event or phase
    /// fires there, or `None` if it only cares about ticks with traffic.
    ///
    /// The default — `Some(from)`, i.e. "wake me every tick" — preserves
    /// the reference tick-loop semantics for controllers that predate the
    /// event-driven engine. Controllers that are purely traffic-driven
    /// (they return no commands when `view.sent` is empty) should return
    /// `None` so quiet stretches of the execution can be skipped in one
    /// jump; time-triggered controllers should return their next
    /// scheduled action time. The engine may call this repeatedly with
    /// non-decreasing `from`, so implementations must be side-effect-free
    /// apart from cheap internal bookkeeping.
    fn next_wakeup(&mut self, from: Time) -> Option<Time> {
        Some(from)
    }
}

/// A controller that never does anything.
///
/// It observes nothing and asks for no wakeups, so under the
/// event-driven engine it costs O(1) instead of O(horizon).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullController;

impl AdversaryController for NullController {
    fn on_tick(&mut self, _view: &TickView<'_>) -> Vec<AdversaryCommand> {
        Vec::new()
    }

    fn next_wakeup(&mut self, _from: Time) -> Option<Time> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_controller_is_inert() {
        let mut c = NullController;
        let view = TickView { time: Time::ZERO, sent: &[] };
        assert!(c.on_tick(&view).is_empty());
        assert_eq!(c.next_wakeup(Time::new(17)), None);
    }

    #[test]
    fn default_next_wakeup_is_every_tick() {
        struct Legacy;
        impl AdversaryController for Legacy {
            fn on_tick(&mut self, _view: &TickView<'_>) -> Vec<AdversaryCommand> {
                Vec::new()
            }
        }
        assert_eq!(Legacy.next_wakeup(Time::new(5)), Some(Time::new(5)));
    }
}
