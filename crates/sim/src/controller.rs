//! Live adversary controller.
//!
//! The sleepy-model adversary is *fully adaptive* for sleep/wake and
//! *mildly adaptive* for corruption (paper §3.1). Pre-computed schedules
//! cover most experiments, but reactive strategies — corrupt whoever
//! broadcast the highest VRF value this view (the Lemma 2 scenario) —
//! need to observe the execution. An [`AdversaryController`] is called at
//! the end of every tick with the messages sent during that tick and may
//! issue [`AdversaryCommand`]s. The engine enforces the model's rules:
//! corruptions take effect Δ later and the Byzantine set stays monotone;
//! sleep changes apply from the next tick and never affect Byzantine
//! validators (which are always awake).

use tobsvd_types::{SignedMessage, Time, ValidatorId};

/// What the adversary saw happen during one tick.
#[derive(Debug)]
pub struct TickView<'a> {
    /// The tick that just completed.
    pub time: Time,
    /// Messages sent (originals and forwards) during this tick, in send
    /// order. The network adversary observes all traffic.
    pub sent: &'a [SignedMessage],
}

/// Commands an adversary controller may issue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdversaryCommand {
    /// Schedule corruption of a validator; effective at `now + Δ`.
    Corrupt(ValidatorId),
    /// Put an honest validator to sleep starting next tick.
    Sleep(ValidatorId),
    /// Wake an honest validator starting next tick.
    Wake(ValidatorId),
}

/// A reactive adversary observing the execution tick by tick.
pub trait AdversaryController: Send {
    /// Called after all events of a tick have been processed.
    fn on_tick(&mut self, view: &TickView<'_>) -> Vec<AdversaryCommand>;
}

/// A controller that never does anything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullController;

impl AdversaryController for NullController {
    fn on_tick(&mut self, _view: &TickView<'_>) -> Vec<AdversaryCommand> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_controller_is_inert() {
        let mut c = NullController;
        let view = TickView { time: Time::ZERO, sent: &[] };
        assert!(c.on_tick(&view).is_empty());
    }
}
