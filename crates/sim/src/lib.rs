//! Discrete-event simulator for the sleepy model of consensus.
//!
//! This crate is the execution substrate for every protocol in the
//! repository. It mechanizes the model of §3.1 of the TOB-SVD paper:
//!
//! * **Synchronous network with delay bound Δ** — every message sent at
//!   time `t` is delivered to every awake recipient by `t + Δ`; the exact
//!   delay of each copy is chosen by a pluggable, possibly adversarial,
//!   [`DelayPolicy`]. Deliveries at a tick are processed *before* phase
//!   timers at that tick, so "received by time t" is inclusive — the
//!   convention the paper's proofs use.
//! * **Sleep/wake (dynamic participation)** — a [`ParticipationSchedule`]
//!   gives per-validator awake intervals; messages addressed to asleep
//!   validators are buffered and delivered in full at the wake tick
//!   ("upon waking up, validators immediately receive all messages they
//!   should have received while asleep").
//! * **Growing, mildly adaptive adversary** — the Byzantine set `B_t` is
//!   monotone non-decreasing; a corruption scheduled at `t` takes effect
//!   at `t + Δ`. Byzantine validators are always awake. A live
//!   [`AdversaryController`] may schedule corruptions and sleep changes
//!   reactively during the run.
//! * **Condition (1) compliance** — [`compliance::check`] verifies that a
//!   given participation + corruption schedule satisfies
//!   `|B_{t+T_b}| < ρ·|H_{t−T_s,t} ∪ B_{t+T_b}|` for every tick, so
//!   experiments can assert they operate inside the (T_b, T_s, ρ)-sleepy
//!   model before drawing conclusions.
//!
//! Protocol logic plugs in through the sans-io [`Node`] trait; the
//! engine ([`Simulation`]) owns the event loop, gossip bookkeeping
//! helpers live in [`gossip`], transaction pooling (with bounded
//! [`AdmissionPolicy`]-controlled admission) in [`Mempool`], open-loop
//! client traffic generation in [`OpenLoopWorkload`], and
//! measurement in [`Metrics`] and [`DecisionObserver`]. The network
//! stores one `Arc`'d message per broadcast — delivery events carry the
//! shared handle, not deep copies — and charges every delivered copy
//! its exact delta-sync wire length, per message kind, alongside the
//! legacy full-chain accounting (`Metrics::inline_equiv_bytes`). An
//! optional [`DeliveryFilter`] models lossy-network adversaries for the
//! fetch-corruption experiments.
//!
//! Run-time *invariants* — first-class predicates checked after every
//! decision event (safety as prefix agreement, per-validator decision
//! monotonicity, no conflicting anchor) — are installed through
//! [`SimulationBuilder::invariant`] and defined in the [`invariant`]
//! module; the `tobsvd-check` model checker drives them over randomized
//! schedules.
//!
//! The engine is event-driven by default: time jumps straight to the
//! next scheduled event, phase boundary, or controller wakeup instead of
//! stepping tick by tick (see [`AdvanceMode`] and the advancement rules
//! in the `engine` module doc). The reference tick loop is retained as
//! [`AdvanceMode::TickLoop`] and differential tests pin the two to
//! byte-identical transcripts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compliance;
mod config;
mod controller;
mod engine;
mod fault;
pub mod gossip;
pub mod invariant;
mod mempool;
mod metrics;
mod network;
mod node;
mod observer;
mod schedule;
mod workload;

pub use config::SimConfig;
pub use controller::{AdversaryCommand, AdversaryController, NullController, TickView};
pub use engine::{
    AdvanceMode, ByzantineFactory, RestartFactory, SimReport, Simulation, SimulationBuilder,
};
pub use fault::{garbage_bytes, StateFault};
pub use invariant::{
    standard_invariants, DecisionEvent, DecisionMonotonicity, Invariant, InvariantViolation,
    NoConflictingAnchor, PrefixAgreement,
};
pub use mempool::{Admission, AdmissionPolicy, AdmissionStats, Mempool, TxRecord};
pub use metrics::{MessageKind, Metrics};
pub use network::{BestCaseDelay, DelayPolicy, DeliveryFilter, UniformDelay, WorstCaseDelay};
pub use node::{Context, CryptoOps, IdleNode, Node, Outgoing};
pub use observer::{ConfirmedTx, DecisionObserver, DecisionRecord, SafetyViolation};
pub use schedule::{CorruptionSchedule, ParticipationSchedule};
pub use workload::{Arrival, OpenLoopSpec, OpenLoopWorkload};
