//! Gossip bookkeeping shared by honest nodes.
//!
//! §3.3 of the paper: "At any time, honest validators forward any message
//! received. Up to two different LOG messages per sender are forwarded
//! upon reception" — the second copy spreads equivocation evidence; a
//! third or later distinct message from the same sender is neither
//! accepted nor forwarded.
//!
//! [`GossipState`] answers, for each delivered message, whether the
//! protocol should process it (`fresh`) and whether the node should
//! re-broadcast it (`forward`). Deduplication is by message id, so the
//! same signed message arriving over multiple forwarding paths is handled
//! once.

use std::collections::{HashMap, HashSet};

use tobsvd_crypto::Digest;
use tobsvd_types::{SignedMessage, ValidatorId};

/// Outcome of receiving a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reception {
    /// First sighting of this exact message — process it.
    pub fresh: bool,
    /// The message should be re-broadcast (first or second distinct
    /// payload from this sender for this equivocation key).
    pub forward: bool,
}

/// Per-node gossip state.
#[derive(Debug, Default)]
pub struct GossipState {
    seen: HashSet<Digest>,
    /// Count of distinct payloads seen per (sender, equivocation key).
    distinct: HashMap<(ValidatorId, (u8, u64)), u8>,
}

impl GossipState {
    /// Creates empty gossip state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a received message and returns how to treat it.
    ///
    /// ```
    /// use tobsvd_crypto::Keypair;
    /// use tobsvd_sim::gossip::GossipState;
    /// use tobsvd_types::{BlockStore, InstanceId, Log, Payload, SignedMessage, ValidatorId};
    ///
    /// let store = BlockStore::new();
    /// let v = ValidatorId::new(0);
    /// let kp = Keypair::from_seed(v.key_seed());
    /// let msg = SignedMessage::sign(&kp, v,
    ///     Payload::Log { instance: InstanceId(0), log: Log::genesis(&store) });
    ///
    /// let mut gossip = GossipState::new();
    /// let first = gossip.on_receive(&msg);
    /// assert!(first.fresh && first.forward);
    /// let dup = gossip.on_receive(&msg);
    /// assert!(!dup.fresh && !dup.forward);
    /// ```
    pub fn on_receive(&mut self, msg: &SignedMessage) -> Reception {
        if !self.seen.insert(msg.id()) {
            return Reception { fresh: false, forward: false };
        }
        let key = match msg.payload().equivocation_key() {
            Some(k) => k,
            None => return Reception { fresh: true, forward: true },
        };
        let count = self.distinct.entry((msg.sender(), key)).or_insert(0);
        if *count >= 2 {
            // Third or later distinct message from this sender for this
            // key: neither accepted nor forwarded.
            return Reception { fresh: false, forward: false };
        }
        *count += 1;
        Reception { fresh: true, forward: true }
    }

    /// Number of distinct messages seen (diagnostics).
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_crypto::Keypair;
    use tobsvd_types::{BlockStore, InstanceId, Log, Payload, View};

    fn msg(_store: &BlockStore, sender: u32, instance: u64, log: Log) -> SignedMessage {
        let v = ValidatorId::new(sender);
        let kp = Keypair::from_seed(v.key_seed());
        SignedMessage::sign(&kp, v, Payload::Log { instance: InstanceId(instance), log })
    }

    #[test]
    fn first_two_distinct_accepted_third_dropped() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let l1 = g.extend_empty(&store, ValidatorId::new(9), View::new(1));
        let l2 = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
        let mut gossip = GossipState::new();

        let r1 = gossip.on_receive(&msg(&store, 0, 5, g));
        let r2 = gossip.on_receive(&msg(&store, 0, 5, l1));
        let r3 = gossip.on_receive(&msg(&store, 0, 5, l2));
        assert_eq!(r1, Reception { fresh: true, forward: true });
        assert_eq!(r2, Reception { fresh: true, forward: true });
        assert_eq!(r3, Reception { fresh: false, forward: false });
    }

    #[test]
    fn instances_tracked_independently() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let l1 = g.extend_empty(&store, ValidatorId::new(9), View::new(1));
        let l2 = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
        let mut gossip = GossipState::new();
        // Two distinct in instance 1 exhausts instance 1 only.
        assert!(gossip.on_receive(&msg(&store, 0, 1, l1)).fresh);
        assert!(gossip.on_receive(&msg(&store, 0, 1, l2)).fresh);
        assert!(!gossip.on_receive(&msg(&store, 0, 1, g)).fresh);
        // Instance 2 unaffected.
        assert!(gossip.on_receive(&msg(&store, 0, 2, g)).fresh);
    }

    #[test]
    fn senders_tracked_independently() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let l1 = g.extend_empty(&store, ValidatorId::new(9), View::new(1));
        let l2 = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
        let mut gossip = GossipState::new();
        assert!(gossip.on_receive(&msg(&store, 0, 1, l1)).fresh);
        assert!(gossip.on_receive(&msg(&store, 0, 1, l2)).fresh);
        assert!(gossip.on_receive(&msg(&store, 1, 1, l1)).fresh);
    }

    #[test]
    fn duplicate_exact_message_ignored() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let m = msg(&store, 0, 1, g);
        let mut gossip = GossipState::new();
        assert!(gossip.on_receive(&m).fresh);
        assert!(!gossip.on_receive(&m).fresh);
        assert_eq!(gossip.seen_count(), 1);
    }
}
