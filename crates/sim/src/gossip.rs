//! Gossip bookkeeping shared by honest nodes.
//!
//! §3.3 of the paper: "At any time, honest validators forward any message
//! received. Up to two different LOG messages per sender are forwarded
//! upon reception" — the second copy spreads equivocation evidence; a
//! third or later distinct message from the same sender is neither
//! accepted nor forwarded.
//!
//! [`GossipState`] answers, for each delivered message, whether the
//! protocol should process it (`fresh`) and whether the node should
//! re-broadcast it (`forward`). Deduplication is by message id, so the
//! same signed message arriving over multiple forwarding paths is handled
//! once.

use std::collections::{BTreeMap, BTreeSet};

use tobsvd_crypto::{Digest, KeyCache, PublicKey};
use tobsvd_types::{SignedMessage, ValidatorId};

use crate::node::Context;

/// Outcome of receiving a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reception {
    /// First sighting of this exact message — process it.
    pub fresh: bool,
    /// The message should be re-broadcast (first or second distinct
    /// payload from this sender for this equivocation key).
    pub forward: bool,
}

/// Per-node gossip state.
#[derive(Debug, Default)]
pub struct GossipState {
    seen: BTreeSet<Digest>,
    /// Count of distinct payloads seen per (sender, equivocation key).
    distinct: BTreeMap<(ValidatorId, (u8, u64)), u8>,
}

impl GossipState {
    /// Creates empty gossip state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a received message and returns how to treat it.
    ///
    /// ```
    /// use tobsvd_crypto::Keypair;
    /// use tobsvd_sim::gossip::GossipState;
    /// use tobsvd_types::{BlockStore, InstanceId, Log, Payload, SignedMessage, ValidatorId};
    ///
    /// let store = BlockStore::new();
    /// let v = ValidatorId::new(0);
    /// let kp = Keypair::from_seed(v.key_seed());
    /// let msg = SignedMessage::sign(&kp, v,
    ///     Payload::Log { instance: InstanceId(0), log: Log::genesis(&store) });
    ///
    /// let mut gossip = GossipState::new();
    /// let first = gossip.on_receive(&msg);
    /// assert!(first.fresh && first.forward);
    /// let dup = gossip.on_receive(&msg);
    /// assert!(!dup.fresh && !dup.forward);
    /// ```
    pub fn on_receive(&mut self, msg: &SignedMessage) -> Reception {
        if !self.seen.insert(msg.id()) {
            return Reception { fresh: false, forward: false };
        }
        let key = match msg.payload().equivocation_key() {
            Some(k) => k,
            None => return Reception { fresh: true, forward: true },
        };
        let count = self.distinct.entry((msg.sender(), key)).or_insert(0);
        if *count >= 2 {
            // Third or later distinct message from this sender for this
            // key: neither accepted nor forwarded.
            return Reception { fresh: false, forward: false };
        }
        *count += 1;
        Reception { fresh: true, forward: true }
    }

    /// Number of distinct messages seen (diagnostics).
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// Whether `id` has been sighted here (the superset side of the
    /// stabilization audit's `verified ⊆ seen` containment check).
    pub fn has_seen(&self, id: &Digest) -> bool {
        self.seen.contains(id)
    }
}

/// The dedup-before-verify gate shared by every honest receive path
/// (`tobsvd-core`'s validator, the GA harness nodes).
///
/// Ids bind `(sender, payload)` and enter the set only after a
/// successful signature verification, so a forged frame can never
/// poison it — a repeat sighting of a member id is a copy of a message
/// already proven authentic, and every downstream action depends only
/// on `(sender, payload)`, so handling the copy is indistinguishable
/// from re-delivering the original, whatever signature bytes the copy
/// carries. Duplicate copies therefore skip crypto entirely; fresh ids
/// (and all forgeries) verify against the process-wide [`KeyCache`].
///
/// Callers decide per message whether a verified id is *retained*
/// (`retain = false` for payload kinds an adversary can mint without
/// bound, e.g. the fetch subprotocol — those pay their own cached-key
/// verification every time, and the set grows in lockstep with
/// [`GossipState`]'s seen set).
#[derive(Debug, Default)]
pub struct VerifiedSet {
    ids: BTreeSet<Digest>,
    /// Per-node `seed → PublicKey` table (bounded by the number of
    /// distinct senders, i.e. n): warm verifications stay lock-free
    /// instead of taking the process-global [`KeyCache`] read lock on
    /// every fresh id — that lock is hit once per sender per node.
    keys: BTreeMap<u64, PublicKey>,
    verifies: u64,
    skips: u64,
}

impl VerifiedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits or rejects a delivered message: `true` means "authentic —
    /// process it" (either a fresh id that verified, or a copy of an
    /// already-verified id), `false` means the signature check failed.
    /// Counts every decision into the per-node totals and the context's
    /// [`crate::CryptoOps`].
    pub fn admit(&mut self, msg: &SignedMessage, retain: bool, ctx: &mut Context) -> bool {
        if self.ids.contains(&msg.id()) {
            self.skips += 1;
            ctx.note_sig_verify_skip();
            return true;
        }
        self.verifies += 1;
        ctx.note_sig_verify();
        let seed = msg.sender().key_seed();
        let key = match self.keys.get(&seed) {
            Some(k) => *k,
            None => {
                let k = KeyCache::public(seed);
                self.keys.insert(seed, k);
                k
            }
        };
        if !msg.verify(&key) {
            return false;
        }
        if retain {
            self.ids.insert(msg.id());
        }
        true
    }

    /// Whether `id` has passed verification here.
    pub fn contains(&self, id: &Digest) -> bool {
        self.ids.contains(id)
    }

    /// Signature verifications performed.
    pub fn verifies(&self) -> u64 {
        self.verifies
    }

    /// Verifications skipped (duplicate sightings of verified ids).
    pub fn skips(&self) -> u64 {
        self.skips
    }

    /// Number of retained verified ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no id has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Fault injection: forces a raw id into the set *without*
    /// verification, breaking the `verified ⊆ seen` containment the
    /// honest admit path maintains. Exists only for the stabilization
    /// plane's state-corruption experiments.
    pub fn poison(&mut self, id: Digest) {
        self.ids.insert(id);
    }

    /// Quarantine pass: retains only ids for which `keep` holds and
    /// returns how many were evicted. The stabilization audit calls
    /// this with "sighted by gossip" as the predicate, restoring the
    /// containment a [`VerifiedSet::poison`]-style corruption broke.
    pub fn quarantine<F: FnMut(&Digest) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.ids.len();
        self.ids.retain(|id| keep(id));
        before - self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_crypto::Keypair;
    use tobsvd_types::{BlockStore, InstanceId, Log, Payload, View};

    fn msg(_store: &BlockStore, sender: u32, instance: u64, log: Log) -> SignedMessage {
        let v = ValidatorId::new(sender);
        let kp = Keypair::from_seed(v.key_seed());
        SignedMessage::sign(&kp, v, Payload::Log { instance: InstanceId(instance), log })
    }

    #[test]
    fn first_two_distinct_accepted_third_dropped() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let l1 = g.extend_empty(&store, ValidatorId::new(9), View::new(1));
        let l2 = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
        let mut gossip = GossipState::new();

        let r1 = gossip.on_receive(&msg(&store, 0, 5, g));
        let r2 = gossip.on_receive(&msg(&store, 0, 5, l1));
        let r3 = gossip.on_receive(&msg(&store, 0, 5, l2));
        assert_eq!(r1, Reception { fresh: true, forward: true });
        assert_eq!(r2, Reception { fresh: true, forward: true });
        assert_eq!(r3, Reception { fresh: false, forward: false });
    }

    #[test]
    fn instances_tracked_independently() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let l1 = g.extend_empty(&store, ValidatorId::new(9), View::new(1));
        let l2 = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
        let mut gossip = GossipState::new();
        // Two distinct in instance 1 exhausts instance 1 only.
        assert!(gossip.on_receive(&msg(&store, 0, 1, l1)).fresh);
        assert!(gossip.on_receive(&msg(&store, 0, 1, l2)).fresh);
        assert!(!gossip.on_receive(&msg(&store, 0, 1, g)).fresh);
        // Instance 2 unaffected.
        assert!(gossip.on_receive(&msg(&store, 0, 2, g)).fresh);
    }

    #[test]
    fn senders_tracked_independently() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let l1 = g.extend_empty(&store, ValidatorId::new(9), View::new(1));
        let l2 = g.extend_empty(&store, ValidatorId::new(8), View::new(1));
        let mut gossip = GossipState::new();
        assert!(gossip.on_receive(&msg(&store, 0, 1, l1)).fresh);
        assert!(gossip.on_receive(&msg(&store, 0, 1, l2)).fresh);
        assert!(gossip.on_receive(&msg(&store, 1, 1, l1)).fresh);
    }

    #[test]
    fn verified_set_admits_skips_and_rejects() {
        let store = BlockStore::new();
        let mut ctx = Context::new(
            tobsvd_types::Time::ZERO,
            ValidatorId::new(0),
            tobsvd_types::Delta::default(),
            store.clone(),
            crate::Mempool::new(),
        );
        let genuine = msg(&store, 1, 0, Log::genesis(&store));
        let forged = SignedMessage::from_parts(
            genuine.sender(),
            *genuine.payload(),
            Keypair::from_seed(999).sign(b"forged"),
        );
        let mut set = VerifiedSet::new();
        // Forged-first: rejected, set not seeded.
        assert!(!set.admit(&forged, true, &mut ctx));
        assert!(set.is_empty());
        // Genuine: verified and retained; the earlier forgery cannot
        // shadow it.
        assert!(set.admit(&genuine, true, &mut ctx));
        assert_eq!(set.len(), 1);
        // Any later copy of the id — even the forged one — skips.
        assert!(set.admit(&forged, true, &mut ctx));
        assert_eq!((set.verifies(), set.skips()), (2, 1));
        assert_eq!(ctx.crypto_ops.sig_verifies, 2);
        assert_eq!(ctx.crypto_ops.sig_verify_skips, 1);
        // retain = false: verified but never remembered.
        let other = msg(&store, 2, 0, Log::genesis(&store));
        assert!(set.admit(&other, false, &mut ctx));
        assert!(!set.contains(&other.id()));
        assert!(set.admit(&other, false, &mut ctx));
        assert_eq!(set.verifies(), 4, "non-retained ids re-verify every time");
    }

    #[test]
    fn duplicate_exact_message_ignored() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let m = msg(&store, 0, 1, g);
        let mut gossip = GossipState::new();
        assert!(gossip.on_receive(&m).fresh);
        assert!(!gossip.on_receive(&m).fresh);
        assert_eq!(gossip.seen_count(), 1);
    }
}
