//! The sans-io protocol interface: [`Node`] and [`Context`].

use tobsvd_types::{Delta, Log, SignedMessage, Time, ValidatorId};

use crate::mempool::Mempool;
use tobsvd_types::BlockStore;

/// Outgoing network actions emitted by a node during a callback.
#[derive(Clone, Debug)]
pub enum Outgoing {
    /// Broadcast an original message to all validators (including self).
    Broadcast(SignedMessage),
    /// Re-broadcast a received message (honest forwarding). Counted
    /// separately from originals in the metrics and never counts as a
    /// voting phase.
    Forward(SignedMessage),
    /// Re-send a stored message to specific validators (the §2 recovery
    /// protocol's response path). Counted as a forward.
    ForwardTo(Vec<ValidatorId>, SignedMessage),
    /// Send a message only to the given validators. Honest protocol code
    /// never uses this; Byzantine strategies do (e.g. split equivocation).
    Multicast(Vec<ValidatorId>, SignedMessage),
}

/// Crypto-operation counts a node reports through its [`Context`]: how
/// many signature/VRF verifications it actually performed vs skipped via
/// its verified-id / VRF memo fast paths. The engine folds these into
/// [`crate::Metrics`] after every callback, so a whole run's crypto
/// budget is observable without instrumenting node internals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoOps {
    /// Signature verifications performed.
    pub sig_verifies: u64,
    /// Signature verifications skipped (id already verified).
    pub sig_verify_skips: u64,
    /// VRF verifications performed.
    pub vrf_verifies: u64,
    /// VRF verifications skipped (claimed value already verified).
    pub vrf_verify_skips: u64,
    /// Aggregate-signature verifications performed (certificate whose
    /// signer set contains at least one not-yet-vouched signer).
    pub agg_verifies: u64,
    /// Aggregate-signature verifications skipped because every claimed
    /// signer was already individually authenticated (vote in hand or a
    /// previously verified certificate).
    pub agg_verify_skips: u64,
}

/// Per-callback execution context handed to a [`Node`].
///
/// The context *collects* actions (messages, decisions); the engine
/// applies them after the callback returns, keeping nodes free of any
/// direct engine borrow (sans-io).
pub struct Context {
    /// Current simulation time.
    pub time: Time,
    /// The identity of the validator being called.
    pub me: ValidatorId,
    /// The network delay bound.
    pub delta: Delta,
    /// Shared block store (content-addressed block backing).
    pub store: BlockStore,
    /// Shared transaction pool.
    pub mempool: Mempool,
    /// Crypto-operation counts for this callback (see [`CryptoOps`]).
    pub crypto_ops: CryptoOps,
    pub(crate) outbox: Vec<Outgoing>,
    pub(crate) decisions: Vec<Log>,
}

impl Context {
    /// Creates a free-standing context (the engine does this for every
    /// callback; tests and custom harnesses may too).
    pub fn new(
        time: Time,
        me: ValidatorId,
        delta: Delta,
        store: BlockStore,
        mempool: Mempool,
    ) -> Self {
        Context {
            time,
            me,
            delta,
            store,
            mempool,
            crypto_ops: CryptoOps::default(),
            outbox: Vec::new(),
            decisions: Vec::new(),
        }
    }

    /// Records a performed signature verification.
    pub fn note_sig_verify(&mut self) {
        self.crypto_ops.sig_verifies += 1;
    }

    /// Records a signature verification skipped via the verified-id set.
    pub fn note_sig_verify_skip(&mut self) {
        self.crypto_ops.sig_verify_skips += 1;
    }

    /// Records a performed VRF verification.
    pub fn note_vrf_verify(&mut self) {
        self.crypto_ops.vrf_verifies += 1;
    }

    /// Records a VRF verification skipped via the per-view memo.
    pub fn note_vrf_verify_skip(&mut self) {
        self.crypto_ops.vrf_verify_skips += 1;
    }

    /// Records a performed aggregate-signature verification.
    pub fn note_agg_verify(&mut self) {
        self.crypto_ops.agg_verifies += 1;
    }

    /// Records an aggregate verification skipped because every claimed
    /// signer was already vouched for.
    pub fn note_agg_verify_skip(&mut self) {
        self.crypto_ops.agg_verify_skips += 1;
    }

    /// Actions collected so far (tests and custom harnesses).
    pub fn outbox(&self) -> &[Outgoing] {
        &self.outbox
    }

    /// Drains the collected actions (used by wrapper nodes — e.g.
    /// Byzantine strategies that run honest logic in a scratch context
    /// and rewrite its output).
    pub fn take_outbox(&mut self) -> Vec<Outgoing> {
        std::mem::take(&mut self.outbox)
    }

    /// Decisions collected so far (tests and custom harnesses).
    pub fn decisions(&self) -> &[Log] {
        &self.decisions
    }

    /// Broadcasts an original message to all validators.
    pub fn broadcast(&mut self, msg: SignedMessage) {
        self.outbox.push(Outgoing::Broadcast(msg));
    }

    /// Forwards a received message to all validators.
    pub fn forward(&mut self, msg: SignedMessage) {
        self.outbox.push(Outgoing::Forward(msg));
    }

    /// Re-sends a stored message to specific validators (recovery
    /// responses).
    pub fn forward_to(&mut self, targets: Vec<ValidatorId>, msg: SignedMessage) {
        self.outbox.push(Outgoing::ForwardTo(targets, msg));
    }

    /// Sends a message to a subset of validators (Byzantine strategies).
    pub fn multicast(&mut self, targets: Vec<ValidatorId>, msg: SignedMessage) {
        self.outbox.push(Outgoing::Multicast(targets, msg));
    }

    /// Reports that this validator *decides* `log` (TOB delivery).
    pub fn decide(&mut self, log: Log) {
        self.decisions.push(log);
    }
}

/// A protocol participant driven by the simulation engine.
///
/// All callbacks receive the current [`Context`]; implementations emit
/// actions through it and must not block. Honest implementations live in
/// `tobsvd-ga` / `tobsvd-core`; Byzantine ones in `tobsvd-adversary`.
pub trait Node: Send + 'static {
    /// Called once when the node first starts (time of its first awake
    /// tick) and on every wake-up after sleep, *after* buffered messages
    /// have been delivered via [`Node::on_message`].
    fn on_wake(&mut self, ctx: &mut Context) {
        let _ = ctx;
    }

    /// Called at every Δ-multiple tick while awake (phase boundary).
    fn on_phase(&mut self, ctx: &mut Context);

    /// Called for every delivered message while awake (or buffered
    /// messages at wake time).
    fn on_message(&mut self, msg: &SignedMessage, ctx: &mut Context);

    /// Called when a scheduled [`crate::StateFault`] strikes this
    /// validator: the node must apply the corruption to its own state
    /// (the fault models bit rot / torn writes *inside* the process, so
    /// only the node knows which field the fault names). Default: inert
    /// (placeholder and Byzantine nodes have no honest state to
    /// corrupt).
    fn on_state_fault(&mut self, fault: &crate::StateFault, ctx: &mut Context) {
        let _ = (fault, ctx);
    }

    /// A short human-readable label (for reports and traces).
    fn label(&self) -> &'static str {
        "node"
    }

    /// Downcasting hook so harnesses can read protocol state back out of
    /// the simulation after a run. Implement as `self`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcasting hook. Implement as `self`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A node that does nothing; used as a placeholder while a slot's real
/// node is checked out during a callback, and as a harmless stand-in in
/// tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleNode;

impl Node for IdleNode {
    fn on_phase(&mut self, _ctx: &mut Context) {}
    fn on_message(&mut self, _msg: &SignedMessage, _ctx: &mut Context) {}
    fn label(&self) -> &'static str {
        "idle"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_crypto::Keypair;
    use tobsvd_types::{InstanceId, Payload};

    #[test]
    fn context_collects_actions() {
        let store = BlockStore::new();
        let mempool = Mempool::new();
        let mut ctx = Context::new(
            Time::ZERO,
            ValidatorId::new(0),
            Delta::default(),
            store.clone(),
            mempool,
        );
        let kp = Keypair::from_seed(ValidatorId::new(0).key_seed());
        let msg = SignedMessage::sign(
            &kp,
            ValidatorId::new(0),
            Payload::Log { instance: InstanceId(0), log: Log::genesis(&store) },
        );
        ctx.broadcast(msg);
        ctx.forward(msg);
        ctx.decide(Log::genesis(&store));
        assert_eq!(ctx.outbox.len(), 2);
        assert_eq!(ctx.decisions.len(), 1);
    }

    #[test]
    fn idle_node_is_inert() {
        let store = BlockStore::new();
        let mut ctx = Context::new(
            Time::ZERO,
            ValidatorId::new(0),
            Delta::default(),
            store,
            Mempool::new(),
        );
        let mut node = IdleNode;
        node.on_phase(&mut ctx);
        node.on_wake(&mut ctx);
        assert!(ctx.outbox.is_empty());
        assert_eq!(node.label(), "idle");
    }
}
