//! Participation (churn) schedule generators.
//!
//! The adversary controls sleep/wake fully adaptively; experiments model
//! it with pre-generated schedules filtered through the Condition (1)
//! checker, so every run provably sits inside the (T_b, T_s, ρ)-sleepy
//! model before any conclusion is drawn from it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tobsvd_sim::compliance::{check, SleepyParams};
use tobsvd_sim::{CorruptionSchedule, ParticipationSchedule};
use tobsvd_types::{Time, ValidatorId};

/// Rotating group sleep: validators are split into `groups` groups;
/// group `i` sleeps during every window whose index is ≡ i (mod groups),
/// everyone else stays awake. With `groups ≥ 3` a solid majority is
/// always awake and compliance holds for reasonable parameters.
pub fn rotating_sleep(
    n: usize,
    groups: usize,
    window_ticks: u64,
    horizon: Time,
) -> ParticipationSchedule {
    assert!(groups >= 2, "need at least two groups");
    let mut sched = ParticipationSchedule::always_awake(n);
    let windows = (horizon.ticks() / window_ticks).saturating_add(1);
    for v in ValidatorId::all(n) {
        let group = v.index() % groups;
        let mut intervals = Vec::new();
        let mut open: Option<u64> = None;
        for w in 0..=windows {
            let sleeping = (w as usize) % groups == group;
            let t = w * window_ticks;
            match (sleeping, open) {
                (true, Some(start)) => {
                    intervals.push((Time::new(start), Time::new(t)));
                    open = None;
                }
                (false, None) => open = Some(t),
                _ => {}
            }
        }
        if let Some(start) = open {
            intervals.push((Time::new(start), horizon + 1));
        }
        sched.set_intervals(v, intervals);
    }
    sched
}

/// Random churn: each validator independently toggles awake/asleep at
/// random window boundaries, staying awake with probability
/// `awake_prob`. Validator awake states change only at multiples of
/// `window_ticks`.
pub fn random_churn(
    n: usize,
    horizon: Time,
    window_ticks: u64,
    awake_prob: f64,
    seed: u64,
) -> ParticipationSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sched = ParticipationSchedule::always_awake(n);
    let windows = (horizon.ticks() / window_ticks).saturating_add(1);
    for v in ValidatorId::all(n) {
        let mut intervals = Vec::new();
        let mut open: Option<u64> = None;
        for w in 0..=windows {
            let awake = rng.gen_bool(awake_prob);
            let t = w * window_ticks;
            match (awake, open) {
                (false, Some(start)) => {
                    intervals.push((Time::new(start), Time::new(t)));
                    open = None;
                }
                (true, None) => open = Some(t),
                _ => {}
            }
        }
        if let Some(start) = open {
            intervals.push((Time::new(start), horizon + 1));
        }
        sched.set_intervals(v, intervals);
    }
    sched
}

/// Rejection-samples a random churn schedule compliant with
/// Condition (1) for the given corruption schedule and parameters.
///
/// Tries up to `max_tries` seeds (derived from `seed`), raising the
/// awake probability by 5 % after each failure. Returns `None` if no
/// compliant schedule was found.
#[allow(clippy::too_many_arguments)] // mirrors the paper's (n, horizon, window, p, B, params) surface
pub fn compliant_random_churn(
    n: usize,
    horizon: Time,
    window_ticks: u64,
    mut awake_prob: f64,
    corruption: &CorruptionSchedule,
    params: SleepyParams,
    seed: u64,
    max_tries: usize,
) -> Option<ParticipationSchedule> {
    for attempt in 0..max_tries {
        let candidate =
            random_churn(n, horizon, window_ticks, awake_prob, seed.wrapping_add(attempt as u64));
        if check(&candidate, corruption, params, horizon).is_none() {
            return Some(candidate);
        }
        awake_prob = (awake_prob + 0.05).min(1.0);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotating_sleep_keeps_majority_awake() {
        let horizon = Time::new(400);
        let sched = rotating_sleep(9, 3, 40, horizon);
        for t in (0..400).step_by(7) {
            let awake = ValidatorId::all(9)
                .filter(|v| sched.is_awake(*v, Time::new(t)))
                .count();
            assert!(awake >= 6, "at t={t} only {awake} awake");
        }
    }

    #[test]
    fn rotating_sleep_actually_sleeps_each_group() {
        let horizon = Time::new(400);
        let sched = rotating_sleep(6, 3, 40, horizon);
        // Group 0 (validators 0 and 3) sleeps in window 0.
        assert!(!sched.is_awake(ValidatorId::new(0), Time::new(10)));
        assert!(!sched.is_awake(ValidatorId::new(3), Time::new(10)));
        assert!(sched.is_awake(ValidatorId::new(1), Time::new(10)));
        // …and wakes in window 1.
        assert!(sched.is_awake(ValidatorId::new(0), Time::new(50)));
    }

    #[test]
    fn random_churn_is_deterministic_per_seed() {
        let a = random_churn(5, Time::new(300), 24, 0.7, 9);
        let b = random_churn(5, Time::new(300), 24, 0.7, 9);
        for v in ValidatorId::all(5) {
            for t in (0..300).step_by(11) {
                assert_eq!(a.is_awake(v, Time::new(t)), b.is_awake(v, Time::new(t)));
            }
        }
    }

    #[test]
    fn compliant_churn_passes_the_checker() {
        let corruption = CorruptionSchedule::from_genesis([ValidatorId::new(0)]);
        let params = SleepyParams::half(40, 16);
        let horizon = Time::new(500);
        let sched = compliant_random_churn(8, horizon, 32, 0.8, &corruption, params, 1, 50)
            .expect("a compliant schedule exists");
        assert!(check(&sched, &corruption, params, horizon).is_none());
    }
}
