//! Byzantine strategies, adversarial network policies and churn
//! generation for the TOB-SVD evaluation.
//!
//! The sleepy-model adversary of §3.1 controls three levers, each
//! covered here:
//!
//! * **Byzantine validators** — [`SilentNode`] (omission),
//!   [`GaEquivocator`] (targeted split equivocation inside one GA
//!   instance), [`SplitBrainNode`] (runs the honest TOB-SVD logic but
//!   equivocates every vote and proposal toward two halves of the
//!   network), [`LateVoter`] (honest content, one Δ late).
//! * **Message scheduling** — [`SplitDelay`] (fast to a clique, Δ to the
//!   rest) and [`FnDelay`] (arbitrary per-copy delay functions), both
//!   within the synchrony bound.
//! * **Participation and corruption** — [`churn`] generates sleep/wake
//!   schedules (rotating groups, random churn) and rejection-samples
//!   Condition-(1)-compliant ones; [`AdaptiveLeaderCorruptor`] is the
//!   Lemma 2 adversary that corrupts the highest-VRF proposer the moment
//!   it reveals itself (landing Δ later — mild adaptivity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
mod controllers;
mod delays;
mod strategies;

pub use controllers::AdaptiveLeaderCorruptor;
pub use delays::{FnDelay, SplitDelay};
pub use strategies::{GaEquivocator, LateVoter, SilentNode, SplitBrainNode};
