//! Byzantine node strategies.

use tobsvd_crypto::Keypair;
use tobsvd_sim::{Context, Node, Outgoing};
use tobsvd_types::{
    BlockStore, InstanceId, Log, Payload, SignedMessage, Time, ValidatorId, View,
};

use tobsvd_core::{TobConfig, Validator};

/// Omission failure: never sends anything, never reacts.
///
/// Distinct from crash: the validator still counts as always awake (the
/// sleepy model keeps Byzantine validators awake), it just contributes
/// nothing — which *shrinks* perceived participation rather than
/// splitting it.
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentNode;

impl Node for SilentNode {
    fn on_phase(&mut self, _ctx: &mut Context) {}
    fn on_message(&mut self, _msg: &SignedMessage, _ctx: &mut Context) {}
    fn label(&self) -> &'static str {
        "byz-silent"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Standalone-GA equivocator: at the instance's input phase it sends log
/// `a` to one target set and a conflicting log `b` to another —
/// the canonical attack against Graded Agreement quorums, and the
/// adversary of the GA property tests and the threshold-tightness
/// experiment.
pub struct GaEquivocator {
    me: ValidatorId,
    keypair: Keypair,
    instance: InstanceId,
    start: Time,
    log_a: Log,
    log_b: Log,
    targets_a: Vec<ValidatorId>,
    targets_b: Vec<ValidatorId>,
    sent: bool,
}

impl GaEquivocator {
    /// Creates the equivocator. `log_a` goes to `targets_a` at `start`,
    /// `log_b` to `targets_b`.
    pub fn new(
        me: ValidatorId,
        instance: InstanceId,
        start: Time,
        log_a: Log,
        targets_a: Vec<ValidatorId>,
        log_b: Log,
        targets_b: Vec<ValidatorId>,
    ) -> Self {
        GaEquivocator {
            keypair: Keypair::from_seed(me.key_seed()),
            me,
            instance,
            start,
            log_a,
            log_b,
            targets_a,
            targets_b,
            sent: false,
        }
    }
}

impl Node for GaEquivocator {
    fn on_phase(&mut self, ctx: &mut Context) {
        if ctx.time != self.start || self.sent {
            return;
        }
        self.sent = true;
        let msg_a = SignedMessage::sign(
            &self.keypair,
            self.me,
            Payload::Log { instance: self.instance, log: self.log_a },
        );
        let msg_b = SignedMessage::sign(
            &self.keypair,
            self.me,
            Payload::Log { instance: self.instance, log: self.log_b },
        );
        ctx.multicast(self.targets_a.clone(), msg_a);
        ctx.multicast(self.targets_b.clone(), msg_b);
    }

    fn on_message(&mut self, _msg: &SignedMessage, _ctx: &mut Context) {
        // Refuses to forward: honest gossip has to spread the evidence.
    }

    fn label(&self) -> &'static str {
        "byz-ga-equivocator"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The strongest generic TOB-SVD adversary in this crate: runs the full
/// honest validator logic internally, but every vote (`LOG`) and every
/// proposal it emits is *equivocated* — the genuine message goes to one
/// half of the network and a conflicting sibling (same parent, different
/// block) to the other half.
///
/// When such a validator holds the view's highest VRF value, honest
/// voters split between its two proposals and the view decides nothing
/// new — which is exactly how "no good leader" views manifest, making
/// this the workhorse of the expected-latency experiments. Below the ½
/// threshold the protocol absorbs all of it (safety tests); above the
/// threshold it can break Consistency.
pub struct SplitBrainNode {
    me: ValidatorId,
    keypair: Keypair,
    inner: Validator,
    targets_a: Vec<ValidatorId>,
    targets_b: Vec<ValidatorId>,
    fork_nonce: u64,
}

impl SplitBrainNode {
    /// Creates the adversary for validator `me`; the network halves
    /// receive the two sides of each equivocation.
    pub fn new(
        me: ValidatorId,
        cfg: TobConfig,
        store: &BlockStore,
        targets_a: Vec<ValidatorId>,
        targets_b: Vec<ValidatorId>,
    ) -> Self {
        SplitBrainNode {
            keypair: Keypair::from_seed(me.key_seed()),
            inner: Validator::new(me, cfg, store),
            me,
            targets_a,
            targets_b,
            fork_nonce: 0,
        }
    }

    /// A conflicting sibling of `log`: same parent, a block of our own.
    /// A nonce transaction makes the sibling differ even when `log`'s
    /// tip was itself proposed by us with the same content.
    fn fork_of(&mut self, log: &Log, store: &BlockStore, view: View) -> Log {
        let parent = if log.len() > 1 {
            log.prefix(log.len() - 1, store).expect("non-genesis has parent")
        } else {
            *log
        };
        self.fork_nonce += 1;
        let marker = tobsvd_types::Transaction::new(
            format!("fork:{}:{}", self.me, self.fork_nonce).into_bytes(),
        );
        parent.extend(store, self.me, view, vec![marker])
    }

    fn rewrite(&mut self, out: Vec<Outgoing>, ctx: &mut Context) {
        for action in out {
            match action {
                Outgoing::Broadcast(msg) => match msg.payload() {
                    Payload::Log { instance, log } => {
                        let fork = self.fork_of(log, &ctx.store, instance.view());
                        let forged = SignedMessage::sign(
                            &self.keypair,
                            self.me,
                            Payload::Log { instance: *instance, log: fork },
                        );
                        ctx.multicast(self.targets_a.clone(), msg);
                        ctx.multicast(self.targets_b.clone(), forged);
                    }
                    Payload::Proposal { view, log, vrf, proof } => {
                        let fork = self.fork_of(log, &ctx.store, *view);
                        let forged = SignedMessage::sign(
                            &self.keypair,
                            self.me,
                            Payload::Proposal { view: *view, log: fork, vrf: *vrf, proof: *proof },
                        );
                        ctx.multicast(self.targets_a.clone(), msg);
                        ctx.multicast(self.targets_b.clone(), forged);
                    }
                    _ => ctx.broadcast(msg),
                },
                Outgoing::Forward(m) => ctx.forward(m),
                Outgoing::ForwardTo(targets, m) => ctx.forward_to(targets, m),
                Outgoing::Multicast(targets, m) => ctx.multicast(targets, m),
            }
        }
    }

    fn scratch(&self, ctx: &Context) -> Context {
        Context::new(ctx.time, ctx.me, ctx.delta, ctx.store.clone(), ctx.mempool.clone())
    }
}

impl Node for SplitBrainNode {
    fn on_phase(&mut self, ctx: &mut Context) {
        let mut scratch = self.scratch(ctx);
        self.inner.on_phase(&mut scratch);
        let out = scratch.take_outbox();
        self.rewrite(out, ctx);
        // Byzantine decisions are ignored by the observer anyway; drop.
    }

    fn on_message(&mut self, msg: &SignedMessage, ctx: &mut Context) {
        let mut scratch = self.scratch(ctx);
        self.inner.on_message(msg, &mut scratch);
        let out = scratch.take_outbox();
        // Forward like an honest node so the network stays live.
        self.rewrite(out, ctx);
    }

    fn label(&self) -> &'static str {
        "byz-split-brain"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Honest content, one phase late: every `LOG` the honest logic would
/// broadcast is held back and released at the *next* phase boundary,
/// landing after the snapshots that were supposed to count it.
pub struct LateVoter {
    inner: Validator,
    pending: Vec<SignedMessage>,
}

impl LateVoter {
    /// Creates a late voter for validator `me`.
    pub fn new(me: ValidatorId, cfg: TobConfig, store: &BlockStore) -> Self {
        LateVoter { inner: Validator::new(me, cfg, store), pending: Vec::new() }
    }
}

impl Node for LateVoter {
    fn on_phase(&mut self, ctx: &mut Context) {
        // Release last phase's held votes first.
        for msg in self.pending.drain(..) {
            ctx.broadcast(msg);
        }
        let mut scratch =
            Context::new(ctx.time, ctx.me, ctx.delta, ctx.store.clone(), ctx.mempool.clone());
        self.inner.on_phase(&mut scratch);
        for action in scratch.take_outbox() {
            match action {
                Outgoing::Broadcast(msg) => match msg.payload() {
                    Payload::Log { .. } => self.pending.push(msg),
                    _ => ctx.broadcast(msg),
                },
                Outgoing::Forward(m) => ctx.forward(m),
                Outgoing::ForwardTo(t, m) => ctx.forward_to(t, m),
                Outgoing::Multicast(t, m) => ctx.multicast(t, m),
            }
        }
    }

    fn on_message(&mut self, msg: &SignedMessage, ctx: &mut Context) {
        let mut scratch =
            Context::new(ctx.time, ctx.me, ctx.delta, ctx.store.clone(), ctx.mempool.clone());
        self.inner.on_message(msg, &mut scratch);
        for action in scratch.take_outbox() {
            match action {
                Outgoing::Broadcast(m) | Outgoing::Forward(m) => ctx.forward(m),
                Outgoing::ForwardTo(t, m) => ctx.forward_to(t, m),
                Outgoing::Multicast(t, m) => ctx.multicast(t, m),
            }
        }
    }

    fn label(&self) -> &'static str {
        "byz-late-voter"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_sim::Mempool;
    use tobsvd_types::Delta;

    fn ctx_at(t: u64, store: &BlockStore) -> Context {
        Context::new(
            Time::new(t),
            ValidatorId::new(0),
            Delta::new(8),
            store.clone(),
            Mempool::new(),
        )
    }

    #[test]
    fn ga_equivocator_targets_two_sets() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, ValidatorId::new(0), View::new(1));
        let b = g.extend_empty(&store, ValidatorId::new(1), View::new(1));
        let mut node = GaEquivocator::new(
            ValidatorId::new(0),
            InstanceId(0),
            Time::ZERO,
            a,
            vec![ValidatorId::new(1)],
            b,
            vec![ValidatorId::new(2)],
        );
        let mut ctx = ctx_at(0, &store);
        node.on_phase(&mut ctx);
        assert_eq!(ctx.outbox().len(), 2);
        // Re-firing does nothing.
        let mut ctx2 = ctx_at(0, &store);
        node.on_phase(&mut ctx2);
        assert!(ctx2.outbox().is_empty());
    }

    #[test]
    fn split_brain_equivocates_votes() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut node = SplitBrainNode::new(
            ValidatorId::new(0),
            cfg,
            &store,
            vec![ValidatorId::new(1)],
            vec![ValidatorId::new(2), ValidatorId::new(3)],
        );
        // t = Δ is view 0's vote time: the honest inner logic votes the
        // genesis lock; the split brain sends two conflicting LOGs.
        let mut ctx = ctx_at(8, &store);
        node.on_phase(&mut ctx);
        let logs: Vec<(Vec<ValidatorId>, Log)> = ctx
            .outbox()
            .iter()
            .filter_map(|o| match o {
                Outgoing::Multicast(t, m) => match m.payload() {
                    Payload::Log { log, .. } => Some((t.clone(), *log)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        assert_eq!(logs.len(), 2, "both halves get a vote: {:?}", ctx.outbox());
        assert_ne!(logs[0].1, logs[1].1, "the two votes differ");
        // Note: the fork of the genesis log is an extension, not a
        // conflict (genesis has no sibling), but from view 1 onward the
        // pairs genuinely conflict. Check equivocation evidence shape:
        assert_eq!(
            logs[0].1.common_prefix(&logs[1].1, &store).len(),
            1,
            "they share only genesis"
        );
    }

    #[test]
    fn split_brain_equivocates_proposals() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut node = SplitBrainNode::new(
            ValidatorId::new(0),
            cfg,
            &store,
            vec![ValidatorId::new(1)],
            vec![ValidatorId::new(2)],
        );
        let mut ctx = ctx_at(0, &store); // propose time of view 0
        node.on_phase(&mut ctx);
        let proposals: Vec<Log> = ctx
            .outbox()
            .iter()
            .filter_map(|o| match o {
                Outgoing::Multicast(_, m) => match m.payload() {
                    Payload::Proposal { log, .. } => Some(*log),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        assert_eq!(proposals.len(), 2);
        assert_ne!(proposals[0], proposals[1]);
    }

    #[test]
    fn late_voter_delays_by_one_phase() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut node = LateVoter::new(ValidatorId::new(0), cfg, &store);
        // Vote time: the vote is held back.
        let mut ctx = ctx_at(8, &store);
        node.on_phase(&mut ctx);
        let vote_now = ctx
            .outbox()
            .iter()
            .any(|o| matches!(o, Outgoing::Broadcast(m) if matches!(m.payload(), Payload::Log { .. })));
        assert!(!vote_now, "vote must be held");
        // Next boundary: the held vote is released.
        let mut ctx = ctx_at(16, &store);
        node.on_phase(&mut ctx);
        let vote_late = ctx
            .outbox()
            .iter()
            .any(|o| matches!(o, Outgoing::Broadcast(m) if matches!(m.payload(), Payload::Log { .. })));
        assert!(vote_late, "vote released one phase late");
    }

    #[test]
    fn silent_node_stays_silent() {
        let store = BlockStore::new();
        let mut node = SilentNode;
        let mut ctx = ctx_at(0, &store);
        node.on_phase(&mut ctx);
        assert!(ctx.outbox().is_empty());
        assert_eq!(node.label(), "byz-silent");
    }
}
