//! Adversarial delay policies (all within the synchrony bound Δ).

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use tobsvd_sim::DelayPolicy;
use tobsvd_types::{Delta, SignedMessage, Time, ValidatorId};

/// Splits the network into a fast clique and a slow rest: copies to
/// `fast` members arrive next tick, all others at exactly Δ.
///
/// Combined with equivocating senders, this realizes the classic
/// "some validators know one message, others learn it Δ later" schedule
/// that the time-shifted quorum technique is designed to survive.
#[derive(Clone, Debug)]
pub struct SplitDelay {
    fast: BTreeSet<ValidatorId>,
}

impl SplitDelay {
    /// Creates the policy with the given fast set.
    pub fn new(fast: impl IntoIterator<Item = ValidatorId>) -> Self {
        SplitDelay { fast: fast.into_iter().collect() }
    }
}

impl DelayPolicy for SplitDelay {
    fn delay(
        &mut self,
        _msg: &SignedMessage,
        _from: ValidatorId,
        to: ValidatorId,
        _at: Time,
        delta: Delta,
        _rng: &mut StdRng,
    ) -> u64 {
        if self.fast.contains(&to) {
            1
        } else {
            delta.ticks()
        }
    }
}

/// Wraps an arbitrary function as a delay policy — the escape hatch for
/// bespoke adversarial schedules in tests.
///
/// The function returns a delay in ticks; the engine clamps it to
/// `[1, Δ]`, so even a buggy closure cannot violate synchrony.
pub struct FnDelay<F>(pub F);

impl<F> DelayPolicy for FnDelay<F>
where
    F: FnMut(&SignedMessage, ValidatorId, ValidatorId, Time, Delta) -> u64 + Send,
{
    fn delay(
        &mut self,
        msg: &SignedMessage,
        from: ValidatorId,
        to: ValidatorId,
        at: Time,
        delta: Delta,
        _rng: &mut StdRng,
    ) -> u64 {
        (self.0)(msg, from, to, at, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tobsvd_crypto::Keypair;
    use tobsvd_types::{BlockStore, InstanceId, Log, Payload};

    fn msg() -> SignedMessage {
        let store = BlockStore::new();
        let v = ValidatorId::new(0);
        let kp = Keypair::from_seed(v.key_seed());
        SignedMessage::sign(&kp, v, Payload::Log { instance: InstanceId(0), log: Log::genesis(&store) })
    }

    #[test]
    fn split_delay_classifies() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = SplitDelay::new([ValidatorId::new(1)]);
        let m = msg();
        let d = Delta::new(8);
        assert_eq!(p.delay(&m, ValidatorId::new(0), ValidatorId::new(1), Time::ZERO, d, &mut rng), 1);
        assert_eq!(p.delay(&m, ValidatorId::new(0), ValidatorId::new(2), Time::ZERO, d, &mut rng), 8);
    }

    #[test]
    fn fn_delay_invokes_closure() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = FnDelay(|_m: &SignedMessage, _f, to: ValidatorId, _t, _d| {
            1 + u64::from(to.raw())
        });
        let m = msg();
        let d = Delta::new(8);
        assert_eq!(p.delay(&m, ValidatorId::new(0), ValidatorId::new(3), Time::ZERO, d, &mut rng), 4);
    }
}
