//! Reactive adversary controllers.

use std::collections::BTreeSet;

use tobsvd_core::leader::verify_vrf;
use tobsvd_sim::{AdversaryCommand, AdversaryController, TickView};
use tobsvd_types::{Delta, Payload, Time, ValidatorId, View};

/// The Lemma 2 adversary: watches proposal traffic, and the instant a
/// view's highest-VRF proposer reveals itself, schedules its corruption.
///
/// Because the adversary is only *mildly* adaptive, the corruption lands
/// Δ later — after the proposal has reached every honest validator — so
/// the view still succeeds. The experiment shows (a) the good-leader
/// fraction stays above ½ despite the adversary burning its entire
/// budget on leaders, and (b) with the Δ delay removed the same strategy
/// would break the common-vote argument (see the leader-election test).
pub struct AdaptiveLeaderCorruptor {
    delta: Delta,
    budget: usize,
    corrupted: BTreeSet<ValidatorId>,
    handled_views: BTreeSet<View>,
}

impl AdaptiveLeaderCorruptor {
    /// Creates the controller with a corruption budget (keep it below
    /// the Condition-(1) bound for the run's n).
    pub fn new(delta: Delta, budget: usize) -> Self {
        AdaptiveLeaderCorruptor {
            delta,
            budget,
            corrupted: BTreeSet::new(),
            handled_views: BTreeSet::new(),
        }
    }

    /// Validators corrupted so far.
    pub fn corrupted(&self) -> &BTreeSet<ValidatorId> {
        &self.corrupted
    }
}

impl AdversaryController for AdaptiveLeaderCorruptor {
    fn on_tick(&mut self, view: &TickView<'_>) -> Vec<AdversaryCommand> {
        if self.corrupted.len() >= self.budget {
            return Vec::new();
        }
        // Proposals are broadcast at view starts and observed by the
        // network adversary the same tick.
        let mut best: Option<(View, ValidatorId, tobsvd_crypto::VrfOutput)> = None;
        for msg in view.sent {
            if let Payload::Proposal { view: v, vrf, proof, .. } = msg.payload() {
                if !verify_vrf(msg.sender(), *v, vrf, proof) {
                    continue;
                }
                if self.handled_views.contains(v) {
                    continue;
                }
                match &best {
                    Some((_, _, b)) if b >= vrf => {}
                    _ => best = Some((*v, msg.sender(), *vrf)),
                }
            }
        }
        let _ = self.delta;
        if let Some((v, winner, _)) = best {
            self.handled_views.insert(v);
            if self.corrupted.insert(winner) {
                return vec![AdversaryCommand::Corrupt(winner)];
            }
        }
        Vec::new()
    }

    /// Purely traffic-driven: quiet ticks carry no proposals, so the
    /// event-driven engine may skip them without consulting us.
    fn next_wakeup(&mut self, _from: Time) -> Option<Time> {
        None
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use tobsvd_core::leader::vrf_for;
    use tobsvd_crypto::Keypair;
    use tobsvd_types::{BlockStore, Log, SignedMessage, Time};

    fn proposal(sender: ValidatorId, view: View) -> Arc<SignedMessage> {
        let store = BlockStore::new();
        let kp = Keypair::from_seed(sender.key_seed());
        let (vrf, proof) = vrf_for(sender, view);
        Arc::new(SignedMessage::sign(
            &kp,
            sender,
            Payload::Proposal { view, log: Log::genesis(&store), vrf, proof },
        ))
    }

    #[test]
    fn corrupts_the_highest_vrf_proposer_once() {
        let mut ctl = AdaptiveLeaderCorruptor::new(Delta::new(8), 2);
        let view = View::new(1);
        let msgs = vec![
            proposal(ValidatorId::new(0), view),
            proposal(ValidatorId::new(1), view),
            proposal(ValidatorId::new(2), view),
        ];
        let winner = (0..3)
            .map(ValidatorId::new)
            .max_by_key(|v| vrf_for(*v, view).0)
            .unwrap();
        let cmds = ctl.on_tick(&TickView { time: Time::new(32), sent: &msgs });
        assert_eq!(cmds, vec![AdversaryCommand::Corrupt(winner)]);
        // Same view again: nothing more (view handled).
        let cmds = ctl.on_tick(&TickView { time: Time::new(33), sent: &msgs });
        assert!(cmds.is_empty());
    }

    #[test]
    fn respects_budget() {
        let mut ctl = AdaptiveLeaderCorruptor::new(Delta::new(8), 1);
        let m1 = vec![proposal(ValidatorId::new(0), View::new(1))];
        let m2 = vec![proposal(ValidatorId::new(1), View::new(2))];
        assert_eq!(ctl.on_tick(&TickView { time: Time::new(32), sent: &m1 }).len(), 1);
        assert!(ctl.on_tick(&TickView { time: Time::new(64), sent: &m2 }).is_empty());
        assert_eq!(ctl.corrupted().len(), 1);
    }

    #[test]
    fn ignores_forged_vrf() {
        let mut ctl = AdaptiveLeaderCorruptor::new(Delta::new(8), 5);
        let store = BlockStore::new();
        let sender = ValidatorId::new(0);
        let kp = Keypair::from_seed(sender.key_seed());
        // Claim v9's VRF: verification fails, no corruption issued.
        let (vrf, proof) = vrf_for(ValidatorId::new(9), View::new(1));
        let forged = SignedMessage::sign(
            &kp,
            sender,
            Payload::Proposal { view: View::new(1), log: Log::genesis(&store), vrf, proof },
        );
        let cmds = ctl.on_tick(&TickView { time: Time::new(32), sent: &[Arc::new(forged)] });
        assert!(cmds.is_empty());
    }
}
