//! Summary statistics.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
///
/// ```
/// use tobsvd_analysis::Summary;
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert!((s.mean - 2.5).abs() < 1e-9);
/// assert!((s.median - 2.5).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of middle two for even sizes).
    pub median: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n = 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// 10th percentile (nearest-rank).
    pub p10: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
}

impl Summary {
    /// Computes statistics; returns `None` for empty or non-finite data.
    pub fn from_slice(data: &[f64]) -> Option<Summary> {
        if data.is_empty() || data.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let n = data.len();
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let var = if n > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let pct = |p: f64| {
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            sorted[rank - 1]
        };
        Some(Summary {
            n,
            mean,
            median,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p10: pct(0.10),
            p90: pct(0.90),
        })
    }

    /// Half-width of the normal-approximation 95 % confidence interval
    /// of the mean.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.min - 1.0).abs() < 1e-12);
        assert!((s.max - 4.0).abs() < 1e-12);
        // Sample std of 1..4 is sqrt(5/3).
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn odd_length_median() {
        let s = Summary::from_slice(&[5.0, 1.0, 3.0]).unwrap();
        assert!((s.median - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_slice(&data).unwrap();
        assert!((s.p10 - 10.0).abs() < 1e-12);
        assert!((s.p90 - 90.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Summary::from_slice(&[]).is_none());
        assert!(Summary::from_slice(&[f64::NAN]).is_none());
        assert!(Summary::from_slice(&[f64::INFINITY]).is_none());
        let s = Summary::from_slice(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let many: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let lots = Summary::from_slice(&many).unwrap();
        assert!(lots.ci95() < few.ci95());
    }
}
