//! Measurement analysis for the TOB-SVD evaluation: summary statistics,
//! ASCII/markdown table rendering (the Table 1 regenerator prints
//! through here), and log–log growth-exponent fitting for the
//! communication-complexity experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fit;
mod stats;
mod table;

pub use fit::{fit_power_law, PowerLawFit};
pub use stats::Summary;
pub use table::Table;
