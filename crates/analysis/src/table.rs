//! ASCII/markdown table rendering.

/// A simple column-aligned table builder.
///
/// ```
/// use tobsvd_analysis::Table;
/// let mut t = Table::new(vec!["protocol", "latency"]);
/// t.row(vec!["TOB-SVD".into(), "6Δ".into()]);
/// let out = t.render();
/// assert!(out.contains("TOB-SVD"));
/// assert!(out.contains("| protocol |"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table { headers: headers.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a markdown-compatible aligned table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                line.push(' ');
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                line.push_str(" |");
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "y".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(vec!["h1", "h2"]);
        assert!(t.is_empty());
        let out = t.render();
        assert!(out.contains("h1"));
        assert_eq!(out.lines().count(), 2);
    }
}
