//! Power-law fitting for complexity measurements.
//!
//! The communication-complexity experiment measures message/byte counts
//! at several validator counts `n` and asks "does this grow like n² or
//! n³?". Fitting `y = c·nᵉ` by least squares on `log y = log c + e·log n`
//! answers with the exponent `e`.

/// Result of a power-law fit `y ≈ c·xᵉ`.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawFit {
    /// The exponent `e`.
    pub exponent: f64,
    /// The coefficient `c`.
    pub coefficient: f64,
    /// Coefficient of determination of the log–log regression.
    pub r_squared: f64,
}

/// Fits `y = c·xᵉ` through `(x, y)` samples by log–log least squares.
///
/// Returns `None` if fewer than two samples are given or any value is
/// non-positive (logs would be undefined).
///
/// ```
/// use tobsvd_analysis::fit_power_law;
/// let samples: Vec<(f64, f64)> = (2..10).map(|n| {
///     let n = n as f64;
///     (n, 3.0 * n * n * n)
/// }).collect();
/// let fit = fit_power_law(&samples).unwrap();
/// assert!((fit.exponent - 3.0).abs() < 1e-9);
/// ```
pub fn fit_power_law(samples: &[(f64, f64)]) -> Option<PowerLawFit> {
    if samples.len() < 2 || samples.iter().any(|(x, y)| *x <= 0.0 || *y <= 0.0) {
        return None;
    }
    let logs: Vec<(f64, f64)> = samples.iter().map(|(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None; // all x equal
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    // R² of the log-space regression.
    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r_squared = if ss_tot.abs() < 1e-12 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Some(PowerLawFit { exponent: slope, coefficient: intercept.exp(), r_squared })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_law() {
        let samples: Vec<(f64, f64)> =
            (1..8).map(|n| (n as f64, 5.0 * (n as f64).powi(2))).collect();
        let fit = fit_power_law(&samples).unwrap();
        assert!((fit.exponent - 2.0).abs() < 1e-9);
        assert!((fit.coefficient - 5.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn noisy_cubic_still_near_three() {
        let samples: Vec<(f64, f64)> = (2..12)
            .map(|n| {
                let n = n as f64;
                // ±10 % multiplicative noise, deterministic.
                let noise = 1.0 + 0.1 * ((n * 7.3).sin());
                (n, 2.0 * n.powi(3) * noise)
            })
            .collect();
        let fit = fit_power_law(&samples).unwrap();
        assert!((fit.exponent - 3.0).abs() < 0.2, "exponent = {}", fit.exponent);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(fit_power_law(&[]).is_none());
        assert!(fit_power_law(&[(1.0, 2.0)]).is_none());
        assert!(fit_power_law(&[(1.0, 2.0), (0.0, 3.0)]).is_none());
        assert!(fit_power_law(&[(1.0, -2.0), (2.0, 3.0)]).is_none());
        assert!(fit_power_law(&[(2.0, 3.0), (2.0, 5.0)]).is_none());
    }
}
