//! Shared measurement helpers for the benchmark harness.
//!
//! The `benches/` targets of this crate regenerate every table and
//! figure of the paper:
//!
//! | target | artifact |
//! |---|---|
//! | `table1` | Table 1 (all seven metric rows, six protocols) |
//! | `fig3_timeline` | Figure 3 (view/GA overlap timeline) |
//! | `comm_complexity` | Table 1 row 7 measured: O(L·n³) growth fit |
//! | `ablation_stabilization` | §2/§6.3 stabilization-period ablation |
//! | `ga_perf`, `sim_perf` | criterion micro-benchmarks |
//!
//! Run them with `cargo bench -p tobsvd-bench` (or a specific
//! `--bench` target).

#![forbid(unsafe_code)]

use tobsvd_adversary::SplitBrainNode;
use tobsvd_core::{TobConfig, TobReport, TobSimulationBuilder, TxWorkload};
use tobsvd_sim::WorstCaseDelay;
use tobsvd_types::{Delta, ValidatorId};

/// Even/odd split of the validator set — the two halves a split-brain
/// adversary equivocates toward.
pub fn halves(n: usize) -> (Vec<ValidatorId>, Vec<ValidatorId>) {
    let a = ValidatorId::all(n).filter(|v| v.index() % 2 == 0).collect();
    let b = ValidatorId::all(n).filter(|v| v.index() % 2 == 1).collect();
    (a, b)
}

/// Runs TOB-SVD with `byz` split-brain Byzantine validators (the last
/// `byz` validator ids), worst-case network delays, and the given
/// workload. The worst-case delay policy makes the latency numbers tight
/// against the paper's Δ accounting and keeps equivocation splits clean
/// (second-hand forwards land after the voting deadline).
///
/// Runs the paper's protocol verbatim — per-vote forwarding, no
/// certificates — so the Table 1 reproductions keep measuring the
/// published O(L·n³) behavior. See [`run_tobsvd_with`] for the
/// aggregation-plane variant.
pub fn run_tobsvd(
    n: usize,
    byz: usize,
    views: u64,
    seed: u64,
    workload: TxWorkload,
) -> TobReport {
    run_tobsvd_with(n, byz, views, seed, workload, false)
}

/// [`run_tobsvd`] with the quorum-certificate aggregation plane
/// switchable: `certificates = false` is the per-vote baseline (Table
/// 1's cubic fit), `true` defers vote relaying to phase boundaries and
/// ships quorate groups as certificates (the sub-cubic mode the
/// `comm_scaling` bench measures).
pub fn run_tobsvd_with(
    n: usize,
    byz: usize,
    views: u64,
    seed: u64,
    workload: TxWorkload,
    certificates: bool,
) -> TobReport {
    assert!(byz < n, "cannot corrupt everyone");
    let delta = Delta::default();
    let (half_a, half_b) = halves(n);
    let mut builder = TobSimulationBuilder::new(n)
        .views(views)
        .seed(seed)
        .delta(delta)
        .workload(workload)
        .certificates(certificates)
        .delay(Box::new(WorstCaseDelay));
    for v in ValidatorId::all(n).skip(n - byz) {
        let (a, b) = (half_a.clone(), half_b.clone());
        let cfg = TobConfig::new(n).with_delta(delta).with_certificates(certificates);
        builder = builder.byzantine(
            v,
            Box::new(move |store| Box::new(SplitBrainNode::new(v, cfg, store, a, b))),
        );
    }
    builder.run().expect("valid configuration")
}

/// Mean of a slice, `None` when empty.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves_partition() {
        let (a, b) = halves(7);
        assert_eq!(a.len() + b.len(), 7);
        for v in &a {
            assert!(!b.contains(v));
        }
    }

    #[test]
    fn fault_free_run_is_tight() {
        let report = run_tobsvd(5, 0, 6, 1, TxWorkload::PerView { count: 1, size: 32 });
        report.assert_safety();
        assert!(report.decided_blocks() >= 5);
    }

    #[test]
    fn split_brain_run_stays_safe() {
        let report = run_tobsvd(9, 4, 8, 2, TxWorkload::PerView { count: 1, size: 32 });
        report.assert_safety();
    }
}
