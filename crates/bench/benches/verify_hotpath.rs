//! Wall time and crypto-operation counts of the verification fast path.
//!
//! Re-runs the PR 4 `sync_traffic` workload (200 views, n = 16, seed 5,
//! 4 × 128 B transactions per view) and records, next to wall ms per
//! decided block, the new `Metrics` crypto counters: signature
//! verifications performed vs skipped via the per-validator verified-id
//! sets, and VRF verifications performed vs skipped via the per-view
//! memos. The pre-fast-path engine verified every delivered copy
//! (1 748 327 verifications for this workload — one per delivery — each
//! preceded by a fresh `Keypair::from_seed` derivation); the fast path
//! verifies each unique message id once per validator and skips the
//! rest, which the in-bench assertions pin machine-independently:
//!
//! * the two counters tile the deliveries exactly (every delivered copy
//!   is either verified or skipped — nothing escapes accounting);
//! * verifications are ≤ one per unique message id per validator
//!   (`sig_verifies` ≤ Σ per-validator unique ids, with equality in a
//!   fault-free run: no forgeries);
//! * duplicates dominate: at n = 16 the gossip fan-out makes ≥ 80 % of
//!   deliveries repeat sightings, all of which must skip crypto.
//!
//! Headline wall numbers land in `BENCH_verify_hotpath.json`.
//!
//! Run: `cargo bench -p tobsvd-bench --bench verify_hotpath`

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tobsvd_core::{TobReport, TobSimulationBuilder, TxWorkload};

const N: usize = 16;
const VIEWS: u64 = 200;
const TXS_PER_VIEW: usize = 4;
const TX_BYTES: usize = 128;

fn run_sweep(n: usize, views: u64) -> TobReport {
    TobSimulationBuilder::new(n)
        .views(views)
        .seed(5)
        .workload(TxWorkload::PerView { count: TXS_PER_VIEW, size: TX_BYTES })
        .run()
        .expect("fault-free sweep runs")
}

fn bench_verify_hotpath(c: &mut Criterion) {
    // Criterion samples a smaller horizon; the headline 200-view run is
    // a one-shot measurement below.
    let mut group = c.benchmark_group("verify_hotpath");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("fastpath", "n8_v40"), |b| {
        b.iter(|| run_sweep(8, 40).decided_blocks())
    });
    group.finish();

    let t0 = Instant::now();
    let report = run_sweep(N, VIEWS);
    let wall = t0.elapsed();
    let m = &report.report.metrics;
    let blocks = report.decided_blocks();
    assert!(blocks >= VIEWS - 2, "fault-free run must decide nearly every view");

    // Accounting is complete: every delivered copy either verified or
    // skipped (always-awake run: no buffered-at-wake double counting).
    assert_eq!(
        m.sig_verifies + m.sig_verify_skips,
        m.deliveries,
        "crypto counters must tile the deliveries"
    );
    // ≤ 1 verification per unique message id per validator, exactly.
    let unique_total: u64 = report
        .validators
        .iter()
        .flatten()
        .map(|s| s.crypto.verified_ids as u64)
        .sum();
    assert_eq!(
        m.sig_verifies, unique_total,
        "fault-free run: one verification per unique id per validator"
    );
    // The dedup saving is the point: duplicates dominate at this n.
    let skip_fraction = m.sig_verify_skips as f64 / m.deliveries as f64;
    assert!(
        skip_fraction >= 0.8,
        "≥80% of deliveries must skip crypto at n={N}, got {:.1}%",
        skip_fraction * 100.0
    );
    // VRF memoization: at most one verification per (sender, view) pair
    // per validator.
    let vrf_budget = (N as u64) * (N as u64) * (VIEWS + 2);
    assert!(
        m.vrf_verifies <= vrf_budget,
        "VRF verifies {} exceed the (sender, view) budget {vrf_budget}",
        m.vrf_verifies
    );

    println!(
        "verify_hotpath summary: n={N} views={VIEWS} decided_blocks={blocks} deliveries={} \
         sig_verifies={} sig_verify_skips={} skip_fraction={:.3} \
         vrf_verifies={} vrf_verify_skips={} \
         wall_ms={:.0} wall_ms_per_block={:.2}",
        m.deliveries,
        m.sig_verifies,
        m.sig_verify_skips,
        skip_fraction,
        m.vrf_verifies,
        m.vrf_verify_skips,
        wall.as_secs_f64() * 1e3,
        wall.as_secs_f64() * 1e3 / blocks as f64,
    );
}

criterion_group!(benches, bench_verify_hotpath);
criterion_main!(benches);
