//! Durable-storage plane costs: WAL append+fsync per decided block,
//! recovery (load + replay) time as a function of log length, and the
//! snapshot-cadence tradeoff.
//!
//! The write path mirrors the validator's `persist_decided` hook: per
//! decided block, one `Block` record plus one `Decided` marker are
//! appended and the batch is synced — so the measured cost is exactly
//! what one decision charges the storage plane. The recovery path is
//! the real restart path: `DurableStore::load` (CRC-checked frame
//! decode, torn-tail truncation) followed by `replay_into` on a fresh
//! `BlockStore`. Headline numbers land in `BENCH_wal.json`.
//!
//! Run: `cargo bench -p tobsvd-bench --bench wal_recovery`

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tobsvd_storage::{
    replay_into, BlockRecord, DurableStore, FileDurable, MemDurable, Snapshot, WalRecord,
};
use tobsvd_types::{BlockStore, Transaction, ValidatorId, View};

const TX_BYTES: usize = 128;
const N_VALIDATORS: u32 = 16;

/// A synthetic decided chain of `len` blocks beyond genesis,
/// parent-first, with one 128 B transaction per block — the WAL image
/// a validator deciding `len` views would persist.
fn chain_records(len: u64) -> Vec<BlockRecord> {
    let store = BlockStore::new();
    let mut parent = store.genesis();
    let mut records = Vec::with_capacity(len as usize);
    for i in 0..len {
        let proposer = ValidatorId::new((i as u32) % N_VALIDATORS);
        let view = View::new(i);
        let txs = vec![Transaction::synthetic(i, TX_BYTES)];
        let id = store
            .append(parent, proposer, view, txs.clone())
            .expect("synthetic chain extends");
        records.push(BlockRecord { parent, expected_id: id, proposer, view, txs });
        parent = id;
    }
    records
}

/// Writes `records` the way the validator does — per decided block one
/// `Block` + one `Decided` append and a sync — installing a full-chain
/// snapshot every `snapshot_every` decided blocks (0 = WAL only).
/// Returns (append+sync wall seconds, snapshots installed).
fn write_decided(
    backend: &mut dyn DurableStore,
    records: &[BlockRecord],
    snapshot_every: u64,
) -> (f64, u64) {
    let mut snapshots = 0u64;
    let t0 = Instant::now();
    for (i, rec) in records.iter().enumerate() {
        let len = i as u64 + 2; // decided length including genesis
        backend.append(&WalRecord::Block(rec.clone())).expect("append");
        backend
            .append(&WalRecord::Decided { tip: rec.expected_id, len })
            .expect("append marker");
        backend.sync().expect("sync");
        if snapshot_every > 0 && (i as u64 + 1) % snapshot_every == 0 {
            let snapshot = Snapshot {
                tip: rec.expected_id,
                len,
                blocks: records[..=i].to_vec(),
            };
            backend.install_snapshot(&snapshot).expect("snapshot");
            snapshots += 1;
        }
    }
    (t0.elapsed().as_secs_f64(), snapshots)
}

/// Loads and replays a durable image into a fresh store, asserting the
/// recovery reconstructs the full decided prefix. Returns wall seconds.
fn recover(backend: &mut dyn DurableStore, expect_len: u64) -> f64 {
    let t0 = Instant::now();
    let recovered = backend.load().expect("clean image loads");
    let store = BlockStore::new();
    let replayed = replay_into(&store, &recovered);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(replayed.decided_len, expect_len + 1, "full prefix must recover");
    assert_eq!(replayed.skipped, 0, "clean image must replay without skips");
    assert!(replayed.beyond.is_none(), "nothing should be left to fetch");
    wall
}

fn bench_wal_recovery(c: &mut Criterion) {
    let tmp = std::env::temp_dir().join(format!("tobsvd-wal-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);

    // Sampled micro-benchmarks: the per-decided-block append+fsync hit
    // on the file backend, and a 256-block recovery.
    let mut group = c.benchmark_group("wal_recovery");
    group.sample_size(10);
    let small = chain_records(64);
    group.bench_function(BenchmarkId::new("append_fsync", "64_blocks"), |b| {
        let mut i = 0u64;
        b.iter(|| {
            let dir = tmp.join(format!("sampled-{i}"));
            i += 1;
            let mut backend = FileDurable::open(&dir).expect("open");
            write_decided(&mut backend, &small, 0)
        })
    });
    let recovery_records = chain_records(256);
    let recovery_dir = tmp.join("sampled-recovery");
    let mut recovery_backend = FileDurable::open(&recovery_dir).expect("open");
    write_decided(&mut recovery_backend, &recovery_records, 0);
    group.bench_function(BenchmarkId::new("load_replay", "256_blocks"), |b| {
        b.iter(|| recover(&mut recovery_backend, 256))
    });
    group.finish();

    // Headline one-shot measurements for BENCH_wal.json.
    // (a) append/fsync cost and recovery time vs log length, WAL only.
    for len in [256u64, 1024, 4096] {
        let records = chain_records(len);
        let dir = tmp.join(format!("headline-{len}"));
        let mut backend = FileDurable::open(&dir).expect("open");
        let (write_s, _) = write_decided(&mut backend, &records, 0);
        let wal_bytes = std::fs::metadata(dir.join("wal.log")).map(|m| m.len()).unwrap_or(0);
        let recover_s = recover(&mut backend, len);
        println!(
            "wal_recovery length: blocks={len} wal_bytes={wal_bytes} \
             append_fsync_us_per_block={:.1} recovery_ms={:.2} \
             recovery_us_per_block={:.2}",
            write_s * 1e6 / len as f64,
            recover_s * 1e3,
            recover_s * 1e6 / len as f64,
        );
    }

    // (b) snapshot-cadence tradeoff at 4096 decided blocks: cadence
    // bounds the live WAL (truncated at each checkpoint) at the price
    // of rewriting the full chain snapshot.
    let records = chain_records(4096);
    for every in [0u64, 64, 512] {
        let dir = tmp.join(format!("cadence-{every}"));
        let mut backend = FileDurable::open(&dir).expect("open");
        let (write_s, snapshots) = write_decided(&mut backend, &records, every);
        let wal_bytes = std::fs::metadata(dir.join("wal.log")).map(|m| m.len()).unwrap_or(0);
        let snap_bytes =
            std::fs::metadata(dir.join("snapshot.bin")).map(|m| m.len()).unwrap_or(0);
        let recover_s = recover(&mut backend, 4096);
        if every > 0 {
            assert!(snapshots > 0, "cadence {every} must checkpoint");
            assert!(
                wal_bytes < 4096 / every * 2 * 1024 * 1024,
                "checkpoints must bound the live WAL"
            );
        }
        println!(
            "wal_recovery cadence: blocks=4096 snapshot_every={every} snapshots={snapshots} \
             wal_bytes={wal_bytes} snapshot_bytes={snap_bytes} \
             write_us_per_block={:.1} recovery_ms={:.2}",
            write_s * 1e6 / 4096.0,
            recover_s * 1e3,
        );
    }

    // (c) corruption corpus: torn tails and flipped bits must come back
    // as recoverable degradation — never a panic, never a failed load.
    let records = chain_records(128);
    {
        // Torn tail (WAL only): the final frame dies, the prefix holds.
        let mut backend = MemDurable::new();
        write_decided(&mut backend, &records, 0);
        backend.tear_wal_tail(7);
        let recovered = backend.load().expect("torn image still loads");
        assert!(recovered.torn_bytes > 0);
        let replayed = replay_into(&BlockStore::new(), &recovered);
        assert!(replayed.decided_len >= 128, "only the torn frame may be lost");
    }
    {
        // Bit flip mid-WAL (WAL only): decode stops at the bad frame,
        // the clean prefix replays.
        let mut backend = MemDurable::new();
        write_decided(&mut backend, &records, 0);
        let middle = backend.wal_bytes() / 2;
        backend.corrupt_wal_bit(middle, 3);
        let recovered = backend.load().expect("flipped image still loads");
        let replayed = replay_into(&BlockStore::new(), &recovered);
        assert!(
            replayed.decided_len >= 2 && replayed.decided_len < 129,
            "a clean strict prefix must survive the flip (got {})",
            replayed.decided_len
        );
    }
    {
        // Bit flip in the snapshot: the checkpoint is discarded and
        // recovery degrades to the WAL suffix plus the fetch plane.
        let mut backend = MemDurable::new();
        write_decided(&mut backend, &records, 32);
        backend.corrupt_snapshot_bit(backend.snapshot_bytes() / 2, 5);
        let recovered = backend.load().expect("corrupt snapshot still loads");
        assert!(recovered.torn_bytes > 0, "the discarded checkpoint is accounted");
        let replayed = replay_into(&BlockStore::new(), &recovered);
        assert!(replayed.decided_len >= 1, "replay never fails outright");
    }
    println!("wal_recovery corruption: torn/bit-flip corpus recovered without panics");

    let _ = std::fs::remove_dir_all(&tmp);
}

criterion_group!(benches, bench_wal_recovery);
criterion_main!(benches);
