//! Wire traffic of the delta-sync message plane vs full-chain inlining.
//!
//! One 200-view, n = 16 fault-free run with a realistic workload
//! (4 × 128 B transactions per view). Every delivered copy is charged
//! its exact wire length under the delta-sync codec
//! (`Metrics::bytes_delivered`) while the same run accumulates, for the
//! same deliveries, what the pre-delta-sync full-chain codec would have
//! shipped (`Metrics::inline_equiv_bytes`) — so one execution yields
//! both sides of the comparison, with identical schedules, elections
//! and gossip. Headline numbers land in `BENCH_sync_traffic.json`:
//! wire bytes per decided block, the savings ratio, and wall time per
//! decided block.
//!
//! Run: `cargo bench -p tobsvd-bench --bench sync_traffic`

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tobsvd_core::{TobReport, TobSimulationBuilder, TxWorkload};

const N: usize = 16;
const VIEWS: u64 = 200;
const TXS_PER_VIEW: usize = 4;
const TX_BYTES: usize = 128;

fn run_sweep(n: usize, views: u64) -> TobReport {
    TobSimulationBuilder::new(n)
        .views(views)
        .seed(5)
        .workload(TxWorkload::PerView { count: TXS_PER_VIEW, size: TX_BYTES })
        .run()
        .expect("fault-free sweep runs")
}

fn bench_sync_traffic(c: &mut Criterion) {
    // Criterion samples a smaller horizon (the full 200-view run is a
    // one-shot measurement below; sampling it 10x would take minutes).
    let mut group = c.benchmark_group("sync_traffic");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("delta_sync", "n8_v40"), |b| {
        b.iter(|| run_sweep(8, 40).decided_blocks())
    });
    group.finish();

    // The headline 200-view, n=16 measurement for
    // BENCH_sync_traffic.json.
    let t0 = Instant::now();
    let report = run_sweep(N, VIEWS);
    let wall = t0.elapsed();
    let m = &report.report.metrics;
    let blocks = report.decided_blocks();
    assert!(blocks >= VIEWS - 2, "fault-free run must decide nearly every view");
    let ratio = m.inline_equiv_bytes as f64 / m.bytes_delivered as f64;
    assert!(ratio >= 5.0, "delta-sync must save ≥5x at this scale, got {ratio:.1}x");
    println!(
        "sync_traffic summary: n={N} views={VIEWS} decided_blocks={blocks} deliveries={} \
         wire_bytes={} inline_equiv_bytes={} saving={ratio:.1}x \
         bytes_per_block={:.0} inline_bytes_per_block={:.0} \
         announce_bytes(log/proposal)={}/{} sync_bytes={} \
         wall_ms={:.0} wall_ms_per_block={:.2}",
        m.deliveries,
        m.bytes_delivered,
        m.inline_equiv_bytes,
        m.bytes_delivered as f64 / blocks as f64,
        m.inline_equiv_bytes as f64 / blocks as f64,
        m.log_bytes,
        m.proposal_bytes,
        m.sync_bytes(),
        wall.as_secs_f64() * 1e3,
        wall.as_secs_f64() * 1e3 / blocks as f64,
    );
}

criterion_group!(benches, bench_sync_traffic);
criterion_main!(benches);
