//! Regenerates the **communication complexity row of Table 1** by
//! measurement: runs fault-free TOB-SVD at increasing validator counts,
//! counts per-recipient message deliveries and nominal Table 1 bytes
//! (the pre-delta-sync full-log accounting, kept alive as
//! `Metrics::inline_equiv_bytes` — Table 1's O(L·n³) claim is about
//! shipping full `LOG` messages), and fits the growth exponent. The
//! *actual* wire bytes under delta sync (`bytes_delivered`) are printed
//! alongside: the n-exponent is the same ≈3 (gossip amplification), but
//! the L factor is gone — see BENCH_sync_traffic.json.
//!
//! TOB-SVD forwards every received message (up to two per sender per
//! instance), so per view: n original votes → n² direct deliveries →
//! each recipient forwards once → n³ forwarded deliveries: O(n³)
//! messages, O(L·n³) bytes — matching the paper's claim. The 1/x-MMR
//! baselines do not forward, which is what the `expected n^2` row
//! reflects (printed from the spec, not measured — they are not
//! implemented as full message-passing protocols; see DESIGN.md §4).

use tobsvd_analysis::{fit_power_law, Table};
use tobsvd_bench::run_tobsvd;
use tobsvd_core::TxWorkload;

fn main() {
    println!("=== Communication complexity (Table 1, last row) ===\n");
    let views = 6u64;
    let ns = [6usize, 9, 12, 16, 20, 26];
    // (n, deliveries, Table-1 nominal bytes, actual delta-sync bytes)
    let mut rows: Vec<(usize, u64, u64, u64)> = Vec::new();
    for &n in &ns {
        let report = run_tobsvd(n, 0, views, 21, TxWorkload::PerView { count: 2, size: 64 });
        report.assert_safety();
        let m = &report.report.metrics;
        rows.push((n, m.deliveries, m.inline_equiv_bytes, m.bytes_delivered));
    }

    let mut table =
        Table::new(vec!["n", "deliveries", "bytes (Table 1)", "bytes (delta sync)", "deliveries/view"]);
    for (n, msgs, bytes, wire) in &rows {
        table.row(vec![
            n.to_string(),
            msgs.to_string(),
            bytes.to_string(),
            wire.to_string(),
            (msgs / views).to_string(),
        ]);
    }
    println!("{}", table.render());

    let msg_samples: Vec<(f64, f64)> =
        rows.iter().map(|(n, m, _, _)| (*n as f64, *m as f64)).collect();
    let byte_samples: Vec<(f64, f64)> =
        rows.iter().map(|(n, _, b, _)| (*n as f64, *b as f64)).collect();
    let msg_fit = fit_power_law(&msg_samples).expect("fit");
    let byte_fit = fit_power_law(&byte_samples).expect("fit");

    println!(
        "message growth:  deliveries ≈ {:.2}·n^{:.2}   (R² = {:.4})",
        msg_fit.coefficient, msg_fit.exponent, msg_fit.r_squared
    );
    println!(
        "byte growth:     bytes     ≈ {:.2}·n^{:.2}   (R² = {:.4})",
        byte_fit.coefficient, byte_fit.exponent, byte_fit.r_squared
    );
    println!("\npaper claim: O(L·n³) with forwarding (MR/MMR2/GL/TOB-SVD); O(L·n²) for 1/3- and 1/4-MMR (no forwarding).");

    assert!(
        msg_fit.exponent > 2.5 && msg_fit.exponent < 3.5,
        "message exponent {:.2} not ≈ 3",
        msg_fit.exponent
    );
    assert!(msg_fit.r_squared > 0.98, "noisy fit: R² = {}", msg_fit.r_squared);
    println!("shape assertion passed: exponent ≈ 3.");
}
