//! Regenerates **Figure 3** of the paper: the timeline of views v−1, v,
//! v+1 with their Propose/Vote/Decide phases and the overlapping GA
//! instances `GA_{v−1}` and `GA_v`, then asserts every arrow of the
//! figure (which GA output feeds which TOB phase).

use tobsvd_core::ViewSchedule;
use tobsvd_types::{Delta, View};

fn main() {
    let delta = Delta::new(8);
    let sched = ViewSchedule::new(delta);
    let v = View::new(5);

    println!("=== Figure 3 reproduction — views v−1, v, v+1 (v = {}) ===\n", v.number());
    println!("{}", sched.render_timeline(v));

    println!("alignment checks (the arrows of Figure 3):");
    let prev = v.prev().expect("v ≥ 1");
    let checks: Vec<(String, bool)> = vec![
        (
            format!(
                "GA_{}(grade 0 output at {}) == Propose({}) at {}",
                prev.number(),
                sched.ga_output_time(prev, 0),
                v,
                sched.propose_time(v)
            ),
            sched.ga_output_time(prev, 0) == sched.propose_time(v),
        ),
        (
            format!(
                "GA_{}(grade 1 output at {}) == Vote({}) at {}",
                prev.number(),
                sched.ga_output_time(prev, 1),
                v,
                sched.vote_time(v)
            ),
            sched.ga_output_time(prev, 1) == sched.vote_time(v),
        ),
        (
            format!(
                "GA_{}(grade 2 output at {}) == Decide({}) at {}",
                prev.number(),
                sched.ga_output_time(prev, 2),
                v,
                sched.decide_time(v)
            ),
            sched.ga_output_time(prev, 2) == sched.decide_time(v),
        ),
        (
            format!(
                "input of GA_{} at {} == Vote({}) at {}",
                v.number(),
                sched.ga_start(v),
                v,
                sched.vote_time(v)
            ),
            sched.ga_start(v) == sched.vote_time(v),
        ),
        (
            format!(
                "GA_{} spans [{}, {}] = [t_v+Δ, t_v+6Δ]",
                v.number(),
                sched.ga_start(v),
                sched.ga_end(v)
            ),
            sched.ga_end(v) - sched.ga_start(v) == 5 * delta.ticks(),
        ),
        (
            {
                let (from, to) = sched.overlap(prev);
                format!(
                    "GA_{} and GA_{} overlap during [{}, {}] (exactly Δ)",
                    prev.number(),
                    v.number(),
                    from,
                    to
                )
            },
            {
                let (from, to) = sched.overlap(prev);
                to - from == delta.ticks()
                    && from == sched.vote_time(v)
                    && to == sched.decide_time(v)
            },
        ),
    ];

    let mut all_ok = true;
    for (desc, ok) in &checks {
        println!("  [{}] {}", if *ok { "ok" } else { "FAIL" }, desc);
        all_ok &= ok;
    }
    assert!(all_ok, "Figure 3 alignment violated");
    println!("\nall {} alignments hold.", checks.len());
}
