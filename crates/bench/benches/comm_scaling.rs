//! Communication scaling of the quorum-certificate aggregation plane
//! vs the per-vote forwarding baseline.
//!
//! The paper's protocol has every validator forward every received vote
//! (up to two per sender per instance): n votes → n² direct deliveries
//! → n³ forwarded deliveries per view, the O(L·n³) of Table 1. With the
//! aggregation plane on, vote relaying is deferred to the next phase
//! boundary and a quorate group crosses the wire as **one certificate**
//! (bitmap + 32-byte aggregate) instead of n per-receiver vote copies:
//! n certificate broadcasts → n² deliveries per view, so both
//! deliveries and wire bytes drop from cubic to quadratic growth in n.
//!
//! This bench measures both modes at increasing n on identical
//! fault-free schedules, asserts the headline acceptance bars in-bench
//! (≥ 5× fewer wire bytes per decided block at n = 128, sub-cubic
//! certificate-mode growth), and writes the sweep to
//! `BENCH_comm_scaling.json` at the repo root.
//!
//! Run: `cargo bench -p tobsvd-bench --bench comm_scaling`
//! CI smoke: `cargo bench -p tobsvd-bench --bench comm_scaling -- --smoke`
//! (certificate rows n = 64/128 plus the n = 128 baseline — enough to
//! check the 5× ratio and the growth shape without the n = 256 row).

use std::fmt::Write as _;
use std::time::Instant;

use tobsvd_analysis::{fit_power_law, Table};
use tobsvd_bench::run_tobsvd_with;
use tobsvd_core::TxWorkload;

const VIEWS: u64 = 3;
const SEED: u64 = 23;

#[derive(Clone, Copy)]
struct Row {
    certificates: bool,
    n: usize,
    decided_blocks: u64,
    deliveries: u64,
    bytes_delivered: u64,
    certificate_broadcasts: u64,
    certificate_bytes: u64,
    forwards: u64,
    agg_verifies: u64,
    agg_verify_skips: u64,
    wall_ms: f64,
}

fn measure(n: usize, certificates: bool) -> Row {
    let t0 = Instant::now();
    let report = run_tobsvd_with(
        n,
        0,
        VIEWS,
        SEED,
        TxWorkload::PerView { count: 2, size: 64 },
        certificates,
    );
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    report.assert_safety();
    let blocks = report.decided_blocks();
    assert!(blocks >= 1, "n={n} run must decide at least one block");
    let m = &report.report.metrics;
    Row {
        certificates,
        n,
        decided_blocks: blocks,
        deliveries: m.deliveries,
        bytes_delivered: m.bytes_delivered,
        certificate_broadcasts: m.certificate_broadcasts,
        certificate_bytes: m.certificate_bytes,
        forwards: m.forwards,
        agg_verifies: m.agg_verifies,
        agg_verify_skips: m.agg_verify_skips,
        wall_ms,
    }
}

impl Row {
    fn bytes_per_block(&self) -> f64 {
        self.bytes_delivered as f64 / self.decided_blocks as f64
    }

    fn ms_per_block(&self) -> f64 {
        self.wall_ms / self.decided_blocks as f64
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("=== Communication scaling: certificates vs per-vote baseline ===\n");

    // Baseline (per-vote forwarding, the paper's protocol) is cubic, so
    // its large-n rows are the expensive ones; certificate mode scales
    // quadratically and affords n = 256.
    let (cert_ns, base_ns): (Vec<usize>, Vec<usize>) =
        if smoke { (vec![64, 128], vec![128]) } else { (vec![32, 64, 128, 256], vec![32, 64, 128]) };

    let cert_rows: Vec<Row> = cert_ns.iter().map(|&n| measure(n, true)).collect();
    let base_rows: Vec<Row> = base_ns.iter().map(|&n| measure(n, false)).collect();

    let mut table = Table::new(vec![
        "mode",
        "n",
        "deliveries",
        "wire bytes",
        "bytes/block",
        "ms/block",
        "certs",
        "agg skip/verify",
    ]);
    for row in base_rows.iter().chain(&cert_rows) {
        table.row(vec![
            if row.certificates { "certificates" } else { "per-vote" }.to_string(),
            row.n.to_string(),
            row.deliveries.to_string(),
            row.bytes_delivered.to_string(),
            format!("{:.0}", row.bytes_per_block()),
            format!("{:.1}", row.ms_per_block()),
            row.certificate_broadcasts.to_string(),
            format!("{}/{}", row.agg_verify_skips, row.agg_verifies),
        ]);
    }
    println!("{}", table.render());

    // --- Acceptance bar 1: ≥ 5× fewer wire bytes per decided block at
    // n = 128 than the per-vote baseline.
    let cert_128 = cert_rows.iter().find(|r| r.n == 128).expect("n=128 certificate row");
    let base_128 = base_rows.iter().find(|r| r.n == 128).expect("n=128 baseline row");
    let byte_ratio = base_128.bytes_per_block() / cert_128.bytes_per_block();
    let ms_ratio = base_128.ms_per_block() / cert_128.ms_per_block();
    println!(
        "n=128: bytes/block {:.0} (per-vote) vs {:.0} (certificates) — {byte_ratio:.1}x fewer; \
         ms/block {:.1} vs {:.1} — {ms_ratio:.1}x faster",
        base_128.bytes_per_block(),
        cert_128.bytes_per_block(),
        base_128.ms_per_block(),
        cert_128.ms_per_block(),
    );
    assert!(
        byte_ratio >= 5.0,
        "certificates must cut wire bytes per decided block ≥5x at n=128, got {byte_ratio:.1}x"
    );

    // --- Acceptance bar 2: certificate-mode growth is sub-cubic.
    // Doubling n under cubic growth multiplies bytes by 8; quadratic by
    // 4. Gate each doubling at ≤ 6x (and the overall fit, when the full
    // sweep ran, at exponent < 2.6).
    for pair in cert_rows.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let step = b.bytes_per_block() / a.bytes_per_block();
        let doublings = ((b.n / a.n) as f64).log2();
        let per_doubling = step.powf(1.0 / doublings);
        println!(
            "certificates n={} → n={}: bytes/block x{step:.1} ({per_doubling:.1}x per doubling)",
            a.n, b.n
        );
        assert!(
            per_doubling <= 6.0,
            "certificate mode must grow sub-cubically: n={}→{} scaled {per_doubling:.1}x per doubling",
            a.n,
            b.n
        );
    }
    let cert_fit = fit_power_law(
        &cert_rows.iter().map(|r| (r.n as f64, r.bytes_per_block())).collect::<Vec<_>>(),
    )
    .expect("fit");
    println!(
        "certificate byte growth: bytes/block ≈ {:.2}·n^{:.2} (R² = {:.4})",
        cert_fit.coefficient, cert_fit.exponent, cert_fit.r_squared
    );
    if !smoke {
        assert!(
            cert_fit.exponent < 2.6,
            "certificate-mode exponent {:.2} not sub-cubic",
            cert_fit.exponent
        );
        let base_fit = fit_power_law(
            &base_rows.iter().map(|r| (r.n as f64, r.bytes_per_block())).collect::<Vec<_>>(),
        )
        .expect("fit");
        println!(
            "per-vote byte growth:    bytes/block ≈ {:.2}·n^{:.2} (R² = {:.4})",
            base_fit.coefficient, base_fit.exponent, base_fit.r_squared
        );
        assert!(
            base_fit.exponent > cert_fit.exponent + 0.5,
            "baseline exponent {:.2} must clearly dominate certificate exponent {:.2}",
            base_fit.exponent,
            cert_fit.exponent
        );
        write_json(&cert_rows, &base_rows, byte_ratio, cert_fit.exponent, base_fit.exponent);
    }
    println!("acceptance passed: ≥5x at n=128, sub-cubic certificate growth.");
}

fn rows_json(rows: &[Row]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{ \"n\": {}, \"decided_blocks\": {}, \"deliveries\": {}, \"wire_bytes\": {}, \
             \"bytes_per_block\": {:.0}, \"wall_ms_per_block\": {:.2}, \
             \"certificate_broadcasts\": {}, \"certificate_bytes\": {}, \"forwards\": {}, \
             \"agg_verifies\": {}, \"agg_verify_skips\": {} }}",
            r.n,
            r.decided_blocks,
            r.deliveries,
            r.bytes_delivered,
            r.bytes_per_block(),
            r.ms_per_block(),
            r.certificate_broadcasts,
            r.certificate_bytes,
            r.forwards,
            r.agg_verifies,
            r.agg_verify_skips,
        );
    }
    out.push(']');
    out
}

fn write_json(
    cert_rows: &[Row],
    base_rows: &[Row],
    byte_ratio_128: f64,
    cert_exponent: f64,
    base_exponent: f64,
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_comm_scaling.json");
    let json = format!(
        "{{\n  \"bench\": \"comm_scaling\",\n  \"description\": \"Quorum-certificate aggregation \
         plane vs per-vote forwarding: fault-free sweeps over n on identical schedules \
         ({views} views, 2 x 64B txs per view, worst-case delays). Per-vote forwarding is the \
         paper's O(L*n^3); certificates defer vote relaying to phase boundaries and ship quorate \
         groups as one bitmap+aggregate message, collapsing per-view traffic to O(n^2). Re-run: \
         cargo bench -p tobsvd-bench --bench comm_scaling\",\n  \
         \"parameters\": {{ \"views\": {views}, \"txs_per_view\": 2, \"tx_bytes\": 64, \
         \"seed\": {seed} }},\n  \
         \"results\": {{\n    \"per_vote_baseline\": {base},\n    \"certificates\": {cert},\n    \
         \"byte_ratio_at_n128\": {byte_ratio_128:.1},\n    \
         \"per_vote_byte_exponent\": {base_exponent:.2},\n    \
         \"certificate_byte_exponent\": {cert_exponent:.2},\n    \
         \"acceptance\": \"ratio >= 5x at n=128 required, certificate growth sub-cubic \
         (exponent < 2.6) required; both asserted in-bench\"\n  }}\n}}\n",
        views = VIEWS,
        seed = SEED,
        base = rows_json(base_rows),
        cert = rows_json(cert_rows),
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}
