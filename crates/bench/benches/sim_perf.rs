//! Criterion micro-benchmarks of the whole-protocol simulation and the
//! cryptographic substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tobsvd_bench::run_tobsvd;
use tobsvd_core::TxWorkload;
use tobsvd_crypto::sha256;

fn bench_tobsvd_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("tobsvd_run");
    group.sample_size(10);
    for n in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("views6", n), &n, |b, &n| {
            b.iter(|| {
                let report =
                    run_tobsvd(n, 0, 6, 9, TxWorkload::PerView { count: 2, size: 64 });
                report.decided_blocks()
            })
        });
    }
    group.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("bytes", size), &size, |b, _| {
            b.iter(|| sha256(&data))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tobsvd_run, bench_sha256);
criterion_main!(benches);
