//! Ablation of the **2Δ stabilization period** (paper §2 and §6.3).
//!
//! TOB-SVD needs the (5Δ, 2Δ, ½)-sleepy model: a validator that votes in
//! view v must have been awake since `t_v − Δ` (= `t_{v−1} + 3Δ`, the 2Δ
//! snapshot of `GA_{v−1}`), otherwise it has no grade-1 lock and must
//! skip the vote. This bench runs three participation patterns over the
//! same network and workload:
//!
//! * **stable** — everyone always awake (T_s trivially satisfied);
//! * **blink@−Δ** — a group naps exactly around `t_v − Δ` each view,
//!   breaking the 2Δ stability window while staying awake ≈ 90 % of the
//!   time — their votes (and thus voting-phase counts) collapse;
//! * **blink@+3Δ·(idle)** — the same nap length placed in the idle slot
//!   `[t_v + 2Δ + 1, t_v + 3Δ)` … which also covers no snapshot, chosen
//!   to show that *where* you sleep, not how much, is what matters.
//!
//! The measured votes-per-view of the napping group quantifies the
//! stabilization requirement.

use tobsvd_analysis::Table;
use tobsvd_core::{TobSimulationBuilder, TxWorkload};
use tobsvd_sim::{ParticipationSchedule, WorstCaseDelay};
use tobsvd_types::{Delta, Time, ValidatorId};

fn blink_schedule(
    n: usize,
    nappers: &[ValidatorId],
    views: u64,
    delta: Delta,
    offset_deltas: u64,
) -> ParticipationSchedule {
    let d = delta.ticks();
    let mut sched = ParticipationSchedule::always_awake(n);
    for v in nappers {
        let mut awake = Vec::new();
        let mut cursor = 0u64;
        for view in 0..=views {
            // Nap of 2 ticks centered on t_view + offset_deltas·Δ.
            let nap_start = view * 4 * d + offset_deltas * d;
            let nap_end = nap_start + 2;
            if nap_start > cursor {
                awake.push((Time::new(cursor), Time::new(nap_start)));
            }
            cursor = nap_end;
        }
        awake.push((Time::new(cursor), Time::new((views + 2) * 4 * d)));
        sched.set_intervals(*v, awake);
    }
    sched
}

fn run(name: &str, schedule: Option<ParticipationSchedule>, n: usize, views: u64) -> (String, Vec<String>) {
    let mut b = TobSimulationBuilder::new(n)
        .views(views)
        .seed(5)
        .workload(TxWorkload::PerView { count: 1, size: 32 })
        .delay(Box::new(WorstCaseDelay));
    if let Some(s) = schedule {
        b = b.participation(s);
    }
    let report = b.run().expect("runs");
    report.assert_safety();
    let napper_votes: f64 = report
        .validators
        .iter()
        .flatten()
        .filter(|s| s.validator.index() < 2)
        .map(|s| s.votes_cast as f64)
        .sum::<f64>()
        / 2.0;
    let stable_votes: f64 = report
        .validators
        .iter()
        .flatten()
        .filter(|s| s.validator.index() >= 2)
        .map(|s| s.votes_cast as f64)
        .sum::<f64>()
        / (n - 2) as f64;
    (
        name.to_string(),
        vec![
            name.to_string(),
            format!("{:.2}", napper_votes / views as f64),
            format!("{:.2}", stable_votes / views as f64),
            report.decided_blocks().to_string(),
        ],
    )
}

fn main() {
    println!("=== Stabilization-period ablation (T_s = 2Δ, §2/§6.3) ===\n");
    let n = 7;
    let views = 24u64;
    let delta = Delta::default();
    let nappers: Vec<ValidatorId> = (0..2).map(ValidatorId::new).collect();

    let mut table = Table::new(vec![
        "pattern",
        "napper votes/view",
        "stable votes/view",
        "blocks decided",
    ]);

    let (_, row) = run("stable (always awake)", None, n, views);
    table.row(row);

    // Nap around t_v − Δ = t_{v−1} + 3Δ: kills the 2Δ snapshot of
    // GA_{v−1} → no lock → no vote. Offset 3Δ within the *previous* view
    // == offset 3 with the nap indexed per view.
    let sched = blink_schedule(n, &nappers, views, delta, 3);
    let (_, row) = run("blink@t_v−Δ (breaks T_s=2Δ)", Some(sched), n, views);
    table.row(row);

    // Same nap length in a harmless slot: just after the decide phase.
    let mut harmless = ParticipationSchedule::always_awake(n);
    {
        let d = delta.ticks();
        for v in &nappers {
            let mut awake = Vec::new();
            let mut cursor = 0u64;
            for view in 0..=views {
                let nap_start = view * 4 * d + 2 * d + 2; // inside (2Δ, 3Δ)
                let nap_end = nap_start + 2;
                if nap_start > cursor {
                    awake.push((Time::new(cursor), Time::new(nap_start)));
                }
                cursor = nap_end;
            }
            awake.push((Time::new(cursor), Time::new((views + 2) * 4 * d)));
            harmless.set_intervals(*v, awake);
        }
    }
    let (_, row) = run("blink@(2Δ,3Δ) (harmless slot)", Some(harmless), n, views);
    table.row(row);

    println!("{}", table.render());
    println!("reading: napping across the 2Δ-snapshot boundary suppresses the group's votes");
    println!("(no lock → vote skipped), while the same nap in a non-snapshot slot costs nothing —");
    println!("the stabilization period is about *which* 2Δ window is stable, exactly as §6.3 argues.");
}
