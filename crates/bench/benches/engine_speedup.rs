//! Tick-loop vs event-driven engine on sparse horizons.
//!
//! The scenario the event-driven rewrite targets: a long horizon where
//! something happens only every ~Δ ticks (Δ = 1000 here — one message
//! burst per phase boundary, silence in between). The tick loop pays
//! O(horizon); the event-driven engine pays O(events + phases). The
//! measured ratio is the headline number recorded in
//! `BENCH_engine_speedup.json`; the determinism suites prove the two
//! modes produce byte-identical transcripts, so the speedup is free.
//!
//! Run: `cargo bench -p tobsvd-bench --bench engine_speedup`

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tobsvd_crypto::Keypair;
use tobsvd_sim::{AdvanceMode, Context, Node, SimConfig, Simulation};
use tobsvd_types::{Delta, InstanceId, Log, Payload, SignedMessage, Time, ValidatorId};

const DELTA: u64 = 1000;
const HORIZON: u64 = 500_000;
const N: usize = 4;

/// Broadcasts one pre-signed LOG at every 8th phase boundary — a sparse
/// but non-trivial traffic pattern (messages exist, so the heap is never
/// empty, but 7 of 8 phase gaps are pure silence). The message is signed
/// once up front so the measurement is engine overhead, not crypto.
struct SparseBroadcaster {
    msg: SignedMessage,
    phases: u64,
    received: u64,
}

impl Node for SparseBroadcaster {
    fn on_phase(&mut self, ctx: &mut Context) {
        self.phases += 1;
        if self.phases % 8 == 1 {
            ctx.broadcast(self.msg);
        }
    }
    fn on_message(&mut self, _msg: &SignedMessage, _ctx: &mut Context) {
        self.received += 1;
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Signs the N broadcast messages once, against a fresh store's genesis
/// (genesis is content-addressed, so the log resolves in every
/// per-iteration store). Keeping crypto out of the timed loop means the
/// samples measure engine overhead, not key derivation.
fn presigned_messages() -> Vec<SignedMessage> {
    let store = tobsvd_types::BlockStore::new();
    let genesis = Log::genesis(&store);
    ValidatorId::all(N)
        .map(|v| {
            let kp = Keypair::from_seed(v.key_seed());
            SignedMessage::sign(&kp, v, Payload::Log { instance: InstanceId(0), log: genesis })
        })
        .collect()
}

fn build(mode: AdvanceMode, seed: u64, msgs: &[SignedMessage]) -> Simulation {
    let cfg = SimConfig::new(N).with_seed(seed).with_delta(Delta::new(DELTA));
    let mut b = Simulation::builder(cfg).advance_mode(mode);
    for v in ValidatorId::all(N) {
        b = b.node(
            v,
            Box::new(SparseBroadcaster { msg: msgs[v.index()], phases: 0, received: 0 }),
        );
    }
    b.build()
}

fn run(mode: AdvanceMode, seed: u64, msgs: &[SignedMessage]) -> (u64, u64) {
    let mut sim = build(mode, seed, msgs);
    sim.run_until(Time::new(HORIZON));
    (sim.metrics().deliveries, sim.metrics().executed_ticks)
}

fn bench_sparse_horizon(c: &mut Criterion) {
    let msgs = presigned_messages();
    // Sanity first: both modes see the same traffic, and the event-driven
    // engine touches a small fraction of the ticks.
    let (ev_deliveries, ev_executed) = run(AdvanceMode::EventDriven, 7, &msgs);
    let (tl_deliveries, tl_executed) = run(AdvanceMode::TickLoop, 7, &msgs);
    assert_eq!(ev_deliveries, tl_deliveries, "modes diverged");
    assert!(ev_executed * 10 <= tl_executed, "not sparse enough to matter");

    let mut group = c.benchmark_group("sparse_horizon");
    group.sample_size(10);
    for (mode, name) in
        [(AdvanceMode::TickLoop, "tick_loop"), (AdvanceMode::EventDriven, "event_driven")]
    {
        group.bench_with_input(
            BenchmarkId::new(name, format!("d{DELTA}_h{HORIZON}")),
            &mode,
            |b, &mode| b.iter(|| run(mode, 7, &msgs).0),
        );
    }
    group.finish();

    // One straight head-to-head measurement so the speedup appears in
    // the output (and can be pasted into BENCH_engine_speedup.json).
    let t0 = Instant::now();
    let _ = run(AdvanceMode::TickLoop, 9, &msgs);
    let tick_loop = t0.elapsed();
    let t1 = Instant::now();
    let _ = run(AdvanceMode::EventDriven, 9, &msgs);
    let event_driven = t1.elapsed();
    println!(
        "sparse_horizon summary: tick_loop={:.3}ms event_driven={:.3}ms speedup={:.1}x \
         executed_ticks {} -> {}",
        tick_loop.as_secs_f64() * 1e3,
        event_driven.as_secs_f64() * 1e3,
        tick_loop.as_secs_f64() / event_driven.as_secs_f64().max(f64::EPSILON),
        tl_executed,
        ev_executed,
    );
}

criterion_group!(benches, bench_sparse_horizon);
criterion_main!(benches);
