//! Model-checker exploration throughput.
//!
//! Measures randomized executions per second through the full
//! `tobsvd-check` pipeline — per-index RNG derivation, scenario
//! sampling, a complete invariant-instrumented simulation, verdict
//! condensation and fingerprint folding — for a serial run and an
//! all-cores run (on multi-core hosts the ratio is the scaling factor;
//! results are bit-identical either way, which the bench asserts).
//!
//! Run: `cargo bench -p tobsvd-bench --bench checker_throughput`

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tobsvd_check::{checker, CheckConfig, ScenarioSpace};

const EXECUTIONS: usize = 200;

fn space() -> ScenarioSpace {
    ScenarioSpace { n: (4, 6), deltas: vec![2, 4], views: (3, 6), ..ScenarioSpace::default() }
}

fn bench_checker_throughput(c: &mut Criterion) {
    // Sanity: verdicts must be thread-count independent before we
    // compare timings of the two configurations.
    let serial = checker::run(&CheckConfig::new(EXECUTIONS, 5).space(space()).threads(1));
    let parallel = checker::run(&CheckConfig::new(EXECUTIONS, 5).space(space()).threads(0));
    assert_eq!(serial.fingerprint, parallel.fingerprint, "thread count leaked");
    assert!(serial.all_passed(), "compliant exploration must pass: {:?}", serial.failures);

    let mut group = c.benchmark_group("checker_throughput");
    group.sample_size(10);
    for (threads, name) in [(1usize, "serial"), (0usize, "all_cores")] {
        group.bench_with_input(
            BenchmarkId::new(name, format!("x{EXECUTIONS}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    checker::run(&CheckConfig::new(EXECUTIONS, 5).space(space()).threads(threads))
                        .fingerprint
                })
            },
        );
    }
    group.finish();

    // Headline executions/second for trend tracking.
    let t0 = Instant::now();
    let report = checker::run(&CheckConfig::new(EXECUTIONS, 9).space(space()).threads(0));
    let wall = t0.elapsed();
    println!(
        "checker_throughput summary: {} executions in {:.3}s = {:.0} exec/s \
         ({} decided blocks, fingerprint {:016x})",
        report.executions,
        wall.as_secs_f64(),
        report.executions as f64 / wall.as_secs_f64().max(f64::EPSILON),
        report.total_decided_blocks,
        report.fingerprint,
    );
}

criterion_group!(benches, bench_checker_throughput);
criterion_main!(benches);
