//! Criterion micro-benchmarks of the Graded Agreement machinery:
//! one full GA instance at several validator counts, and the
//! support-counting hot path on deep chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tobsvd_ga::support::highest_supported;
use tobsvd_ga::{GaHarness, GaKind};
use tobsvd_sim::SimConfig;
use tobsvd_types::{BlockStore, Log, ValidatorId, View};

fn bench_ga_instance(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_instance");
    for n in [8usize, 16, 32] {
        for kind in [GaKind::Two, GaKind::Three] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        let cfg = SimConfig::new(n).with_seed(3);
                        let mut h = GaHarness::new(cfg, kind);
                        let log = Log::genesis(h.store()).extend_empty(
                            h.store(),
                            ValidatorId::new(0),
                            View::new(1),
                        );
                        for v in ValidatorId::all(n) {
                            h.input(v, log);
                        }
                        let result = h.run();
                        assert!(result.outputs[0][0].is_some());
                        result.report.metrics.deliveries
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_support_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("support_counting");
    for depth in [16u64, 128, 1024] {
        // A chain of `depth` blocks with a shallow fork at the tip; all
        // validators' logs share the long prefix — the LCA optimization's
        // target shape.
        let store = BlockStore::new();
        let mut log = Log::genesis(&store);
        for i in 0..depth {
            log = log.extend_empty(&store, ValidatorId::new(0), View::new(i + 1));
        }
        let fork = log
            .prefix(log.len() - 1, &store)
            .unwrap()
            .extend_empty(&store, ValidatorId::new(1), View::new(depth + 1));
        let entries: Vec<(ValidatorId, Log)> = (0..20)
            .map(|i| {
                let l = if i % 3 == 0 { fork } else { log };
                (ValidatorId::new(i), l)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("chain_depth", depth), &depth, |b, _| {
            b.iter(|| highest_supported(&entries, 20, &store))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ga_instance, bench_support_counting);
criterion_main!(benches);
