//! Ingestion-plane bench: submitted→decided latency and sustained
//! throughput of the client front door under an open-loop million-user
//! workload, at several concurrent-socket tiers.
//!
//! Per tier a real 3-node TCP cluster runs while a few driver threads
//! multiplex hundreds of nonblocking [`ClientConn`] sockets each —
//! mirroring how the readiness-polled ingest loop on the node side
//! serves them all from one thread. Arrivals come from the same
//! deterministic [`OpenLoopWorkload`] generator the simulator uses
//! (Zipf-skewed million-user population with bursts); every accepted
//! transaction id is joined against the node's decision stream
//! ([`ClusterReport::decided_tx_ticks`]) for exact per-tx latency.
//!
//! In-bench assertions (the acceptance gates, not just measurements):
//!
//! * the top tier holds ≥ 1000 concurrent client sockets on one node —
//!   impossible under the removed thread-per-connection layout;
//! * per-socket buffer overhead stays within budget
//!   (`buffer_bytes_peak ≤ sessions_peak × 16 KiB`);
//! * a deliberately saturated tier (tiny mempool capacity, high rate)
//!   degrades gracefully: explicit `Busy` shedding, pending bounded by
//!   capacity, and consensus never stalls.
//!
//! Headline numbers land in `BENCH_ingest.json` at the repo root.
//!
//! Run: `cargo bench -p tobsvd-bench --bench ingest`
//! CI smoke: `cargo bench -p tobsvd-bench --bench ingest -- --smoke`

use std::time::Duration;

use tobsvd_core::LatencyStats;
use tobsvd_runtime::{ClientConn, ClusterConfig, LocalCluster, RunningCluster, TickClock};
use tobsvd_sim::{AdmissionPolicy, OpenLoopSpec, OpenLoopWorkload};
use tobsvd_types::{client::AckStatus, Time, TxId, ValidatorId};

/// Budget on mean buffered bytes per live session at the observed peak.
const PER_SOCKET_BUDGET: u64 = 16 * 1024;

const TICK: Duration = Duration::from_millis(8);

#[derive(Default)]
struct DriverResult {
    /// (tx id, submission tick) of every queued submission.
    submits: Vec<(TxId, u64)>,
    accepted: u64,
    busy: u64,
    rate_limited: u64,
    duplicate: u64,
    closed_conns: u64,
}

/// One driver thread: owns `conns` sockets, generates arrivals from its
/// own open-loop stream, routes each arrival to a socket by user id and
/// pumps acks — the whole population on a handful of OS threads.
fn drive(
    addr: std::net::SocketAddr,
    clock: TickClock,
    run_ticks: u64,
    conns_n: usize,
    spec: OpenLoopSpec,
    seed: u64,
    tag: u8,
) -> DriverResult {
    let mut out = DriverResult::default();
    // Retry refused connects: a thousand near-simultaneous SYNs can
    // overflow the listener's accept backlog before the readiness loop
    // drains it — real clients back off and retry, so does the bench.
    let connect_retry = |client: u64| -> ClientConn {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match ClientConn::connect(addr, client) {
                Ok(conn) => return conn,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("bench client connect: {e}"),
            }
        }
    };
    let mut conns: Vec<ClientConn> =
        (0..conns_n).map(|c| connect_retry((u64::from(tag) << 32) | c as u64)).collect();
    let mut gen = OpenLoopWorkload::new(spec, seed);
    // Stop submitting with 3Δ of slack so the tail can still decide.
    let submit_end = run_ticks.saturating_sub(12);
    let pump = |conns: &mut [ClientConn], out: &mut DriverResult| {
        for conn in conns.iter_mut() {
            if conn.is_closed() {
                continue;
            }
            match conn.pump() {
                Ok(acks) => {
                    for ack in acks {
                        match ack.status {
                            AckStatus::Accepted => out.accepted += 1,
                            AckStatus::Busy => out.busy += 1,
                            AckStatus::RateLimited => out.rate_limited += 1,
                            AckStatus::Duplicate => out.duplicate += 1,
                        }
                    }
                }
                Err(_) => out.closed_conns += 1,
            }
        }
    };
    for tick in 0..submit_end {
        clock.wait_for(tick);
        for arrival in gen.tick(Time::new(tick)) {
            let slot = (arrival.user % conns_n as u64) as usize;
            let Some(conn) = conns.get_mut(slot) else { continue };
            if conn.is_closed() {
                continue;
            }
            // Disambiguate identical (user, nonce) streams across driver
            // threads: each thread's payloads carry its tag byte.
            let mut payload = arrival.tx.payload().to_vec();
            payload.push(tag);
            let id = conn.submit(arrival.fee, payload);
            out.submits.push((id, clock.now_tick().ticks()));
        }
        pump(&mut conns, &mut out);
    }
    // Keep draining acks until the run ends.
    while clock.now_tick().ticks() < run_ticks {
        pump(&mut conns, &mut out);
        std::thread::sleep(Duration::from_millis(2));
    }
    pump(&mut conns, &mut out);
    out.closed_conns += conns.iter().filter(|c| c.is_closed()).count() as u64;
    out
}

struct TierRow {
    label: String,
    clients: usize,
    submitted: u64,
    accepted: u64,
    busy: u64,
    rate_limited: u64,
    decided_txs: u64,
    sustained_tx_s: f64,
    latency_ms: Option<LatencyStats>,
    sessions_peak: u64,
    buffer_bytes_peak: u64,
    pending_peak: u64,
    evicted: u64,
    slow_client_closes: u64,
    wall_s: f64,
}

impl TierRow {
    fn json(&self) -> String {
        let (p50, p99, mean, max) = self
            .latency_ms
            .map_or((-1.0, -1.0, -1.0, -1.0), |l| (l.p50, l.p99, l.mean, l.max));
        format!(
            "{{ \"tier\": \"{}\", \"client_sockets\": {}, \"submitted\": {}, \
             \"accepted\": {}, \"busy\": {}, \"rate_limited\": {}, \"decided_txs\": {}, \
             \"sustained_tx_s\": {:.1}, \"latency_ms\": {{ \"p50\": {:.1}, \"p99\": {:.1}, \
             \"mean\": {:.1}, \"max\": {:.1} }}, \"sessions_peak\": {}, \
             \"buffer_bytes_peak\": {}, \"pending_peak\": {}, \"evicted\": {}, \
             \"slow_client_closes\": {}, \"wall_s\": {:.2} }}",
            self.label,
            self.clients,
            self.submitted,
            self.accepted,
            self.busy,
            self.rate_limited,
            self.decided_txs,
            self.sustained_tx_s,
            p50,
            p99,
            mean,
            max,
            self.sessions_peak,
            self.buffer_bytes_peak,
            self.pending_peak,
            self.evicted,
            self.slow_client_closes,
            self.wall_s,
        )
    }
}

fn run_tier(
    label: &str,
    clients: usize,
    drivers: usize,
    rate_milli_total: u64,
    views: u64,
    admission: Option<AdmissionPolicy>,
) -> TierRow {
    // Warm-up before tick 0 scales with the fleet: on a small box the
    // connect storm can overflow the accept backlog, and a dropped SYN
    // retransmits after ~1 s — the run clock must not start (let alone
    // finish) while sockets are still ramping.
    let warmup = Duration::from_millis(250 + 6 * clients as u64);
    let mut cfg = ClusterConfig::new(3).views(views).tick(TICK).warmup(warmup);
    if let Some(policy) = admission {
        cfg = cfg.admission(policy);
    }
    let t0 = std::time::Instant::now();
    let cluster: RunningCluster = LocalCluster::spawn(cfg).expect("cluster spawns");
    let v0 = ValidatorId::new(0);
    let addr = cluster.addr_of(v0).expect("node 0 listens");
    let clock = cluster.clock();
    let run_ticks = cluster.run_ticks();

    let spec = OpenLoopSpec {
        rate_milli: rate_milli_total / drivers as u64,
        burst_every: 40,
        burst_len: 8,
        burst_mult: 4,
        ..OpenLoopSpec::default()
    };
    let conns_per = clients / drivers;
    let handles: Vec<std::thread::JoinHandle<DriverResult>> = (0..drivers)
        .map(|t| {
            let conns_n = if t == 0 { clients - conns_per * (drivers - 1) } else { conns_per };
            std::thread::Builder::new()
                .name(format!("ingest-driver-{t}"))
                .spawn(move || {
                    drive(addr, clock, run_ticks, conns_n, spec, 0xbe7c + t as u64, t as u8)
                })
                .expect("spawn driver")
        })
        .collect();
    let results: Vec<DriverResult> =
        handles.into_iter().map(|h| h.join().expect("driver thread")).collect();
    let report = cluster.join().expect("cluster joins");
    let wall_s = t0.elapsed().as_secs_f64();

    // Client flood or not, consensus must hold.
    report.assert_agreement();
    assert!(report.min_decided_len() > 1, "tier {label}: cluster decided nothing");

    let outcome = report
        .outcomes()
        .into_iter()
        .find(|o| o.me == v0)
        .expect("node 0 outcome");

    // Per-tx latency: join every submission against node 0's decision
    // stream. tick-resolution wall clock, exact per transaction.
    let decided = report.decided_tx_ticks(v0);
    let tick_ms = TICK.as_secs_f64() * 1e3;
    let mut samples = Vec::new();
    let mut submitted = 0u64;
    for result in &results {
        submitted += result.submits.len() as u64;
        for &(id, at) in &result.submits {
            if let Some(&decided_tick) = decided.get(&id) {
                samples.push(decided_tick.saturating_sub(at) as f64 * tick_ms);
            }
        }
    }
    let decided_txs = samples.len() as u64;
    let accepted: u64 = results.iter().map(|r| r.accepted).sum();
    let busy: u64 = results.iter().map(|r| r.busy).sum();
    let rate_limited: u64 = results.iter().map(|r| r.rate_limited).sum();
    let run_s = run_ticks as f64 * TICK.as_secs_f64();

    // Per-socket overhead budget: at its buffer peak the ingest loop
    // may hold at most 16 KiB per concurrently live session on average.
    assert!(
        outcome.ingest.buffer_bytes_peak <= outcome.ingest.sessions_peak.max(1) * PER_SOCKET_BUDGET,
        "tier {label}: buffer peak {} over budget for {} sessions",
        outcome.ingest.buffer_bytes_peak,
        outcome.ingest.sessions_peak,
    );

    TierRow {
        label: label.to_string(),
        clients,
        submitted,
        accepted,
        busy,
        rate_limited,
        decided_txs,
        sustained_tx_s: decided_txs as f64 / run_s,
        latency_ms: LatencyStats::from_samples(samples),
        sessions_peak: outcome.ingest.sessions_peak,
        buffer_bytes_peak: outcome.ingest.buffer_bytes_peak,
        pending_peak: outcome.admission.pending_peak,
        evicted: outcome.admission.evicted,
        slow_client_closes: outcome.ingest.slow_client_closes,
        wall_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("=== Ingestion plane: open-loop client workload over TCP ===\n");

    // Throughput/latency tiers: same arrival rate, growing socket
    // counts — the cost of concurrency, not of load.
    let tiers: &[(usize, u64)] = if smoke {
        &[(64, 4_000)]
    } else {
        &[(100, 8_000), (400, 8_000), (1_000, 8_000)]
    };
    let drivers = if smoke { 2 } else { 4 };
    let views = if smoke { 8 } else { 12 };

    let mut rows = Vec::new();
    for &(clients, rate) in tiers {
        let label = format!("{clients}c");
        let row = run_tier(&label, clients, drivers, rate, views, None);
        println!(
            "tier {label}: submitted={} accepted={} decided={} sustained={:.0} tx/s \
             p50={:.0}ms p99={:.0}ms sessions_peak={} buffer_peak={}B wall={:.2}s",
            row.submitted,
            row.accepted,
            row.decided_txs,
            row.sustained_tx_s,
            row.latency_ms.map_or(-1.0, |l| l.p50),
            row.latency_ms.map_or(-1.0, |l| l.p99),
            row.sessions_peak,
            row.buffer_bytes_peak,
            row.wall_s,
        );
        assert!(row.accepted > 0, "tier {label}: no submissions accepted");
        assert!(row.decided_txs > 0, "tier {label}: no client tx decided");
        rows.push(row);
    }

    // The headline concurrency gate: ≥ 1000 concurrent client sockets
    // on one node. (sessions_peak counts the 2 peer sessions too, so
    // require the full client count on top of them.)
    if !smoke {
        let top = rows.last().expect("tiers are non-empty");
        assert!(
            top.sessions_peak >= 1_000,
            "top tier must hold ≥ 1000 concurrent sockets, saw {}",
            top.sessions_peak,
        );
    }

    // Graceful-saturation tier: a mempool of 64 slots against a heavy
    // burst-heavy arrival stream. The node must shed with Busy acks at
    // bounded memory while consensus keeps deciding.
    let capacity = 64;
    let sat_rate = if smoke { 30_000 } else { 60_000 };
    let sat = run_tier(
        "saturation",
        if smoke { 32 } else { 200 },
        drivers,
        sat_rate,
        views,
        Some(AdmissionPolicy { capacity, rate_cap: 0, rate_window: 64 }),
    );
    println!(
        "tier saturation: submitted={} accepted={} busy={} evicted={} pending_peak={} \
         decided={} wall={:.2}s",
        sat.submitted, sat.accepted, sat.busy, sat.evicted, sat.pending_peak, sat.decided_txs,
        sat.wall_s,
    );
    assert!(sat.busy > 0, "saturation tier must shed with Busy acks");
    assert!(
        sat.pending_peak <= capacity as u64,
        "saturation tier must bound the pool: peak {} > {capacity}",
        sat.pending_peak,
    );
    assert!(sat.decided_txs > 0, "saturation tier must keep deciding");
    rows.push(sat);

    if smoke {
        println!("\nsmoke tiers passed: graceful saturation + per-socket budget hold");
        return;
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    let rows_json: Vec<String> = rows.iter().map(TierRow::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"description\": \"Client ingestion plane over real \
         TCP: a 3-node cluster, one readiness-polled I/O thread per node serving every client \
         socket, bounded mempool admission, open-loop Zipf million-user workload (8 tx/tick \
         steady, 4x bursts). Latency is submitted->decided, joined per transaction id against \
         node 0's decision stream. Re-run: cargo bench -p tobsvd-bench --bench ingest\",\n  \
         \"parameters\": {{ \"nodes\": 3, \"tick_ms\": {}, \"views\": {}, \"driver_threads\": \
         {}, \"users\": 1000000, \"zipf_s\": 0.9, \"saturation_capacity\": {} }},\n  \
         \"results\": [\n    {}\n  ],\n  \"acceptance\": \"agreement + progress in every tier; \
         >= 1000 concurrent client sockets in the top tier; buffer peak <= 16KiB x sessions; \
         saturation tier sheds via Busy acks at pending <= capacity; all asserted in-bench\"\n}}\n",
        TICK.as_millis(),
        views,
        drivers,
        capacity,
        rows_json.join(",\n    "),
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
