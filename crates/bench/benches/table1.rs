//! Regenerates **Table 1** of the paper: the six-protocol comparison of
//! adversarial resilience, best-case latency, expected latency,
//! transaction expected latency, voting phases per new block (best and
//! expected) and communication complexity.
//!
//! Three sources per number:
//!
//! * **paper** — the constant printed in Table 1;
//! * **model** — the geometric leader-lottery process at the adversarial
//!   boundary p(good leader) = ½ (closed form; flagged where a
//!   baseline's own accounting differs, see EXPERIMENTS.md);
//! * **measured** — TOB-SVD only: the real protocol under the
//!   discrete-event simulator, fault-free for the best case and with a
//!   split-brain adversary at the corruption bound for the expected
//!   case (reported at the run's actual good-leader fraction, alongside
//!   the model evaluated at that same fraction for validation).

use tobsvd_analysis::{Summary, Table};
use tobsvd_baselines::{
    closed_form_expected, closed_form_tx_expected, phases_per_block, spec::all_specs,
};
use tobsvd_bench::{mean, run_tobsvd};
use tobsvd_core::TxWorkload;

fn main() {
    println!("=== Table 1 reproduction — dynamically available TOB protocols ===\n");

    // ---- measured TOB-SVD: best case (fault-free, worst-case delays).
    let best_report = run_tobsvd(8, 0, 12, 7, TxWorkload::PerView { count: 1, size: 48 });
    best_report.assert_safety();
    let block_lats = best_report.block_decision_latencies_deltas();
    let measured_best = block_lats.iter().copied().fold(f64::INFINITY, f64::min);

    // ---- measured TOB-SVD: expected case (split-brain adversary at the
    // corruption bound, txs submitted right before each proposal).
    let n = 9;
    let byz = 4; // f = 4 < h = 5: the largest compliant static corruption
    let exp_report = run_tobsvd(n, byz, 120, 11, TxWorkload::PerView { count: 1, size: 48 });
    exp_report.assert_safety();
    let p_measured = exp_report.good_leader_fraction();
    let tx_lats = exp_report.tx_latencies_deltas();
    let measured_expected = mean(&tx_lats).unwrap_or(f64::NAN);
    let measured_phases = exp_report.voting_phases_per_block().unwrap_or(f64::NAN);

    // ---- measured TOB-SVD: transaction expected latency (random
    // submission times over the same adversarial run).
    let txexp_report = run_tobsvd(n, byz, 120, 13, TxWorkload::Random { total: 400, size: 48 });
    txexp_report.assert_safety();
    let txexp_lats = txexp_report.tx_latencies_deltas();
    let measured_tx_expected = mean(&txexp_lats).unwrap_or(f64::NAN);

    let specs = all_specs();
    let p_boundary = 0.5;

    let mut table = Table::new(vec![
        "metric",
        "TOB-SVD (paper)",
        "TOB-SVD (model p=1/2)",
        "TOB-SVD (measured)",
        "MR",
        "MMR2",
        "GL",
        "1/3-MMR",
        "1/4-MMR",
    ]);

    let by_name = |name: &str| specs.iter().find(|s| s.name == name).expect("spec");
    let tob = by_name("TOB-SVD");
    let baselines = ["MR", "MMR2", "GL", "1/3-MMR", "1/4-MMR"];

    let fmt = |x: f64| {
        if x.is_nan() {
            "-".to_string()
        } else if (x - x.round()).abs() < 1e-9 {
            format!("{}", x.round())
        } else {
            format!("{x:.2}")
        }
    };

    table.row(
        std::iter::once("resilience".to_string())
            .chain(["1/2".into(), "1/2".into(), format!("{byz}/{n} corrupted")])
            .chain(baselines.iter().map(|b| {
                let s = by_name(b);
                format!("{}/{}", s.resilience.0, s.resilience.1)
            }))
            .collect(),
    );
    table.row(
        std::iter::once("best-case latency (Δ)".to_string())
            .chain([
                fmt(tob.paper.best),
                fmt(tob.structure.decision_offset as f64),
                fmt(measured_best),
            ])
            .chain(baselines.iter().map(|b| fmt(by_name(b).paper.best)))
            .collect(),
    );
    table.row(
        std::iter::once("expected latency (Δ)".to_string())
            .chain([
                fmt(tob.paper.expected),
                fmt(closed_form_expected(&tob.structure, p_boundary)),
                format!("{} @p={:.2}", fmt(measured_expected), p_measured),
            ])
            .chain(baselines.iter().map(|b| {
                let s = by_name(b);
                let model = closed_form_expected(&s.structure, p_boundary);
                if (model - s.paper.expected).abs() < 1e-9 {
                    fmt(s.paper.expected)
                } else {
                    format!("{}*", fmt(s.paper.expected))
                }
            }))
            .collect(),
    );
    table.row(
        std::iter::once("tx expected latency (Δ)".to_string())
            .chain([
                fmt(tob.paper.tx_expected),
                fmt(closed_form_tx_expected(&tob.structure, p_boundary)),
                format!(
                    "{} @p={:.2}",
                    fmt(measured_tx_expected),
                    txexp_report.good_leader_fraction()
                ),
            ])
            .chain(baselines.iter().map(|b| {
                let s = by_name(b);
                let model = closed_form_tx_expected(&s.structure, p_boundary);
                if (model - s.paper.tx_expected).abs() < 1e-9 {
                    fmt(s.paper.tx_expected)
                } else {
                    format!("{}*", fmt(s.paper.tx_expected))
                }
            }))
            .collect(),
    );
    table.row(
        std::iter::once("voting phases / block (best)".to_string())
            .chain([
                fmt(tob.paper.phases_best as f64),
                fmt(tob.structure.phases_per_view as f64),
                fmt(best_report.voting_phases_per_block().unwrap_or(f64::NAN)),
            ])
            .chain(baselines.iter().map(|b| fmt(by_name(b).paper.phases_best as f64)))
            .collect(),
    );
    table.row(
        std::iter::once("voting phases / block (expected)".to_string())
            .chain([
                fmt(tob.paper.phases_expected as f64),
                fmt(phases_per_block(&tob.structure, p_boundary)),
                format!("{} @p={:.2}", fmt(measured_phases), p_measured),
            ])
            .chain(
                baselines
                    .iter()
                    .map(|b| fmt(by_name(b).paper.phases_expected as f64)),
            )
            .collect(),
    );
    table.row(
        std::iter::once("communication".to_string())
            .chain([
                "O(Ln^3)".into(),
                "O(Ln^3)".into(),
                "see comm_complexity bench".into(),
            ])
            .chain(
                baselines
                    .iter()
                    .map(|b| format!("O(Ln^{})", by_name(b).paper.comm_exponent)),
            )
            .collect(),
    );

    println!("{}", table.render());
    println!("*  paper constant uses that protocol's own expected-case accounting;");
    println!(
        "   the plain geometric model gives MMR2 expected = {}Δ and MR tx-expected = {}Δ.",
        closed_form_expected(&by_name("MMR2").structure, p_boundary),
        closed_form_tx_expected(&by_name("MR").structure, p_boundary),
    );

    // ---- validation block: measured vs model at the *measured* p.
    println!("\n=== validation: measured TOB-SVD vs model at the run's own p ===");
    let model_at_p = closed_form_expected(&tob.structure, p_measured);
    println!(
        "expected latency: measured {:.2}Δ vs model({:.3}) {:.2}Δ  (n={n}, f={byz}, {} views, {} txs)",
        measured_expected,
        p_measured,
        model_at_p,
        exp_report.views,
        tx_lats.len(),
    );
    if let Some(s) = Summary::from_slice(&tx_lats) {
        println!(
            "latency distribution (Δ): min {:.1} / median {:.1} / p90 {:.1} / max {:.1}",
            s.min, s.median, s.p90, s.max
        );
    }
    let model_phases = phases_per_block(&tob.structure, p_measured);
    println!("voting phases per block: measured {measured_phases:.2} vs model {model_phases:.2}");

    // Shape assertions: the qualitative claims of Table 1 must hold in
    // the measured data, not only in the constants.
    assert!(
        (measured_best - 6.0).abs() < 0.5,
        "best case should be ≈6Δ, got {measured_best}"
    );
    assert!(
        (measured_expected - model_at_p).abs() < 2.0,
        "measured expected latency {measured_expected} too far from model {model_at_p}"
    );
    assert!(p_measured > 0.5, "Lemma 2: good-leader fraction must exceed 1/2");
    println!("\nall shape assertions passed.");
}
