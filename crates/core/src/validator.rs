//! The TOB-SVD validator state machine (Figure 4).

use std::collections::BTreeMap;

use tobsvd_crypto::Keypair;
use tobsvd_ga::Ga3;
use tobsvd_sim::gossip::GossipState;
use tobsvd_sim::{Context, Node};
use tobsvd_types::{
    BlockStore, InstanceId, Log, Payload, SignedMessage, View,
};

use crate::config::TobConfig;
use crate::leader::{verify_vrf, vrf_for, ProposalTracker};
use crate::schedule::{ViewSchedule, ViewPhase};

/// An honest TOB-SVD validator.
///
/// Sans-io: all I/O flows through the [`Context`] of the callbacks, so
/// the same state machine runs under the discrete-event simulator and
/// the real TCP runtime.
///
/// Per Figure 4, "awake validators participate in the GA instances that
/// are ongoing, and in addition behave as specified *whenever they have
/// the required GA outputs to do so*. Validators do not perform actions
/// which require outputs they do not have." Missing outputs arise
/// naturally here from missed phase callbacks while asleep.
pub struct Validator {
    me: tobsvd_types::ValidatorId,
    cfg: TobConfig,
    keypair: Keypair,
    sched: ViewSchedule,
    /// Live GA instances by view (`GA_v` spans views v and v+1).
    gas: BTreeMap<View, Ga3>,
    /// Per-view proposal tracking with equivocation discarding.
    proposals: BTreeMap<View, ProposalTracker>,
    gossip: GossipState,
    /// Highest decided log.
    decided: Log,
    /// Bounded archive of recent messages, served to recovering peers
    /// (§2 recovery protocol). Keyed by the view the message belongs to.
    archive: BTreeMap<View, Vec<SignedMessage>>,
    /// Whether the node has started (first wake consumed).
    started: bool,
    /// Instrumentation: original `LOG` broadcasts (votes) made.
    votes_cast: u64,
    /// Instrumentation: proposals made.
    proposals_made: u64,
    /// Instrumentation: decisions reported.
    decisions_made: u64,
    /// Instrumentation: recovery requests served.
    recoveries_served: u64,
}

impl Validator {
    /// Creates a validator; `store` must be the simulation's shared
    /// store (the genesis log anchors the decided chain).
    pub fn new(me: tobsvd_types::ValidatorId, cfg: TobConfig, store: &BlockStore) -> Self {
        Validator {
            me,
            keypair: Keypair::from_seed(me.key_seed()),
            sched: ViewSchedule::new(cfg.delta),
            gas: BTreeMap::new(),
            proposals: BTreeMap::new(),
            gossip: GossipState::new(),
            decided: Log::genesis(store),
            archive: BTreeMap::new(),
            started: false,
            votes_cast: 0,
            proposals_made: 0,
            decisions_made: 0,
            recoveries_served: 0,
            cfg,
        }
    }

    /// The validator's identity.
    pub fn id(&self) -> tobsvd_types::ValidatorId {
        self.me
    }

    /// The highest log this validator has decided.
    pub fn decided(&self) -> Log {
        self.decided
    }

    /// Number of `LOG` broadcasts (votes) this validator has made.
    pub fn votes_cast(&self) -> u64 {
        self.votes_cast
    }

    /// Number of proposals this validator has made.
    pub fn proposals_made(&self) -> u64 {
        self.proposals_made
    }

    /// Number of decide-phase outputs this validator reported.
    pub fn decisions_made(&self) -> u64 {
        self.decisions_made
    }

    /// Number of recovery requests this validator answered.
    pub fn recoveries_served(&self) -> u64 {
        self.recoveries_served
    }

    /// The GA instance for view `v`, if currently live.
    pub fn ga(&self, v: View) -> Option<&Ga3> {
        self.gas.get(&v)
    }

    fn ensure_ga(&mut self, v: View) -> &mut Ga3 {
        let start = self.sched.ga_start(v);
        self.gas
            .entry(v)
            .or_insert_with(|| Ga3::new(InstanceId::for_view(v), start))
    }

    /// Grade-`g` output of `GA_{v−1}`, with the Figure 4 convention that
    /// `GA_{−1}` outputs the genesis log at every grade.
    fn prev_ga_output(&self, v: View, grade: u8, store: &BlockStore) -> Option<Log> {
        match v.prev() {
            None => Some(Log::genesis(store)),
            Some(prev) => {
                let ga = self.gas.get(&prev)?;
                if !ga.participated(grade) {
                    return None;
                }
                ga.output(grade)
            }
        }
    }

    fn propose(&mut self, v: View, ctx: &mut Context) {
        // Propose Λ′ extending the candidate (highest grade-0 output of
        // GA_{v−1}), accompanied by the VRF value for view v.
        let Some(candidate) = self.prev_ga_output(v, 0, &ctx.store) else {
            return;
        };
        let mut txs = ctx
            .mempool
            .pending_for_at(&candidate, &ctx.store, ctx.time);
        txs.truncate(self.cfg.max_txs_per_block);
        let proposal_log = candidate.extend(&ctx.store, self.me, v, txs);
        let (vrf, proof) = vrf_for(self.me, v);
        let msg = SignedMessage::sign(
            &self.keypair,
            self.me,
            Payload::Proposal { view: v, log: proposal_log, vrf, proof },
        );
        ctx.broadcast(msg);
        self.proposals_made += 1;
    }

    fn vote(&mut self, v: View, ctx: &mut Context) {
        // The lock is the highest grade-1 output of GA_{v−1}; without it
        // the vote is skipped ("validators do not perform actions which
        // require outputs they do not have").
        let Some(lock) = self.prev_ga_output(v, 1, &ctx.store) else {
            self.ensure_ga(v);
            return;
        };
        let input = self
            .proposals
            .get(&v)
            .and_then(|tr| tr.best_extending(&lock, &ctx.store))
            .map(|(_, log)| log)
            .unwrap_or(lock);
        let ga = self.ensure_ga(v);
        ga.set_input(input);
        let msg = SignedMessage::sign(
            &self.keypair,
            self.me,
            Payload::Log { instance: InstanceId::for_view(v), log: input },
        );
        ctx.broadcast(msg);
        self.votes_cast += 1;
    }

    fn decide(&mut self, v: View, ctx: &mut Context) {
        // Decide the highest log output with grade 2 by GA_{v−1}.
        if v == View::ZERO {
            return; // GA_{−1}'s output is the genesis log: nothing to decide.
        }
        let Some(d) = self.prev_ga_output(v, 2, &ctx.store) else {
            return;
        };
        self.decisions_made += 1;
        ctx.decide(d);
        if d.len() > self.decided.len() {
            self.decided = d;
        }
    }

    fn prune(&mut self, v: View) {
        // GA_w ends at t_{w+1} + 2Δ: anything older than v−2 is finished.
        self.gas.retain(|w, _| w.number() + 2 >= v.number());
        // Proposals for view w only matter until t_w + Δ.
        self.proposals.retain(|w, _| w.number() + 1 >= v.number());
        // The archive follows the GA window: recovering validators can
        // only act on still-live instances anyway.
        self.archive.retain(|w, _| w.number() + 2 >= v.number());
    }

    /// Records a fresh message in the recovery archive.
    fn archive_message(&mut self, msg: &SignedMessage) {
        if !self.cfg.recovery {
            return;
        }
        let view = match msg.payload() {
            Payload::Log { instance, .. } => instance.view(),
            Payload::Proposal { view, .. } => *view,
            _ => return,
        };
        self.archive.entry(view).or_default().push(*msg);
    }

    /// Serves a recovery request: re-send every archived message from
    /// `from_view` onward to the requester.
    fn serve_recovery(&mut self, requester: tobsvd_types::ValidatorId, from_view: View, ctx: &mut Context) {
        if !self.cfg.recovery || requester == self.me {
            return;
        }
        self.recoveries_served += 1;
        let mut sent = 0usize;
        for (view, msgs) in self.archive.range(from_view..) {
            let _ = view;
            for msg in msgs {
                if sent >= self.cfg.recovery_response_cap {
                    return;
                }
                ctx.forward_to(vec![requester], *msg);
                sent += 1;
            }
        }
    }

    fn sender_key(sender: tobsvd_types::ValidatorId) -> tobsvd_crypto::PublicKey {
        Keypair::from_seed(sender.key_seed()).public()
    }
}

impl Node for Validator {
    fn on_wake(&mut self, ctx: &mut Context) {
        if !self.started {
            // First activation: nothing to recover.
            self.started = true;
            return;
        }
        if !self.cfg.recovery {
            return;
        }
        // §2: "upon waking up, a validator sends a RECOVERY message to
        // other validators", asking for everything affecting still-live
        // GA instances.
        let current = View::of_time(ctx.time, ctx.delta);
        let from_view = View::new(current.number().saturating_sub(2));
        let msg = SignedMessage::sign(
            &self.keypair,
            self.me,
            Payload::Recovery { from_view, log: self.decided },
        );
        ctx.broadcast(msg);
    }

    fn on_phase(&mut self, ctx: &mut Context) {
        let (v, phase) = self.sched.phase_at(ctx.time);
        // Drive the ongoing GA instances first: the TOB phase at this
        // boundary consumes outputs computed at this very time (Figure 3
        // arrows land on the phase they feed).
        let (time, delta) = (ctx.time, ctx.delta);
        for ga in self.gas.values_mut() {
            ga.on_phase(time, delta, &ctx.store);
        }
        match phase {
            ViewPhase::Propose => {
                self.prune(v);
                self.propose(v, ctx);
            }
            ViewPhase::Vote => self.vote(v, ctx),
            ViewPhase::Decide => self.decide(v, ctx),
            ViewPhase::Idle => {}
        }
    }

    fn on_message(&mut self, msg: &SignedMessage, ctx: &mut Context) {
        if !msg.verify(&Self::sender_key(msg.sender())) {
            return;
        }
        let reception = self.gossip.on_receive(msg);
        if reception.forward {
            ctx.forward(*msg);
        }
        if !reception.fresh {
            return;
        }
        let current = View::of_time(ctx.time, ctx.delta);
        match msg.payload() {
            Payload::Log { instance, log } => {
                let w = instance.view();
                // Accept instances in the live window: the previous view's
                // GA is still running, the next view's cannot legitimately
                // have inputs yet but a Δ of clock skew is tolerated.
                if w.number() + 2 < current.number() || w.number() > current.number() + 1 {
                    return;
                }
                self.archive_message(msg);
                self.ensure_ga(w).on_log(msg.sender(), *log);
            }
            Payload::Proposal { view, log, vrf, proof } => {
                if !verify_vrf(msg.sender(), *view, vrf, proof) {
                    return; // forged VRF: proposal carries no priority
                }
                if view.number() + 1 < current.number() || view.number() > current.number() + 1 {
                    return;
                }
                self.archive_message(msg);
                self.proposals
                    .entry(*view)
                    .or_default()
                    .record(msg.sender(), *log, *vrf);
            }
            Payload::Vote { .. } => {} // not part of TOB-SVD
            Payload::Recovery { from_view, .. } => {
                self.serve_recovery(msg.sender(), *from_view, ctx);
            }
            // Finality votes belong to the gadget layered on top
            // (tobsvd-finality); the base protocol ignores them.
            Payload::FinalityVote { .. } => {}
        }
    }

    fn label(&self) -> &'static str {
        "tob-svd"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_sim::Mempool;
    use tobsvd_types::{Delta, Time, ValidatorId};

    fn ctx_at(t: u64, store: &BlockStore) -> Context {
        Context::new(
            Time::new(t),
            ValidatorId::new(0),
            Delta::new(8),
            store.clone(),
            Mempool::new(),
        )
    }

    #[test]
    fn view0_proposes_and_votes_genesis_extension() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);

        // t = 0: propose (candidate = genesis via GA_{-1}).
        let mut ctx = ctx_at(0, &store);
        val.on_phase(&mut ctx);
        assert_eq!(ctx.outbox().len(), 1);
        assert_eq!(val.proposals_made(), 1);

        // t = Δ: vote (lock = genesis; no proposals received → lock).
        let mut ctx = ctx_at(8, &store);
        val.on_phase(&mut ctx);
        assert_eq!(val.votes_cast(), 1);
        let vote = match ctx.outbox() {
            [tobsvd_sim::Outgoing::Broadcast(m)] => *m,
            other => panic!("expected one broadcast, got {other:?}"),
        };
        match vote.payload() {
            Payload::Log { instance, log } => {
                assert_eq!(*instance, InstanceId(0));
                assert!(log.is_genesis(&store), "no proposal received → vote the lock");
            }
            p => panic!("expected LOG, got {p:?}"),
        }
    }

    #[test]
    fn vote_adopts_highest_vrf_proposal_extending_lock() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);

        // Two proposals for view 0 arrive before the vote.
        for sender in [ValidatorId::new(1), ValidatorId::new(2)] {
            let log = g.extend_empty(&store, sender, View::ZERO);
            let (vrf, proof) = vrf_for(sender, View::ZERO);
            let kp = Keypair::from_seed(sender.key_seed());
            let msg = SignedMessage::sign(
                &kp,
                sender,
                Payload::Proposal { view: View::ZERO, log, vrf, proof },
            );
            let mut ctx = ctx_at(3, &store);
            val.on_message(&msg, &mut ctx);
        }
        let mut ctx = ctx_at(8, &store);
        val.on_phase(&mut ctx);
        let winner = [ValidatorId::new(1), ValidatorId::new(2)]
            .into_iter()
            .max_by_key(|v| vrf_for(*v, View::ZERO).0)
            .unwrap();
        match ctx.outbox() {
            [tobsvd_sim::Outgoing::Broadcast(m)] => match m.payload() {
                Payload::Log { log, .. } => {
                    let block = store.get(log.tip()).unwrap();
                    assert_eq!(block.proposer(), Some(winner));
                }
                p => panic!("expected LOG, got {p:?}"),
            },
            other => panic!("expected one broadcast, got {other:?}"),
        }
    }

    #[test]
    fn forged_vrf_proposals_ignored() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);
        let sender = ValidatorId::new(1);
        let log = g.extend_empty(&store, sender, View::ZERO);
        // Claim another validator's (higher?) VRF — proof won't verify.
        let (vrf, proof) = vrf_for(ValidatorId::new(2), View::ZERO);
        let kp = Keypair::from_seed(sender.key_seed());
        let msg = SignedMessage::sign(
            &kp,
            sender,
            Payload::Proposal { view: View::ZERO, log, vrf, proof },
        );
        let mut ctx = ctx_at(3, &store);
        val.on_message(&msg, &mut ctx);
        // The proposal must not have been recorded.
        let mut ctx = ctx_at(8, &store);
        val.on_phase(&mut ctx);
        match ctx.outbox() {
            [tobsvd_sim::Outgoing::Broadcast(m)] => {
                assert!(m.payload().log().is_genesis(&store), "forged proposal ignored");
            }
            other => panic!("expected one broadcast, got {other:?}"),
        }
    }

    #[test]
    fn no_decision_without_grade2_output() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        // Jump straight to view 1's decide phase with no GA_0 state.
        let mut ctx = ctx_at(4 * 8 + 2 * 8, &store);
        val.on_phase(&mut ctx);
        assert!(ctx.decisions().is_empty());
        assert_eq!(val.decisions_made(), 0);
    }

    #[test]
    fn stale_and_far_future_instances_rejected() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);
        let sender = ValidatorId::new(1);
        let kp = Keypair::from_seed(sender.key_seed());
        // Current view at t = 10 views in: messages for view 20 rejected.
        let t = 10 * 4 * 8;
        let msg = SignedMessage::sign(
            &kp,
            sender,
            Payload::Log { instance: InstanceId(20), log: g },
        );
        let mut ctx = ctx_at(t, &store);
        val.on_message(&msg, &mut ctx);
        assert!(val.ga(View::new(20)).is_none());
        // Very old instance also rejected.
        let msg = SignedMessage::sign(
            &kp,
            sender,
            Payload::Log { instance: InstanceId(1), log: g },
        );
        let mut ctx = ctx_at(t, &store);
        val.on_message(&msg, &mut ctx);
        assert!(val.ga(View::new(1)).is_none());
    }
}
