//! The TOB-SVD validator state machine (Figure 4).

use std::collections::BTreeMap;

use tobsvd_crypto::{AggregateSignature, Digest, KeyCache, Keypair, PublicKey, Signature, VrfOutput};
use tobsvd_ga::Ga3;
use tobsvd_sim::gossip::{GossipState, VerifiedSet};
use tobsvd_sim::{garbage_bytes, Context, Node, StateFault};
use tobsvd_storage::{replay_into, BlockRecord, SharedDurable, Snapshot, WalError, WalRecord};
use tobsvd_types::{
    wire, BlockId, BlockStore, InstanceId, Log, Payload, SignedMessage, SignerSet, ValidatorId,
    View,
};

use crate::config::TobConfig;
use crate::leader::{verify_vrf, vrf_for, ProposalTracker};
use crate::schedule::{ViewSchedule, ViewPhase};
use crate::sync::{Resolution, SyncState};

/// Aggregation state for one `(instance, log)` vote group.
///
/// The aggregation plane defers all vote relaying to the next phase
/// boundary. Boundaries are Δ-spaced and the engine delivers messages
/// before firing the phase callback at the same tick, so a vote in this
/// validator's `kΔ` snapshot is flushed at `kΔ` and reaches every honest
/// validator by `(k+1)Δ` — exactly the graded-delivery guarantee the
/// paper obtains from immediate per-receiver forwarding, at O(n²)
/// instead of O(n³) deliveries per view.
struct VoteGroup {
    instance: InstanceId,
    log: Log,
    /// Individually received (and verified) votes, in arrival order.
    /// One entry per sender: gossip dedups ids, and a sender's two
    /// conflicting logs land in two different groups.
    votes: Vec<SignedMessage>,
    /// Senders of `votes` as a bitmap (the signer set of our own
    /// certificate).
    have_votes: SignerSet,
    /// `votes[..flushed]` have been relayed — individually or covered
    /// by a certificate this validator sent.
    flushed: usize,
    /// Signers this validator has *personally* sent a certificate for
    /// (own broadcast or a forwarded received certificate). Only sends
    /// count: coverage is what upholds the relay guarantee through this
    /// validator.
    covered: SignerSet,
    /// Signers vouched by a received certificate whose aggregate this
    /// validator fully verified.
    cert_verified: SignerSet,
    /// Whether this validator's own certificate for the group has been
    /// broadcast (at most one per group, so the per-sender gossip cap
    /// can never drop a later emission that would carry new signers).
    own_cert_emitted: bool,
    /// Verified received certificates queued for boundary forwarding.
    pending_certs: Vec<SignedMessage>,
}

impl VoteGroup {
    fn new(instance: InstanceId, log: Log) -> Self {
        VoteGroup {
            instance,
            log,
            votes: Vec::new(),
            have_votes: SignerSet::empty(),
            flushed: 0,
            covered: SignerSet::empty(),
            cert_verified: SignerSet::empty(),
            own_cert_emitted: false,
            pending_certs: Vec::new(),
        }
    }

    /// Signers whose votes this validator can vouch for without the
    /// certificate under consideration: individually held votes plus
    /// previously verified certificates.
    fn vouched(&self) -> SignerSet {
        let mut s = self.have_votes;
        s.union_with(&self.cert_verified);
        s
    }

    /// Signers already guaranteed to be relayed by this validator: held
    /// votes (flushed individually or via our own certificate) plus
    /// everything we already sent a certificate for.
    fn relayed_by_us(&self) -> SignerSet {
        let mut s = self.have_votes;
        s.union_with(&self.covered);
        s
    }
}

/// Deferred proposal relaying for one view (certificate mode).
///
/// The paper's gossip echoes every received proposal per receiver:
/// n proposals × n forwarders is the second O(n³) delivery term per
/// view, co-equal with the vote echo the certificates eliminate. But a
/// proposal relay is informative in exactly two cases — it spreads the
/// highest-VRF proposal (the one any vote could pick) or it spreads
/// equivocation evidence. Votes themselves never depend on relays
/// under worst-case delay: a proposal received at t relays at the next
/// boundary and lands at t + Δ at the earliest, past the `t_v + Δ`
/// vote it could have fed, while the direct broadcast already reaches
/// every awake validator in time. So the boundary flush forwards the
/// best verified proposal seen (once per priority improvement) and
/// every buffered copy from a detected equivocator, and drops the
/// rest: O(n) relays per view instead of O(n²).
#[derive(Default)]
struct ProposalRelay {
    /// VRF-verified proposal receptions since the last boundary flush.
    /// Bounded by the gossip cap: at most two distinct messages per
    /// sender per view survive `on_receive`.
    pending: Vec<SignedMessage>,
    /// Highest `(vrf, Reverse(sender))` priority already relayed for
    /// this view — the same total order [`ProposalTracker`] uses to
    /// pick the vote input, so a relayed proposal is outranked only by
    /// one that would also outrank it there.
    best_relayed: Option<(VrfOutput, std::cmp::Reverse<ValidatorId>)>,
}

/// An honest TOB-SVD validator.
///
/// Sans-io: all I/O flows through the [`Context`] of the callbacks, so
/// the same state machine runs under the discrete-event simulator and
/// the real TCP runtime.
///
/// Per Figure 4, "awake validators participate in the GA instances that
/// are ongoing, and in addition behave as specified *whenever they have
/// the required GA outputs to do so*. Validators do not perform actions
/// which require outputs they do not have." Missing outputs arise
/// naturally here from missed phase callbacks while asleep.
pub struct Validator {
    me: tobsvd_types::ValidatorId,
    cfg: TobConfig,
    keypair: Keypair,
    sched: ViewSchedule,
    /// Live GA instances by view (`GA_v` spans views v and v+1).
    gas: BTreeMap<View, Ga3>,
    /// Per-view proposal tracking with equivocation discarding.
    proposals: BTreeMap<View, ProposalTracker>,
    gossip: GossipState,
    /// Highest decided log.
    decided: Log,
    /// Bounded archive of recent messages, served to recovering peers
    /// (§2 recovery protocol). Keyed by the view the message belongs to.
    archive: BTreeMap<View, Vec<SignedMessage>>,
    /// Delta-sync state: block knowledge, bounded pending set, fetches.
    sync: SyncState,
    /// Aggregation plane: per-view vote groups awaiting the boundary
    /// flush (certificate emission or individual relay). Pruned with the
    /// GA window.
    agg_groups: BTreeMap<View, Vec<VoteGroup>>,
    /// Aggregation plane, proposal side: proposal relays buffered since
    /// the last boundary plus per-view relay coverage. Pruned with the
    /// proposal window.
    prop_relays: BTreeMap<View, ProposalRelay>,
    /// Verification fast path: the dedup-before-verify gate (see
    /// [`VerifiedSet`]). Fetch-plane ids are deliberately *not*
    /// retained (point-to-point transport an adversary can mint without
    /// bound, same reasoning as the gossip bypass), so the set grows in
    /// lockstep with gossip's seen set — no new Byzantine-floodable
    /// surface.
    verified: VerifiedSet,
    /// Whether the node has started (first wake consumed).
    started: bool,
    /// Durable storage backend (WAL + snapshot checkpoints), when
    /// attached. Decisions are persisted; restart replays them back.
    durable: Option<SharedDurable>,
    /// Decided log length through which block contents and the head
    /// marker are durably synced.
    persisted_len: u64,
    /// Decided length at the last snapshot checkpoint.
    last_snapshot_len: u64,
    /// Durable operations that failed. Storage faults degrade
    /// durability (the suffix retries on the next decision), never
    /// safety or liveness — and never panic.
    wal_errors: u64,
    /// A durably recorded decided head whose block contents could not
    /// be reconstructed locally on restart; fetched over the delta-sync
    /// plane at the first phase boundary.
    recover_fetch: Option<BlockId>,
    /// Instrumentation: original `LOG` broadcasts (votes) made.
    votes_cast: u64,
    /// Instrumentation: proposals made.
    proposals_made: u64,
    /// Instrumentation: decisions reported.
    decisions_made: u64,
    /// Instrumentation: recovery requests served.
    recoveries_served: u64,
    /// Instrumentation: VRF verifications performed.
    vrf_verifies: u64,
    /// Instrumentation: VRF verifications skipped via the per-view memo.
    vrf_verify_skips: u64,
    /// Instrumentation: certificate aggregate verifications performed.
    agg_verifies: u64,
    /// Instrumentation: aggregate verifications skipped because every
    /// attested signer was already vouched (subset fast path).
    agg_verify_skips: u64,
    /// Instrumentation: own certificates broadcast.
    certificates_emitted: u64,
    /// Stabilization: local-audit passes run (one per phase boundary).
    audits_run: u64,
    /// Stabilization: anomalies the local audit repaired (quarantined
    /// fragments, clamped counters, re-sync triggers).
    audit_repairs: u64,
}

impl Validator {
    /// Creates a validator; `store` must be the simulation's shared
    /// store (the genesis log anchors the decided chain).
    pub fn new(me: tobsvd_types::ValidatorId, cfg: TobConfig, store: &BlockStore) -> Self {
        Validator {
            me,
            keypair: KeyCache::keypair(me.key_seed()),
            sched: ViewSchedule::new(cfg.delta),
            gas: BTreeMap::new(),
            proposals: BTreeMap::new(),
            gossip: GossipState::new(),
            decided: Log::genesis(store),
            archive: BTreeMap::new(),
            sync: SyncState::new(store),
            agg_groups: BTreeMap::new(),
            prop_relays: BTreeMap::new(),
            verified: VerifiedSet::new(),
            started: false,
            durable: None,
            persisted_len: 1,
            last_snapshot_len: 1,
            wal_errors: 0,
            recover_fetch: None,
            votes_cast: 0,
            proposals_made: 0,
            decisions_made: 0,
            recoveries_served: 0,
            vrf_verifies: 0,
            vrf_verify_skips: 0,
            agg_verifies: 0,
            agg_verify_skips: 0,
            certificates_emitted: 0,
            audits_run: 0,
            audit_repairs: 0,
            cfg,
        }
    }

    /// Attaches a durable backend: every decided-log extension is
    /// appended to the WAL and fsynced, with a snapshot checkpoint
    /// every [`TobConfig::snapshot_every`] decided blocks.
    pub fn with_durable(mut self, durable: SharedDurable) -> Self {
        self.durable = Some(durable);
        self
    }

    /// Recreates a validator from its durable state after a crash:
    /// load the latest valid snapshot, replay the WAL suffix into the
    /// store, and adopt the furthest decided head that reconstructs.
    /// A head recorded durably but not locally reconstructible is
    /// fetched over the delta-sync plane once the validator is back on
    /// the phase clock. When `cfg.recovery` is on, the first
    /// post-restart wake also broadcasts the §2 `RECOVERY` request,
    /// exactly as a woken sleeper would.
    pub fn recovered(
        me: tobsvd_types::ValidatorId,
        cfg: TobConfig,
        store: &BlockStore,
        durable: SharedDurable,
    ) -> Self {
        let mut val = Validator::new(me, cfg, store);
        // Not a first activation: restart is semantically a wake-up.
        val.started = true;
        let loaded = durable.lock().load();
        match loaded {
            Ok(recovered) => {
                let replayed = replay_into(store, &recovered);
                for id in &replayed.known {
                    val.sync.mark_own(*id);
                }
                if let Some(log) = Log::from_parts(store, replayed.decided_tip, replayed.decided_len)
                {
                    val.decided = log;
                    val.persisted_len = replayed.decided_len;
                }
                val.last_snapshot_len =
                    recovered.snapshot.as_ref().map_or(1, |s| s.len).max(1);
                val.wal_errors = val.wal_errors.saturating_add(replayed.skipped);
                val.recover_fetch = replayed.beyond.map(|(tip, _)| tip);
            }
            Err(_) => {
                // Unreadable durable state: start from genesis and let
                // the recovery + fetch planes rebuild, counting the loss.
                val.wal_errors = val.wal_errors.saturating_add(1);
            }
        }
        val.durable = Some(durable);
        val
    }

    /// The validator's identity.
    pub fn id(&self) -> tobsvd_types::ValidatorId {
        self.me
    }

    /// Durable operations that failed (storage degradation counter).
    pub fn wal_errors(&self) -> u64 {
        self.wal_errors
    }

    /// Decided log length through which durable persistence has synced.
    pub fn persisted_len(&self) -> u64 {
        self.persisted_len
    }

    /// The highest log this validator has decided.
    pub fn decided(&self) -> Log {
        self.decided
    }

    /// Number of `LOG` broadcasts (votes) this validator has made.
    pub fn votes_cast(&self) -> u64 {
        self.votes_cast
    }

    /// Number of proposals this validator has made.
    pub fn proposals_made(&self) -> u64 {
        self.proposals_made
    }

    /// Number of decide-phase outputs this validator reported.
    pub fn decisions_made(&self) -> u64 {
        self.decisions_made
    }

    /// Number of recovery requests this validator answered.
    pub fn recoveries_served(&self) -> u64 {
        self.recoveries_served
    }

    /// Signature verifications this validator performed (one per unique
    /// verified message id, plus one per forged frame and one per
    /// fetch-plane frame — those ids are never retained).
    pub fn sig_verifies(&self) -> u64 {
        self.verified.verifies()
    }

    /// Deliveries that skipped signature verification (duplicate copies
    /// of already-verified ids).
    pub fn sig_verify_skips(&self) -> u64 {
        self.verified.skips()
    }

    /// VRF verifications this validator performed.
    pub fn vrf_verifies(&self) -> u64 {
        self.vrf_verifies
    }

    /// Proposal receptions that hit the per-view VRF memo.
    pub fn vrf_verify_skips(&self) -> u64 {
        self.vrf_verify_skips
    }

    /// Certificate aggregate verifications this validator performed.
    pub fn agg_verifies(&self) -> u64 {
        self.agg_verifies
    }

    /// Certificate receptions that skipped aggregate verification
    /// because every attested signer was already vouched individually.
    pub fn agg_verify_skips(&self) -> u64 {
        self.agg_verify_skips
    }

    /// Own quorum certificates this validator has broadcast.
    pub fn certificates_emitted(&self) -> u64 {
        self.certificates_emitted
    }

    /// Stabilization: local-audit passes run (one per phase boundary).
    pub fn audits_run(&self) -> u64 {
        self.audits_run
    }

    /// Stabilization: anomalies the local audit detected and repaired.
    /// Zero in a fault-free run — every repair is a corruption caught.
    pub fn audit_repairs(&self) -> u64 {
        self.audit_repairs
    }

    /// Number of distinct protocol message ids that passed verification
    /// (fetch-plane ids are never retained).
    pub fn verified_ids(&self) -> usize {
        self.verified.len()
    }

    /// Whether `id` has passed signature verification at this validator
    /// (layered protocols — e.g. the finality gadget — reuse the base
    /// validator's verification instead of re-checking signatures).
    pub fn is_verified(&self, id: &Digest) -> bool {
        self.verified.contains(id)
    }

    /// Whether this validator should process `msg`, under the
    /// dedup-before-verify discipline (see [`VerifiedSet`]).
    fn admit(&mut self, msg: &SignedMessage, ctx: &mut Context) -> bool {
        // Fetch-plane ids are never retained: the subprotocol is
        // point-to-point transport an adversary can mint without bound,
        // so each fetch frame pays its own (cached-key) verification,
        // exactly as before the fast path.
        self.verified.admit(msg, !msg.payload().is_sync(), ctx)
    }

    /// Number of distinct message ids the gossip layer has seen.
    pub fn unique_messages_seen(&self) -> usize {
        self.gossip.seen_count()
    }

    /// Delta-sync state (pending set, fetch stats) — read-only view for
    /// reports and invariant checks.
    pub fn sync(&self) -> &SyncState {
        &self.sync
    }

    /// The GA instance for view `v`, if currently live.
    pub fn ga(&self, v: View) -> Option<&Ga3> {
        self.gas.get(&v)
    }

    fn ensure_ga(&mut self, v: View) -> &mut Ga3 {
        let start = self.sched.ga_start(v);
        self.gas
            .entry(v)
            .or_insert_with(|| Ga3::new(InstanceId::for_view(v), start))
    }

    /// Grade-`g` output of `GA_{v−1}`, with the Figure 4 convention that
    /// `GA_{−1}` outputs the genesis log at every grade.
    fn prev_ga_output(&self, v: View, grade: u8, store: &BlockStore) -> Option<Log> {
        match v.prev() {
            None => Some(Log::genesis(store)),
            Some(prev) => {
                let ga = self.gas.get(&prev)?;
                if !ga.participated(grade) {
                    return None;
                }
                ga.output(grade)
            }
        }
    }

    fn propose(&mut self, v: View, ctx: &mut Context) {
        // Propose Λ′ extending the candidate (highest grade-0 output of
        // GA_{v−1}), accompanied by the VRF value for view v.
        let Some(candidate) = self.prev_ga_output(v, 0, &ctx.store) else {
            return;
        };
        let mut txs = ctx
            .mempool
            .pending_for_at(&candidate, &ctx.store, ctx.time);
        txs.truncate(self.cfg.max_txs_per_block);
        let proposal_log = candidate.extend(&ctx.store, self.me, v, txs);
        // We built this block: its content is known to us by definition.
        self.sync.mark_own(proposal_log.tip());
        let (vrf, proof) = vrf_for(self.me, v);
        let msg = SignedMessage::sign(
            &self.keypair,
            self.me,
            Payload::Proposal { view: v, log: proposal_log, vrf, proof },
        );
        ctx.broadcast(msg);
        self.proposals_made += 1;
    }

    fn vote(&mut self, v: View, ctx: &mut Context) {
        // The lock is the highest grade-1 output of GA_{v−1}; without it
        // the vote is skipped ("validators do not perform actions which
        // require outputs they do not have").
        let Some(lock) = self.prev_ga_output(v, 1, &ctx.store) else {
            self.ensure_ga(v);
            return;
        };
        let input = self
            .proposals
            .get(&v)
            .and_then(|tr| tr.best_extending(&lock, &ctx.store))
            .map(|(_, log)| log)
            .unwrap_or(lock);
        let ga = self.ensure_ga(v);
        ga.set_input(input);
        let msg = SignedMessage::sign(
            &self.keypair,
            self.me,
            Payload::Log { instance: InstanceId::for_view(v), log: input },
        );
        ctx.broadcast(msg);
        self.votes_cast += 1;
    }

    fn decide(&mut self, v: View, ctx: &mut Context) {
        // Decide the highest log output with grade 2 by GA_{v−1}.
        if v == View::ZERO {
            return; // GA_{−1}'s output is the genesis log: nothing to decide.
        }
        let Some(d) = self.prev_ga_output(v, 2, &ctx.store) else {
            return;
        };
        self.decisions_made += 1;
        ctx.decide(d);
        if d.len() > self.decided.len() {
            self.decided = d;
            self.persist_decided(ctx);
        }
    }

    /// Persists the newly decided suffix: block contents for every
    /// height not yet durable, the decided head marker, then one fsync
    /// (one write+fsync per decision batch, not per record). On
    /// failure `persisted_len` stays put so the next decision retries
    /// the whole suffix — storage faults degrade durability, never
    /// safety, and never panic. A snapshot checkpoint of the full
    /// decided chain replaces the WAL every
    /// [`TobConfig::snapshot_every`] decided blocks.
    fn persist_decided(&mut self, ctx: &mut Context) {
        let Some(handle) = self.durable.clone() else {
            return;
        };
        let d = self.decided;
        if d.len() <= self.persisted_len {
            return;
        }
        let Some(suffix) = ctx.store.chain_range(d.tip(), self.persisted_len) else {
            self.wal_errors = self.wal_errors.saturating_add(1);
            return;
        };
        let mut durable = handle.lock();
        let store = &ctx.store;
        let mut write = || -> Result<(), WalError> {
            for id in &suffix {
                let Some(record) = block_record(store, *id) else {
                    continue; // genesis (or vanished): nothing to log
                };
                durable.append(&WalRecord::Block(record))?;
            }
            durable.append(&WalRecord::Decided { tip: d.tip(), len: d.len() })?;
            durable.sync()
        };
        if write().is_err() {
            self.wal_errors = self.wal_errors.saturating_add(1);
            return;
        }
        self.persisted_len = d.len();
        if self.cfg.snapshot_every == 0
            || d.len().saturating_sub(self.last_snapshot_len) < self.cfg.snapshot_every
        {
            return;
        }
        let Some(chain) = ctx.store.chain_range(d.tip(), 1) else {
            self.wal_errors = self.wal_errors.saturating_add(1);
            return;
        };
        let blocks: Vec<BlockRecord> =
            chain.iter().filter_map(|id| block_record(store, *id)).collect();
        let snapshot = Snapshot { tip: d.tip(), len: d.len(), blocks };
        match durable.install_snapshot(&snapshot) {
            Ok(()) => self.last_snapshot_len = d.len(),
            Err(_) => self.wal_errors = self.wal_errors.saturating_add(1),
        }
    }

    /// Self-stabilization: the cheap per-phase-boundary local audit
    /// (Lundström–Raynal–Schiller style). Checks structural invariants
    /// an in-memory corruption can break and, on violation, quarantines
    /// the bad fragment and re-arms the ordinary recovery machinery —
    /// never panics, never trusts the corrupt fragment.
    ///
    /// * **Counter monotonicity** — `last_snapshot_len ≤ persisted_len ≤
    ///   decided.len()`: an overshooting counter silently disables
    ///   persistence (`persist_decided` skips "already persisted"
    ///   suffixes), so it is clamped back to the decided log.
    /// * **Decided-log linkage** — the decided tip must sit in the
    ///   store at height `len − 1`; a mismatched head is untrusted and
    ///   reset to genesis (the next grade-2 GA output re-decides the
    ///   full log, and durable replay re-persists from the clamp).
    /// * **Decided tip known** — the sync plane must know the decided
    ///   chain; if not (amnesia), the §2 recover-fetch path is re-armed
    ///   and the fetch broadcast fires at this very boundary.
    /// * **`verified ⊆ seen`** — every honest admit path inserts into
    ///   both sets, so the retained-id count exceeding the seen count
    ///   proves poisoning; the O(n) reconciliation runs only behind
    ///   that O(1) trigger and evicts ids gossip never sighted.
    /// * **Sync structural sanity** — [`SyncState::audit`]: known ids
    ///   must have store-backed content, in-flight fetches must target
    ///   unknown ids.
    ///
    /// Returns the number of anomalies repaired this pass. When
    /// repairs occurred and the §2 recovery protocol is enabled, the
    /// caller broadcasts a `RECOVERY` request — corrupted state may
    /// have lost live-instance messages no structural check can see.
    fn local_audit(&mut self, ctx: &mut Context) -> u64 {
        self.audits_run += 1;
        let mut repairs = 0u64;
        let dlen = self.decided.len();
        if self.persisted_len > dlen {
            self.persisted_len = dlen;
            repairs += 1;
        }
        if self.last_snapshot_len > self.persisted_len {
            self.last_snapshot_len = self.persisted_len;
            repairs += 1;
        }
        let linked = ctx
            .store
            .height(self.decided.tip())
            .is_some_and(|h| h.saturating_add(1) == dlen);
        if !linked {
            self.decided = Log::genesis(&ctx.store);
            self.persisted_len = self.persisted_len.min(1);
            self.last_snapshot_len = self.last_snapshot_len.min(1);
            repairs += 1;
        }
        if !self.sync.knows(self.decided.tip()) {
            // Amnesia: the sync plane forgot our own decided chain.
            // Re-learn it through the delta-sync fetch plane (same path
            // as a restart whose WAL head outran its blocks).
            if self.recover_fetch.is_none() {
                self.recover_fetch = Some(self.decided.tip());
            }
            repairs += 1;
        }
        if self.verified.len() > self.gossip.seen_count() {
            let gossip = &self.gossip;
            repairs += self.verified.quarantine(|id| gossip.has_seen(id)) as u64;
        }
        repairs += self.sync.audit(&ctx.store);
        self.audit_repairs += repairs;
        repairs
    }

    fn prune(&mut self, v: View) {
        // GA_w ends at t_{w+1} + 2Δ: anything older than v−2 is finished.
        self.gas.retain(|w, _| w.number() + 2 >= v.number());
        // Proposals for view w only matter until t_w + Δ.
        self.proposals.retain(|w, _| w.number() + 1 >= v.number());
        // Relay buffers follow the proposal window.
        self.prop_relays.retain(|w, _| w.number() + 1 >= v.number());
        // The archive follows the GA window: recovering validators can
        // only act on still-live instances anyway.
        self.archive.retain(|w, _| w.number() + 2 >= v.number());
        // Vote groups follow the GA window too: a finished instance
        // takes no more snapshots, so nothing is owed a relay.
        self.agg_groups.retain(|w, _| w.number() + 2 >= v.number());
    }

    /// Records a fresh message in the recovery archive.
    fn archive_message(&mut self, msg: &SignedMessage) {
        if !self.cfg.recovery {
            return;
        }
        let view = match msg.payload() {
            Payload::Log { instance, .. } => instance.view(),
            Payload::Proposal { view, .. } => *view,
            _ => return,
        };
        self.archive.entry(view).or_default().push(*msg);
    }

    /// Serves a recovery request: re-send every archived message from
    /// `from_view` onward to the requester.
    fn serve_recovery(&mut self, requester: tobsvd_types::ValidatorId, from_view: View, ctx: &mut Context) {
        if !self.cfg.recovery || requester == self.me {
            return;
        }
        self.recoveries_served += 1;
        let mut sent = 0usize;
        for (view, msgs) in self.archive.range(from_view..) {
            let _ = view;
            for msg in msgs {
                if sent >= self.cfg.recovery_response_cap {
                    return;
                }
                ctx.forward_to(vec![requester], *msg);
                sent += 1;
            }
        }
    }

    /// Issues a `BlockRequest` for the chain ending at `missing`:
    /// targeted at `target` for the first attempt, broadcast on retries
    /// (`target = None`) so any honest awake peer can answer.
    fn request_blocks(&mut self, missing: BlockId, target: Option<ValidatorId>, ctx: &mut Context) {
        let from_height = self.sync.fetch_start(missing, &ctx.store);
        let msg = SignedMessage::sign(
            &self.keypair,
            self.me,
            Payload::BlockRequest { tip: missing, from_height },
        );
        match target {
            Some(t) => ctx.multicast(vec![t], msg),
            None => ctx.broadcast(msg),
        }
    }

    /// Serves a fetch: responds with the requested chain range if we
    /// know (can vouch for) the tip. Responses are capped at
    /// [`wire::MAX_FETCH_BLOCKS`]; a longer gap is served lowest-first
    /// and the requester re-requests the rest once its knowledge grows.
    fn serve_fetch(
        &mut self,
        requester: ValidatorId,
        tip: BlockId,
        from_height: u64,
        ctx: &mut Context,
    ) {
        if requester == self.me || !self.sync.knows(tip) {
            return;
        }
        let Some(tip_height) = ctx.store.height(tip) else {
            return;
        };
        if from_height == 0 || from_height > tip_height {
            return;
        }
        let full = tip_height - from_height + 1;
        // A gap wider than one response is served *top-first*: the
        // requester asked for `tip` specifically, and serving the
        // bottom would let a from_height hint that never advances
        // (e.g. the session layer's full-resync retries) re-fetch the
        // same lowest range forever. The requester fetches the
        // still-unanchored range below via the anchor-fetch fallback
        // in `on_blocks`, so arbitrarily deep gaps close in
        // O(gap / MAX_FETCH_BLOCKS) round trips.
        let (from_height, count) = if full > wire::MAX_FETCH_BLOCKS {
            (tip_height - wire::MAX_FETCH_BLOCKS + 1, wire::MAX_FETCH_BLOCKS)
        } else {
            (from_height, full)
        };
        let msg = SignedMessage::sign(
            &self.keypair,
            self.me,
            Payload::BlockResponse { tip, from_height, count },
        );
        ctx.multicast(vec![requester], msg);
        self.sync.note_served();
    }

    /// Absorbs a fetch response; parked messages it resolved replay via
    /// [`Validator::drain_pending`]. A response that cannot anchor yet
    /// (a capped, top-first range whose bottom we are still missing)
    /// triggers a fetch of the anchor chain below it instead.
    fn on_blocks(&mut self, sender: ValidatorId, tip: BlockId, from_height: u64, ctx: &mut Context) {
        if self.sync.accept_response(tip, from_height, &ctx.store) == 0 {
            if from_height > 1 {
                if let Some(anchor) = ctx.store.ancestor_at(tip, from_height - 1) {
                    if !self.sync.knows(anchor) && self.sync.should_fetch(anchor) {
                        self.request_blocks(anchor, Some(sender), ctx);
                        self.sync.note_requested(anchor, ctx.time);
                    }
                }
            }
            return;
        }
        self.drain_pending(ctx);
    }

    /// Resolution gate in front of the protocol state machine: a message
    /// referencing unknown blocks is parked and fetched instead of
    /// processed. Every processed message may grow the knowledge set
    /// (its inline window), so the pending set is drained afterwards —
    /// a parked message's gap can close through ordinary announcements,
    /// not just fetch responses.
    fn on_protocol_message(&mut self, msg: &SignedMessage, ctx: &mut Context) {
        self.handle_or_park(msg, ctx);
        self.drain_pending(ctx);
    }

    fn handle_or_park(&mut self, msg: &SignedMessage, ctx: &mut Context) {
        let Some(log) = msg.payload().log() else {
            return;
        };
        match self.sync.resolve(&log, &ctx.store) {
            Resolution::Resolved => self.process(msg, ctx),
            Resolution::Missing(missing) => {
                if self.sync.park(missing, *msg, ctx.time) {
                    self.request_blocks(missing, Some(msg.sender()), ctx);
                    self.sync.note_requested(missing, ctx.time);
                }
            }
        }
    }

    /// Replays parked messages whose gaps have closed, to a fixpoint
    /// (a replay may absorb a window that unblocks the next one; it may
    /// also re-park on a deeper gap, issuing the next fetch).
    fn drain_pending(&mut self, ctx: &mut Context) {
        while self.sync.has_resolvable() {
            for msg in self.sync.take_resolved() {
                self.handle_or_park(&msg, ctx);
            }
        }
    }

    /// The vote group for `(instance, log)`, created on first use.
    /// Groups per instance are few (honestly at most two — the gossip
    /// cap drops further distinct logs per sender), so a linear scan in
    /// arrival order keeps the flush deterministic.
    ///
    /// `None` is unreachable in practice (the group is created on
    /// demand); the `Option` keeps the accessor total without an
    /// unreachable panic arm, and the caller degrades to the baseline
    /// per-vote forward.
    fn group_mut(&mut self, instance: InstanceId, log: Log) -> Option<&mut VoteGroup> {
        let groups = self.agg_groups.entry(instance.view()).or_default();
        match groups.iter().position(|g| g.instance == instance && g.log == log) {
            Some(i) => groups.get_mut(i),
            None => {
                groups.push(VoteGroup::new(instance, log));
                groups.last_mut()
            }
        }
    }

    /// Buffers a fresh, resolved, in-window vote for the boundary flush.
    fn note_vote(&mut self, msg: &SignedMessage, instance: InstanceId, log: Log, ctx: &mut Context) {
        if !self.cfg.certificates {
            return;
        }
        let Some(g) = self.group_mut(instance, log) else {
            // No group handle: keep the relay guarantee the simple way.
            ctx.forward(*msg);
            return;
        };
        if !g.have_votes.insert(msg.sender()) {
            // Beyond the bitmap capacity: fall back to the baseline
            // immediate forward so the relay guarantee still holds.
            ctx.forward(*msg);
            return;
        }
        g.votes.push(*msg);
    }

    /// Handles a fresh, resolved, in-window quorum certificate.
    ///
    /// The attested `(signer, log)` claims enter the GA only through one
    /// of two authenticated doors: every attested signer was already
    /// vouched (its vote individually verified here, or covered by a
    /// previously verified certificate) — the subset fast path, no new
    /// claims — or the aggregate itself verifies against the
    /// reconstructed per-signer vote bindings. A forged aggregate fails
    /// the recomputation and is dropped before any absorption or
    /// forwarding.
    fn on_certificate(
        &mut self,
        msg: &SignedMessage,
        instance: InstanceId,
        log: Log,
        signers: SignerSet,
        agg: AggregateSignature,
        ctx: &mut Context,
    ) {
        if !self.cfg.certificates {
            return;
        }
        // A certificate naming validators outside the committee claims
        // votes that cannot exist; drop it outright.
        if signers.is_empty() || signers.iter().any(|s| s.index() >= self.cfg.n) {
            return;
        }
        let w = instance.view();
        let Some(g) = self.group_mut(instance, log) else { return };
        if signers.is_subset(&g.vouched()) {
            // Every attested vote is already authenticated here; the
            // certificate adds no claims and needs no relay from us
            // (held votes flush through our own machinery; previously
            // verified certificates were queued when they arrived).
            self.agg_verify_skips += 1;
            ctx.note_agg_verify_skip();
            return;
        }
        self.agg_verifies += 1;
        ctx.note_agg_verify();
        let vote_payload = Payload::Log { instance, log };
        let signer_ids: Vec<ValidatorId> = signers.iter().collect();
        let bindings: Vec<Digest> = signer_ids
            .iter()
            .map(|s| SignedMessage::binding_for(*s, &vote_payload))
            .collect();
        let msgs: Vec<&[u8]> = bindings.iter().map(|d| d.as_bytes().as_slice()).collect();
        let pks: Vec<PublicKey> =
            signer_ids.iter().map(|s| KeyCache::keypair(s.key_seed()).public()).collect();
        let pk_refs: Vec<&PublicKey> = pks.iter().collect();
        if !agg.aggregate_verify(&msgs, &pk_refs) {
            return; // forged aggregate: no absorption, no forward
        }
        if let Some(g) = self.group_mut(instance, log) {
            g.cert_verified.union_with(&signers);
            // Queue for boundary forwarding iff it vouches signers we
            // could not otherwise relay — this is what preserves the
            // paper's graded-delivery guarantee for votes we never saw
            // individually.
            if !signers.is_subset(&g.relayed_by_us()) {
                g.pending_certs.push(*msg);
            }
        }
        // Absorb the attested votes into the GA (duplicates no-op,
        // conflicting logs across certificates surface as equivocation
        // in the tracker, exactly as individual votes would).
        for signer in signer_ids {
            self.ensure_ga(w).on_log(signer, log);
        }
    }

    /// Boundary flush of the aggregation plane (every Δ while awake):
    /// forward verified certificates that extend our coverage, emit our
    /// own certificate once a group turns quorate (> n/2 distinct
    /// voters), and relay the remaining buffered votes individually.
    fn flush_aggregation(&mut self, ctx: &mut Context) {
        if !self.cfg.certificates {
            return;
        }
        let quorum = self.cfg.n / 2;
        let mut own_certs = 0u64;
        for groups in self.agg_groups.values_mut() {
            for g in groups.iter_mut() {
                // Received certificates first: maximal coverage means
                // fewer individual forwards below.
                for cert in std::mem::take(&mut g.pending_certs) {
                    let Payload::Certificate { signers, .. } = cert.payload() else {
                        continue;
                    };
                    if !signers.is_subset(&g.relayed_by_us()) {
                        ctx.forward(cert);
                        g.covered.union_with(signers);
                    }
                }
                // Our own certificate, at most once per group, and only
                // if it vouches someone our coverage does not.
                if !g.own_cert_emitted
                    && g.votes.len() > quorum
                    && !g.have_votes.is_subset(&g.covered)
                {
                    let mut votes: Vec<&SignedMessage> = g.votes.iter().collect();
                    votes.sort_by_key(|m| m.sender());
                    let sigs: Vec<&Signature> = votes.iter().map(|m| m.signature()).collect();
                    // A quorate group is non-empty, so aggregation always
                    // succeeds; on the impossible `None` the group simply
                    // falls through to per-vote forwarding below.
                    if let Ok(agg) = AggregateSignature::aggregate(&sigs) {
                        let payload = Payload::Certificate {
                            instance: g.instance,
                            log: g.log,
                            signers: g.have_votes,
                            agg,
                        };
                        ctx.broadcast(SignedMessage::sign(&self.keypair, self.me, payload));
                        own_certs += 1;
                        g.own_cert_emitted = true;
                        let have = g.have_votes;
                        g.covered.union_with(&have);
                        g.flushed = g.votes.len();
                    }
                }
                // Whatever is still unflushed goes out individually —
                // the sub-quorum (or late-vote) fallback, identical to
                // the paper's per-receiver forwarding.
                while let Some(vote) = g.votes.get(g.flushed).copied() {
                    g.flushed += 1;
                    if !g.covered.contains(vote.sender()) {
                        ctx.forward(vote);
                    }
                }
            }
        }
        self.certificates_emitted += own_certs;
        // Proposal side: relay the highest-priority verified proposal
        // per view (only when it outranks everything we relayed for the
        // view before) plus every buffered copy from a detected
        // equivocator — the two relays that carry information. The rest
        // of the echo is dropped; see [`ProposalRelay`] for why votes
        // never depend on it.
        for (view, relay) in self.prop_relays.iter_mut() {
            let tracker = self.proposals.get(view);
            let mut best: Option<((VrfOutput, std::cmp::Reverse<ValidatorId>), SignedMessage)> =
                None;
            for msg in std::mem::take(&mut relay.pending) {
                let Payload::Proposal { vrf, .. } = msg.payload() else {
                    continue;
                };
                if tracker.is_some_and(|t| t.is_equivocator(msg.sender())) {
                    // Evidence: both conflicting copies (the gossip cap
                    // admits at most two per sender) spread so peers
                    // discard the equivocator too.
                    ctx.forward(msg);
                    continue;
                }
                let prio = (*vrf, std::cmp::Reverse(msg.sender()));
                if best.as_ref().map_or(true, |(p, _)| prio > *p) {
                    best = Some((prio, msg));
                }
            }
            if let Some((prio, msg)) = best {
                if relay.best_relayed.map_or(true, |b| prio > b) {
                    ctx.forward(msg);
                    relay.best_relayed = Some(prio);
                }
            }
        }
    }
}

/// The durable [`BlockRecord`] for a stored block, `None` for genesis
/// (whose content is implicit) or an unknown id.
fn block_record(store: &BlockStore, id: BlockId) -> Option<BlockRecord> {
    let block = store.get(id)?;
    let proposer = block.proposer()?;
    Some(BlockRecord {
        parent: block.parent(),
        expected_id: block.id(),
        proposer,
        view: block.view(),
        txs: block.txs().to_vec(),
    })
}

impl Node for Validator {
    fn on_wake(&mut self, ctx: &mut Context) {
        if !self.started {
            // First activation: nothing to recover.
            self.started = true;
            return;
        }
        if !self.cfg.recovery {
            return;
        }
        // §2: "upon waking up, a validator sends a RECOVERY message to
        // other validators", asking for everything affecting still-live
        // GA instances.
        let current = View::of_time(ctx.time, ctx.delta);
        let from_view = View::new(current.number().saturating_sub(2));
        let msg = SignedMessage::sign(
            &self.keypair,
            self.me,
            Payload::Recovery { from_view, log: self.decided },
        );
        ctx.broadcast(msg);
    }

    fn on_phase(&mut self, ctx: &mut Context) {
        let (v, phase) = self.sched.phase_at(ctx.time);
        // Self-stabilization: audit structural invariants before acting
        // on any of the state they guard. On repair, broadcast the §2
        // RECOVERY request — the quarantined state may have included
        // live-instance messages only peers can restore.
        if self.local_audit(ctx) > 0 && self.cfg.recovery {
            let from_view = View::new(v.number().saturating_sub(2));
            let msg = SignedMessage::sign(
                &self.keypair,
                self.me,
                Payload::Recovery { from_view, log: self.decided },
            );
            ctx.broadcast(msg);
        }
        // A durably recorded decided head the restart could not rebuild
        // locally: close the gap over the delta-sync plane (broadcast,
        // so any honest awake peer can serve it).
        if let Some(missing) = self.recover_fetch.take() {
            if !self.sync.knows(missing) && self.sync.should_fetch(missing) {
                self.request_blocks(missing, None, ctx);
                self.sync.note_requested(missing, ctx.time);
            }
        }
        // Retry unanswered fetches first (as broadcasts, so any honest
        // awake peer can answer a request whose original target dropped
        // it, slept, or turned Byzantine).
        // Saturating: hostile checker scenarios drive Δ toward u64::MAX,
        // where `2 × Δ` wraps and every fetch would retry instantly.
        let retry_after = SyncState::RETRY_AFTER_DELTAS.saturating_mul(ctx.delta.ticks());
        for missing in self.sync.stale_requests(ctx.time, retry_after) {
            self.request_blocks(missing, None, ctx);
        }
        // Flush the aggregation plane: votes and certificates buffered
        // since the previous boundary go out now, as one quorum
        // certificate where a group is quorate.
        self.flush_aggregation(ctx);
        // Drive the ongoing GA instances: the TOB phase at this
        // boundary consumes outputs computed at this very time (Figure 3
        // arrows land on the phase they feed).
        let (time, delta) = (ctx.time, ctx.delta);
        for ga in self.gas.values_mut() {
            ga.on_phase(time, delta, &ctx.store);
        }
        match phase {
            ViewPhase::Propose => {
                self.prune(v);
                self.propose(v, ctx);
            }
            ViewPhase::Vote => self.vote(v, ctx),
            ViewPhase::Decide => self.decide(v, ctx),
            ViewPhase::Idle => {}
        }
    }

    fn on_state_fault(&mut self, fault: &StateFault, ctx: &mut Context) {
        match *fault {
            StateFault::DecidedReset => {
                self.decided = Log::genesis(&ctx.store);
            }
            StateFault::CounterSkew { skew } => {
                self.persisted_len = self.persisted_len.saturating_add(skew);
                self.last_snapshot_len = self.last_snapshot_len.saturating_add(skew);
            }
            StateFault::VerifiedPoison { seed } => {
                for lane in 0..4 {
                    self.verified.poison(Digest::from_bytes(garbage_bytes(seed, lane)));
                }
            }
            StateFault::SyncPoison { seed } => {
                for lane in 0..4 {
                    self.sync.poison_known(BlockId(Digest::from_bytes(garbage_bytes(seed, lane))));
                }
            }
            StateFault::SyncAmnesia => {
                self.sync.forget_all();
            }
            StateFault::SnapshotBitFlip { byte, bit } => {
                if let Some(handle) = self.durable.clone() {
                    handle.lock().corrupt_snapshot_bit(byte as usize, u32::from(bit));
                }
            }
            StateFault::WalBitFlip { byte, bit } => {
                if let Some(handle) = self.durable.clone() {
                    handle.lock().corrupt_wal_bit(byte as usize, u32::from(bit));
                }
            }
            StateFault::WalTear { bytes } => {
                if let Some(handle) = self.durable.clone() {
                    handle.lock().tear_wal_tail(bytes as usize);
                }
            }
        }
    }

    fn on_message(&mut self, msg: &SignedMessage, ctx: &mut Context) {
        if !self.admit(msg, ctx) {
            return; // forged signature
        }
        // Fetch traffic bypasses gossip entirely: it is point-to-point
        // transport (never re-broadcast), serving is idempotent, and a
        // retry is a byte-identical re-sign of the original request —
        // the seen-set would silently discard every retry at a peer
        // that could not serve the first copy (and would grow with
        // transport chatter).
        match msg.payload() {
            Payload::BlockRequest { tip, from_height } => {
                self.serve_fetch(msg.sender(), *tip, *from_height, ctx);
                return;
            }
            Payload::BlockResponse { tip, from_height, .. } => {
                self.on_blocks(msg.sender(), *tip, *from_height, ctx);
                return;
            }
            _ => {}
        }
        let reception = self.gossip.on_receive(msg);
        // Under the aggregation plane, votes, certificates and
        // proposals are not forwarded on reception: votes and
        // certificates buffer in their vote group and flush at the next
        // phase boundary (as one certificate when the group is
        // quorate); proposals buffer in their view's relay and flush as
        // the best-VRF proposal plus equivocation evidence. Everything
        // else keeps the immediate per-receiver forward of the paper's
        // gossip.
        let deferred = self.cfg.certificates
            && matches!(
                msg.payload(),
                Payload::Log { .. } | Payload::Certificate { .. } | Payload::Proposal { .. }
            );
        if reception.forward && !deferred {
            ctx.forward(*msg);
        }
        if !reception.fresh {
            return;
        }
        self.on_protocol_message(msg, ctx);
    }

    fn label(&self) -> &'static str {
        "tob-svd"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

impl Validator {
    /// The protocol state machine proper, entered only with fully
    /// resolved messages (every referenced block known).
    fn process(&mut self, msg: &SignedMessage, ctx: &mut Context) {
        let current = View::of_time(ctx.time, ctx.delta);
        match msg.payload() {
            Payload::Log { instance, log } => {
                let w = instance.view();
                // Accept instances in the live window: the previous view's
                // GA is still running, the next view's cannot legitimately
                // have inputs yet but a Δ of clock skew is tolerated.
                if w.number() + 2 < current.number() || w.number() > current.number() + 1 {
                    return;
                }
                self.archive_message(msg);
                self.ensure_ga(w).on_log(msg.sender(), *log);
                self.note_vote(msg, *instance, *log, ctx);
            }
            Payload::Certificate { instance, log, signers, agg } => {
                let w = instance.view();
                if w.number() + 2 < current.number() || w.number() > current.number() + 1 {
                    return;
                }
                self.on_certificate(msg, *instance, *log, *signers, *agg, ctx);
            }
            Payload::Proposal { view, log, vrf, proof } => {
                // Window check before the VRF check: an out-of-window
                // proposal is dropped either way, so it should never
                // cost crypto (and never touch the per-view tracker,
                // which only exists for live views).
                if view.number() + 1 < current.number() || view.number() > current.number() + 1 {
                    return;
                }
                // VRF memo: a valid (output, proof) pair is unique per
                // (sender, view), so a claim matching an already-verified
                // pair needs no re-check — an equivocation burst costs
                // one VRF verify. Matching the full pair keeps honest
                // validators uniform: a frame a cold validator would
                // reject (e.g. right output, garbage proof) also misses
                // the memo at a warm one.
                let memo_hit = self
                    .proposals
                    .get(view)
                    .is_some_and(|tr| tr.vrf_verified(msg.sender(), vrf, proof));
                if memo_hit {
                    self.vrf_verify_skips += 1;
                    ctx.note_vrf_verify_skip();
                } else {
                    self.vrf_verifies += 1;
                    ctx.note_vrf_verify();
                    if !verify_vrf(msg.sender(), *view, vrf, proof) {
                        return; // forged VRF: proposal carries no priority
                    }
                    self.proposals
                        .entry(*view)
                        .or_default()
                        .note_vrf_verified(msg.sender(), *vrf, *proof);
                }
                self.archive_message(msg);
                self.proposals
                    .entry(*view)
                    .or_default()
                    .record(msg.sender(), *log, *vrf);
                // Certificate mode: the relay decision is deferred to
                // the boundary flush, where this view's tracker knows
                // the best VRF seen and the equivocators. Only
                // VRF-verified proposals get here, so a forged-VRF
                // frame is never relayed either.
                if self.cfg.certificates {
                    self.prop_relays.entry(*view).or_default().pending.push(*msg);
                }
            }
            Payload::Vote { .. } => {} // not part of TOB-SVD
            Payload::Recovery { from_view, .. } => {
                self.serve_recovery(msg.sender(), *from_view, ctx);
            }
            // Finality votes belong to the gadget layered on top
            // (tobsvd-finality); the base protocol ignores them.
            Payload::FinalityVote { .. } => {}
            // Handled one layer up, before the resolution gate.
            Payload::BlockRequest { .. } | Payload::BlockResponse { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_sim::Mempool;
    use tobsvd_types::{Delta, Time, ValidatorId};

    fn ctx_at(t: u64, store: &BlockStore) -> Context {
        Context::new(
            Time::new(t),
            ValidatorId::new(0),
            Delta::new(8),
            store.clone(),
            Mempool::new(),
        )
    }

    #[test]
    fn view0_proposes_and_votes_genesis_extension() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);

        // t = 0: propose (candidate = genesis via GA_{-1}).
        let mut ctx = ctx_at(0, &store);
        val.on_phase(&mut ctx);
        assert_eq!(ctx.outbox().len(), 1);
        assert_eq!(val.proposals_made(), 1);

        // t = Δ: vote (lock = genesis; no proposals received → lock).
        let mut ctx = ctx_at(8, &store);
        val.on_phase(&mut ctx);
        assert_eq!(val.votes_cast(), 1);
        let vote = match ctx.outbox() {
            [tobsvd_sim::Outgoing::Broadcast(m)] => *m,
            other => panic!("expected one broadcast, got {other:?}"),
        };
        match vote.payload() {
            Payload::Log { instance, log } => {
                assert_eq!(*instance, InstanceId(0));
                assert!(log.is_genesis(&store), "no proposal received → vote the lock");
            }
            p => panic!("expected LOG, got {p:?}"),
        }
    }

    #[test]
    fn vote_adopts_highest_vrf_proposal_extending_lock() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);

        // Two proposals for view 0 arrive before the vote.
        for sender in [ValidatorId::new(1), ValidatorId::new(2)] {
            let log = g.extend_empty(&store, sender, View::ZERO);
            let (vrf, proof) = vrf_for(sender, View::ZERO);
            let kp = Keypair::from_seed(sender.key_seed());
            let msg = SignedMessage::sign(
                &kp,
                sender,
                Payload::Proposal { view: View::ZERO, log, vrf, proof },
            );
            let mut ctx = ctx_at(3, &store);
            val.on_message(&msg, &mut ctx);
        }
        let mut ctx = ctx_at(8, &store);
        val.on_phase(&mut ctx);
        let winner = [ValidatorId::new(1), ValidatorId::new(2)]
            .into_iter()
            .max_by_key(|v| vrf_for(*v, View::ZERO).0)
            .unwrap();
        // The boundary flush relays exactly the winning proposal (the
        // loser's echo is dropped), then the vote adopts its log.
        match ctx.outbox() {
            [tobsvd_sim::Outgoing::Forward(relay), tobsvd_sim::Outgoing::Broadcast(m)] => {
                assert!(matches!(relay.payload(), Payload::Proposal { .. }));
                assert_eq!(relay.sender(), winner, "only the best-VRF proposal is relayed");
                match m.payload() {
                    Payload::Log { log, .. } => {
                        let block = store.get(log.tip()).unwrap();
                        assert_eq!(block.proposer(), Some(winner));
                    }
                    p => panic!("expected LOG, got {p:?}"),
                }
            }
            other => panic!("expected relay + vote, got {other:?}"),
        }
    }

    #[test]
    fn forged_vrf_proposals_ignored() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);
        let sender = ValidatorId::new(1);
        let log = g.extend_empty(&store, sender, View::ZERO);
        // Claim another validator's (higher?) VRF — proof won't verify.
        let (vrf, proof) = vrf_for(ValidatorId::new(2), View::ZERO);
        let kp = Keypair::from_seed(sender.key_seed());
        let msg = SignedMessage::sign(
            &kp,
            sender,
            Payload::Proposal { view: View::ZERO, log, vrf, proof },
        );
        let mut ctx = ctx_at(3, &store);
        val.on_message(&msg, &mut ctx);
        // The proposal must not have been recorded.
        let mut ctx = ctx_at(8, &store);
        val.on_phase(&mut ctx);
        match ctx.outbox() {
            [tobsvd_sim::Outgoing::Broadcast(m)] => {
                let log = m.payload().log().expect("LOG carries a log");
                assert!(log.is_genesis(&store), "forged proposal ignored");
            }
            other => panic!("expected one broadcast, got {other:?}"),
        }
    }

    #[test]
    fn no_decision_without_grade2_output() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        // Jump straight to view 1's decide phase with no GA_0 state.
        let mut ctx = ctx_at(4 * 8 + 2 * 8, &store);
        val.on_phase(&mut ctx);
        assert!(ctx.decisions().is_empty());
        assert_eq!(val.decisions_made(), 0);
    }

    #[test]
    fn oversized_fetch_is_served_top_first() {
        // A request spanning more than MAX_FETCH_BLOCKS must be served
        // from the *top* of the range: the requester asked for `tip`,
        // and bottom-first serving would let a never-advancing
        // from_height hint re-fetch the same lowest range forever.
        let store = BlockStore::new();
        let cfg = TobConfig::new(2);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let blocks = tobsvd_types::wire::MAX_FETCH_BLOCKS + 10;
        let mut log = Log::genesis(&store);
        for i in 0..blocks {
            log = log.extend_empty(&store, ValidatorId::new(0), View::new(i + 1));
            // Grow knowledge one block at a time (the inline window).
            let mut ctx = ctx_at(0, &store);
            let kp = Keypair::from_seed(ValidatorId::new(1).key_seed());
            // Distinct instances: gossip allows only two distinct votes
            // per (sender, instance), and the resolution gate runs for
            // every fresh message regardless of the GA's view window.
            let msg = SignedMessage::sign(
                &kp,
                ValidatorId::new(1),
                Payload::Vote { instance: InstanceId(i), log },
            );
            val.on_message(&msg, &mut ctx);
        }
        let kp = Keypair::from_seed(ValidatorId::new(1).key_seed());
        let req = SignedMessage::sign(
            &kp,
            ValidatorId::new(1),
            Payload::BlockRequest { tip: log.tip(), from_height: 1 },
        );
        let mut ctx = ctx_at(8, &store);
        val.on_message(&req, &mut ctx);
        match ctx.outbox() {
            [tobsvd_sim::Outgoing::Multicast(targets, m)] => {
                assert_eq!(targets, &vec![ValidatorId::new(1)]);
                match m.payload() {
                    Payload::BlockResponse { tip, from_height, count } => {
                        assert_eq!(*tip, log.tip());
                        assert_eq!(*count, tobsvd_types::wire::MAX_FETCH_BLOCKS);
                        assert_eq!(
                            *from_height,
                            blocks - tobsvd_types::wire::MAX_FETCH_BLOCKS + 1,
                            "capped response must cover the top of the range"
                        );
                    }
                    p => panic!("expected BlockResponse, got {p:?}"),
                }
            }
            other => panic!("expected one targeted response, got {other:?}"),
        }
    }

    #[test]
    fn fetch_requests_are_served_even_after_duplicate_sightings() {
        // Regression: retries are byte-identical re-signs of the
        // original request; gossip dedup must not swallow them. A peer
        // that could not serve the first copy (tip unknown) must serve
        // the identical retry once it learns the chain.
        let store = BlockStore::new();
        let cfg = TobConfig::new(3);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let log = Log::genesis(&store).extend_empty(&store, ValidatorId::new(1), View::new(1));
        let kp = Keypair::from_seed(ValidatorId::new(2).key_seed());
        let req = SignedMessage::sign(
            &kp,
            ValidatorId::new(2),
            Payload::BlockRequest { tip: log.tip(), from_height: 1 },
        );
        // First sighting: tip unknown, nothing served.
        let mut ctx = ctx_at(1, &store);
        val.on_message(&req, &mut ctx);
        assert!(ctx.outbox().is_empty(), "cannot serve an unknown tip");
        // The peer learns the chain (a vote's inline window carries it).
        let kp1 = Keypair::from_seed(ValidatorId::new(1).key_seed());
        let vote = SignedMessage::sign(
            &kp1,
            ValidatorId::new(1),
            Payload::Vote { instance: InstanceId(0), log },
        );
        let mut ctx = ctx_at(2, &store);
        val.on_message(&vote, &mut ctx);
        // The byte-identical retry must now be served.
        let mut ctx = ctx_at(3, &store);
        val.on_message(&req, &mut ctx);
        assert!(
            ctx.outbox().iter().any(|o| matches!(
                o,
                tobsvd_sim::Outgoing::Multicast(_, m)
                    if matches!(m.payload(), Payload::BlockResponse { .. })
            )),
            "retry swallowed: {:?}",
            ctx.outbox()
        );
    }

    #[test]
    fn forged_signature_never_seeds_the_verified_set() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);
        let sender = ValidatorId::new(1);
        let kp = Keypair::from_seed(sender.key_seed());
        let genuine =
            SignedMessage::sign(&kp, sender, Payload::Log { instance: InstanceId(0), log: g });
        // Same (sender, payload) — hence the same id — but a signature
        // from the wrong key: the forgery an id-keyed cache must never
        // mistake for the real thing.
        let wrong = Keypair::from_seed(ValidatorId::new(2).key_seed());
        let forged =
            SignedMessage::from_parts(sender, *genuine.payload(), wrong.sign(b"forged"));
        assert_eq!(forged.id(), genuine.id(), "forgery shares the id by construction");

        // Forged copy first: dropped at verify, set not poisoned,
        // nothing processed.
        let mut ctx = ctx_at(3, &store);
        val.on_message(&forged, &mut ctx);
        assert_eq!(val.sig_verifies(), 1);
        assert_eq!(val.verified_ids(), 0, "failed verify must not seed the set");
        assert!(val.ga(View::ZERO).is_none(), "forged LOG must not reach the GA");

        // The genuine copy afterwards is NOT shadowed by the forgery: it
        // verifies, seeds the set, and is processed normally.
        let mut ctx = ctx_at(3, &store);
        val.on_message(&genuine, &mut ctx);
        assert_eq!(val.sig_verifies(), 2);
        assert_eq!(val.verified_ids(), 1);
        assert!(val.ga(View::ZERO).is_some(), "genuine LOG processed after the forgery");

        // A later copy (forged or not) of the verified id takes the skip
        // path and is deduplicated by gossip — no reprocessing.
        let mut ctx = ctx_at(3, &store);
        val.on_message(&forged, &mut ctx);
        assert_eq!(val.sig_verify_skips(), 1);
        assert_eq!(val.sig_verifies(), 2, "no third verification");
    }

    #[test]
    fn duplicate_copies_skip_crypto_but_process_once() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);
        let sender = ValidatorId::new(1);
        let kp = Keypair::from_seed(sender.key_seed());
        let msg =
            SignedMessage::sign(&kp, sender, Payload::Log { instance: InstanceId(0), log: g });
        for _ in 0..3 {
            let mut ctx = ctx_at(3, &store);
            val.on_message(&msg, &mut ctx);
        }
        assert_eq!(val.sig_verifies(), 1, "one verify per unique message id");
        assert_eq!(val.sig_verify_skips(), 2, "every duplicate copy skips crypto");
        assert_eq!(val.unique_messages_seen(), 1, "gossip still dedups to one");
    }

    #[test]
    fn vrf_memo_skips_reverification_and_equivocation_still_discards() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);
        let sender = ValidatorId::new(1);
        let kp = Keypair::from_seed(sender.key_seed());
        let (vrf, proof) = vrf_for(sender, View::ZERO);
        // Two *different* proposals (equivocation) carrying the same
        // genuine VRF pair.
        for tag in [ValidatorId::new(8), ValidatorId::new(9)] {
            let log = g.extend_empty(&store, tag, View::ZERO);
            let msg = SignedMessage::sign(
                &kp,
                sender,
                Payload::Proposal { view: View::ZERO, log, vrf, proof },
            );
            let mut ctx = ctx_at(3, &store);
            val.on_message(&msg, &mut ctx);
        }
        assert_eq!(val.vrf_verifies(), 1, "the second distinct proposal hits the memo");
        assert_eq!(val.vrf_verify_skips(), 1);
        // Equivocation semantics are intact: both proposals discarded
        // from the vote, and the flush relays both copies as evidence
        // (never as a best-proposal pick).
        let mut ctx = ctx_at(8, &store);
        val.on_phase(&mut ctx);
        match ctx.outbox() {
            [tobsvd_sim::Outgoing::Forward(e1), tobsvd_sim::Outgoing::Forward(e2), tobsvd_sim::Outgoing::Broadcast(m)] =>
            {
                for evidence in [e1, e2] {
                    assert!(matches!(evidence.payload(), Payload::Proposal { .. }));
                    assert_eq!(evidence.sender(), sender, "evidence is the equivocator's copies");
                }
                assert_ne!(e1.id(), e2.id(), "both conflicting copies spread");
                let log = m.payload().log().expect("LOG carries a log");
                assert!(log.is_genesis(&store), "equivocating proposals must be discarded");
            }
            other => panic!("expected two evidence relays + vote, got {other:?}"),
        }
        // A mismatching VRF claim never hits the memo: a fresh sender
        // claiming someone else's VRF value goes through verification
        // (and fails — the proposal is not recorded).
        let liar = ValidatorId::new(3);
        let (other_vrf, other_proof) = vrf_for(ValidatorId::new(2), View::ZERO);
        let log = g.extend_empty(&store, ValidatorId::new(10), View::ZERO);
        let msg = SignedMessage::sign(
            &Keypair::from_seed(liar.key_seed()),
            liar,
            Payload::Proposal { view: View::ZERO, log, vrf: other_vrf, proof: other_proof },
        );
        let mut ctx = ctx_at(3, &store);
        val.on_message(&msg, &mut ctx);
        assert_eq!(val.vrf_verifies(), 2, "a non-memoized claim is verified");
        assert_eq!(val.vrf_verify_skips(), 1);
    }

    #[test]
    fn correct_output_with_garbage_proof_misses_the_memo_and_is_rejected() {
        // A cold validator rejects a proposal whose VRF proof is
        // tampered (verify_vrf fails); a warm validator that already
        // verified the sender's genuine pair must treat the same frame
        // identically — the memo matches the full (output, proof) pair,
        // so the tampered frame is re-verified and rejected, not
        // recorded as an equivocation.
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);
        let sender = ValidatorId::new(1);
        let kp = Keypair::from_seed(sender.key_seed());
        let (vrf, proof) = vrf_for(sender, View::ZERO);
        let p1 = SignedMessage::sign(
            &kp,
            sender,
            Payload::Proposal { view: View::ZERO, log: g.extend_empty(&store, sender, View::ZERO), vrf, proof },
        );
        let mut ctx = ctx_at(3, &store);
        val.on_message(&p1, &mut ctx);
        assert_eq!(val.vrf_verifies(), 1);
        // Warm now. Same output, garbage proof, different log.
        let garbage = tobsvd_crypto::VrfProof(tobsvd_crypto::Digest::from_bytes([0xab; 32]));
        let p2 = SignedMessage::sign(
            &kp,
            sender,
            Payload::Proposal {
                view: View::ZERO,
                log: g.extend_empty(&store, ValidatorId::new(9), View::ZERO),
                vrf,
                proof: garbage,
            },
        );
        let mut ctx = ctx_at(3, &store);
        val.on_message(&p2, &mut ctx);
        assert_eq!(val.vrf_verifies(), 2, "tampered proof misses the memo and is verified");
        assert_eq!(val.vrf_verify_skips(), 0);
        // The tampered frame was rejected: the sender is NOT an
        // equivocator and p1 still stands.
        let mut ctx = ctx_at(8, &store);
        val.on_phase(&mut ctx);
        match ctx.outbox() {
            [tobsvd_sim::Outgoing::Forward(relay), tobsvd_sim::Outgoing::Broadcast(m)] => {
                assert_eq!(
                    relay.id(),
                    p1.id(),
                    "only the genuine proposal is relayed — the tampered frame is gone"
                );
                let log = m.payload().log().expect("LOG carries a log");
                assert!(
                    !log.is_genesis(&store),
                    "p1 must survive: the tampered frame is dropped, not equivocation evidence"
                );
            }
            other => panic!("expected relay + vote, got {other:?}"),
        }
    }

    #[test]
    fn out_of_window_proposals_cost_no_vrf_check() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);
        let sender = ValidatorId::new(1);
        let kp = Keypair::from_seed(sender.key_seed());
        let (vrf, proof) = vrf_for(sender, View::new(20));
        let msg = SignedMessage::sign(
            &kp,
            sender,
            Payload::Proposal { view: View::new(20), log: g, vrf, proof },
        );
        let mut ctx = ctx_at(3, &store); // current view 0: view 20 is far future
        val.on_message(&msg, &mut ctx);
        assert_eq!(val.vrf_verifies(), 0, "window check precedes the VRF check");
    }

    #[test]
    fn stale_and_far_future_instances_rejected() {
        let store = BlockStore::new();
        let cfg = TobConfig::new(4);
        let mut val = Validator::new(ValidatorId::new(0), cfg, &store);
        let g = Log::genesis(&store);
        let sender = ValidatorId::new(1);
        let kp = Keypair::from_seed(sender.key_seed());
        // Current view at t = 10 views in: messages for view 20 rejected.
        let t = 10 * 4 * 8;
        let msg = SignedMessage::sign(
            &kp,
            sender,
            Payload::Log { instance: InstanceId(20), log: g },
        );
        let mut ctx = ctx_at(t, &store);
        val.on_message(&msg, &mut ctx);
        assert!(val.ga(View::new(20)).is_none());
        // Very old instance also rejected.
        let msg = SignedMessage::sign(
            &kp,
            sender,
            Payload::Log { instance: InstanceId(1), log: g },
        );
        let mut ctx = ctx_at(t, &store);
        val.on_message(&msg, &mut ctx);
        assert!(val.ga(View::new(1)).is_none());
    }
}
