//! High-level assembly of whole-network TOB-SVD simulations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tobsvd_sim::{
    AdmissionPolicy, AdmissionStats, AdvanceMode, AdversaryController, ByzantineFactory,
    CorruptionSchedule, DecisionRecord, DelayPolicy, DeliveryFilter, IdleNode, Invariant, Node,
    OpenLoopSpec, OpenLoopWorkload, ParticipationSchedule, SimConfig, SimReport, Simulation,
    StateFault,
};
use tobsvd_storage::{shared, MemDurable, SharedDurable};
use tobsvd_types::{
    BlockStore, Delta, Time, Transaction, ValidatorId, View,
};

use crate::config::TobConfig;
use crate::leader::good_leader;
use crate::schedule::ViewSchedule;
use crate::validator::Validator;

/// Transaction workload injected into the shared mempool before the run.
///
/// Submission times are honored by proposers (`pending_for_at` filters by
/// submission time), so pre-populating the pool is equivalent to
/// submitting live.
#[derive(Clone, Debug)]
pub enum TxWorkload {
    /// No transactions (pure consensus benchmarking).
    None,
    /// `count` transactions of `size` bytes submitted one tick before
    /// every view's proposal time — the paper's *expected latency*
    /// scenario ("submitted right before the next proposal").
    PerView {
        /// Transactions per view.
        count: usize,
        /// Transaction payload size in bytes.
        size: usize,
    },
    /// `total` transactions of `size` bytes at uniformly random times —
    /// the *transaction expected latency* scenario.
    Random {
        /// Total transactions over the whole run.
        total: usize,
        /// Transaction payload size in bytes.
        size: usize,
    },
    /// Open-loop client traffic: a Zipf-distributed user population
    /// submitting at a configured aggregate rate with periodic bursts
    /// (see [`OpenLoopSpec`]). Submissions go through
    /// [`tobsvd_sim::Mempool::admit`] with real fees and client
    /// identities, so combining this with
    /// [`TobSimulationBuilder::admission`] exercises capacity
    /// shedding, priority eviction and per-client rate caps — the
    /// overload rows of the sweep matrix.
    ///
    /// The generator draws from its own dedicated RNG stream
    /// (`seed ^ 0x0c11_e475`), leaving the legacy workload stream
    /// (`seed ^ 0x7a5c_3b1d`) and every other stream untouched:
    /// fixed-seed fingerprints of existing scenarios are unaffected.
    ///
    /// Arrivals are admitted in arrival order *before* the run (with
    /// their true submission times, which proposers honor). Relative to
    /// live admission this is conservative: a bounded pool sees the
    /// whole backlog at once and gets no credit for mid-run
    /// confirmation pruning, so it sheds at least as much as a live
    /// ingest plane would.
    OpenLoop(OpenLoopSpec),
}

/// Factory building a Byzantine node once the shared store exists.
pub type ByzantineNodeFactory = Box<dyn FnOnce(&BlockStore) -> Box<dyn Node> + Send>;

/// Builder for a complete TOB-SVD network simulation.
///
/// ```
/// use tobsvd_core::TobSimulationBuilder;
///
/// let report = TobSimulationBuilder::new(6)
///     .views(8)
///     .seed(3)
///     .run()
///     .expect("valid configuration");
/// report.assert_safety();
/// assert!(report.max_decided_len() > 1);
/// ```
pub struct TobSimulationBuilder {
    n: usize,
    views: u64,
    seed: u64,
    delta: Delta,
    max_txs_per_block: usize,
    workload: TxWorkload,
    participation: Option<ParticipationSchedule>,
    corruption: CorruptionSchedule,
    byzantine: Vec<(ValidatorId, ByzantineNodeFactory)>,
    delay: Option<Box<dyn DelayPolicy>>,
    filter: Option<Box<dyn DeliveryFilter>>,
    controller: Option<Box<dyn AdversaryController>>,
    byz_factory: Option<ByzantineFactory>,
    recovery: bool,
    certificates: bool,
    drop_while_asleep: bool,
    advance: AdvanceMode,
    invariants: Vec<Box<dyn Invariant>>,
    crashes: Vec<(ValidatorId, Time, Time)>,
    state_faults: Vec<(ValidatorId, Time, StateFault)>,
    snapshot_every: u64,
    admission: Option<AdmissionPolicy>,
}

/// Errors from [`TobSimulationBuilder::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TobError {
    /// `n` must be at least 1.
    NoValidators,
    /// At least one view must be simulated.
    NoViews,
    /// A Byzantine slot index is out of range.
    BadByzantineSlot(ValidatorId),
    /// A crash/restart fault is malformed: the validator is out of
    /// range or the restart does not come after the kill.
    BadCrash(ValidatorId),
    /// A state-corruption fault targets a validator out of range.
    BadStateFault(ValidatorId),
}

impl std::fmt::Display for TobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TobError::NoValidators => write!(f, "n must be at least 1"),
            TobError::NoViews => write!(f, "must simulate at least one view"),
            TobError::BadByzantineSlot(v) => write!(f, "byzantine slot {v} out of range"),
            TobError::BadCrash(v) => write!(f, "malformed crash/restart fault for {v}"),
            TobError::BadStateFault(v) => write!(f, "state fault targets out-of-range {v}"),
        }
    }
}

impl std::error::Error for TobError {}

impl TobSimulationBuilder {
    /// Builder for `n` validators.
    pub fn new(n: usize) -> Self {
        TobSimulationBuilder {
            n,
            views: 10,
            seed: 0,
            delta: Delta::default(),
            max_txs_per_block: 256,
            workload: TxWorkload::PerView { count: 2, size: 64 },
            participation: None,
            corruption: CorruptionSchedule::none(),
            byzantine: Vec::new(),
            delay: None,
            filter: None,
            controller: None,
            byz_factory: None,
            recovery: false,
            certificates: true,
            drop_while_asleep: false,
            advance: AdvanceMode::default(),
            invariants: Vec::new(),
            crashes: Vec::new(),
            state_faults: Vec::new(),
            snapshot_every: 8,
            admission: None,
        }
    }

    /// Schedules a kill/restart fault: validator `v` crashes at `at`
    /// (all volatile state lost; deliveries dropped while down) and
    /// restarts at `restart_at`, rebuilt from its durable storage
    /// plane — a [`MemDurable`] WAL + snapshot backend is attached to
    /// every crash target automatically.
    pub fn crash_restart(mut self, v: ValidatorId, at: Time, restart_at: Time) -> Self {
        self.crashes.push((v, at, restart_at));
        self
    }

    /// Schedules a state-corruption fault: `fault` strikes validator
    /// `v`'s state at tick `at` (see [`StateFault`] for the canonical
    /// fault space). Every state-fault target gets a [`MemDurable`]
    /// storage plane attached, so durable-image faults have an image
    /// to corrupt and counter faults have real persistence to disturb.
    pub fn state_fault(mut self, v: ValidatorId, at: Time, fault: StateFault) -> Self {
        self.state_faults.push((v, at, fault));
        self
    }

    /// Snapshot checkpoint cadence of the durable storage plane, in
    /// decided blocks (8 by default; 0 = WAL only).
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Installs a run-time [`Invariant`] on the underlying engine,
    /// checked after every decision event; its end-of-run check fires
    /// before the report is assembled. Violations land in
    /// `TobReport::report.invariant_violations`.
    pub fn invariant(mut self, inv: Box<dyn Invariant>) -> Self {
        self.invariants.push(inv);
        self
    }

    /// Selects the engine's time-advancement strategy (event-driven by
    /// default; [`AdvanceMode::TickLoop`] is the reference oracle the
    /// differential determinism suite compares against).
    pub fn advance(mut self, mode: AdvanceMode) -> Self {
        self.advance = mode;
        self
    }

    /// Enables the §2 recovery protocol on every honest validator.
    pub fn recovery(mut self, on: bool) -> Self {
        self.recovery = on;
        self
    }

    /// Enables or disables the quorum-certificate aggregation plane
    /// (on by default). Disable to reproduce the per-vote forwarding
    /// baseline whose communication is Table 1's cubic fit.
    pub fn certificates(mut self, on: bool) -> Self {
        self.certificates = on;
        self
    }

    /// Uses the practical sleep semantics: messages to asleep validators
    /// are dropped (no magic buffering). Combine with
    /// [`TobSimulationBuilder::recovery`] to restore liveness.
    pub fn drop_while_asleep(mut self, on: bool) -> Self {
        self.drop_while_asleep = on;
        self
    }

    /// Number of views to simulate.
    pub fn views(mut self, views: u64) -> Self {
        self.views = views;
        self
    }

    /// RNG seed (delivery delays, workload times).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The network delay bound Δ.
    pub fn delta(mut self, delta: Delta) -> Self {
        self.delta = delta;
        self
    }

    /// Block size cap.
    pub fn max_txs_per_block(mut self, max: usize) -> Self {
        self.max_txs_per_block = max;
        self
    }

    /// The transaction workload.
    pub fn workload(mut self, workload: TxWorkload) -> Self {
        self.workload = workload;
        self
    }

    /// Installs a bounded mempool [`AdmissionPolicy`] (unbounded by
    /// default, preserving historical behavior). Shed/eviction counters
    /// land in `TobReport::report.admission`.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Sleep/wake schedule (defaults to always awake).
    pub fn participation(mut self, p: ParticipationSchedule) -> Self {
        self.participation = Some(p);
        self
    }

    /// Pre-scheduled corruptions.
    pub fn corruption(mut self, c: CorruptionSchedule) -> Self {
        self.corruption = c;
        self
    }

    /// Installs a Byzantine-from-genesis node.
    pub fn byzantine(mut self, v: ValidatorId, factory: ByzantineNodeFactory) -> Self {
        self.byzantine.push((v, factory));
        self
    }

    /// Network delay policy (defaults to uniform random in [1, Δ]).
    pub fn delay(mut self, d: Box<dyn DelayPolicy>) -> Self {
        self.delay = Some(d);
        self
    }

    /// Per-copy delivery filter (lossy-network adversary; none by
    /// default) — the model checker's fetch-dropping corruptions.
    pub fn delivery_filter(mut self, f: Box<dyn DeliveryFilter>) -> Self {
        self.filter = Some(f);
        self
    }

    /// Live adversary controller.
    pub fn controller(mut self, c: Box<dyn AdversaryController>) -> Self {
        self.controller = Some(c);
        self
    }

    /// Factory for Byzantine replacements at mid-run corruptions.
    pub fn byzantine_replacements(mut self, f: ByzantineFactory) -> Self {
        self.byz_factory = Some(f);
        self
    }

    /// Runs the simulation for the configured number of views plus the
    /// trailing 2Δ needed to decide the last view's proposals.
    ///
    /// # Errors
    ///
    /// Returns a [`TobError`] for invalid configurations.
    pub fn run(self) -> Result<TobReport, TobError> {
        if self.n == 0 {
            return Err(TobError::NoValidators);
        }
        if self.views == 0 {
            return Err(TobError::NoViews);
        }
        for (v, _) in &self.byzantine {
            if v.index() >= self.n {
                return Err(TobError::BadByzantineSlot(*v));
            }
        }
        for (v, at, restart_at) in &self.crashes {
            if v.index() >= self.n || restart_at <= at {
                return Err(TobError::BadCrash(*v));
            }
        }
        for (v, _, _) in &self.state_faults {
            if v.index() >= self.n {
                return Err(TobError::BadStateFault(*v));
            }
        }

        let cfg = SimConfig::new(self.n).with_delta(self.delta).with_seed(self.seed);
        let tob_cfg = TobConfig::new(self.n)
            .with_delta(self.delta)
            .with_max_txs(self.max_txs_per_block)
            .with_recovery(self.recovery)
            .with_certificates(self.certificates)
            .with_snapshot_every(self.snapshot_every);
        let sched = ViewSchedule::new(self.delta);
        let mut builder = Simulation::builder(cfg)
            .drop_while_asleep(self.drop_while_asleep)
            .advance_mode(self.advance);

        // Workload: pre-submit with future submission times.
        let horizon = sched.view_start(View::new(self.views));
        {
            let mempool = builder.mempool().clone();
            if let Some(policy) = self.admission {
                mempool.set_policy(policy);
            }
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7a5c_3b1d);
            let mut nonce = 0u64;
            match self.workload {
                TxWorkload::None => {}
                TxWorkload::PerView { count, size } => {
                    for view in 0..self.views {
                        let t_v = sched.view_start(View::new(view));
                        let submit = t_v.saturating_sub(Time::new(1));
                        for _ in 0..count {
                            mempool.submit(Transaction::synthetic(nonce, size), submit);
                            nonce += 1;
                        }
                    }
                }
                TxWorkload::Random { total, size } => {
                    for _ in 0..total {
                        let t = Time::new(rng.gen_range(0..horizon.ticks().max(1)));
                        mempool.submit(Transaction::synthetic(nonce, size), t);
                        nonce += 1;
                    }
                }
                TxWorkload::OpenLoop(spec) => {
                    // Dedicated stream: must not perturb `rng` above.
                    let mut gen =
                        OpenLoopWorkload::new(spec, self.seed ^ 0x0c11_e475);
                    for t in 0..horizon.ticks() {
                        for a in gen.tick(Time::new(t)) {
                            let _ = mempool.admit(a.tx, a.at, a.fee, Some(a.user));
                        }
                    }
                }
            }
        }

        // Nodes.
        let store = builder.store().clone();
        let mut byz_slots = vec![false; self.n];
        let mut byz_map: std::collections::BTreeMap<usize, ByzantineNodeFactory> =
            std::collections::BTreeMap::new();
        for (v, f) in self.byzantine {
            if let Some(slot) = byz_slots.get_mut(v.index()) {
                *slot = true;
            }
            byz_map.insert(v.index(), f);
        }
        // Every crash target gets an in-memory durable backend shared
        // between its incarnations: the pre-crash validator writes the
        // WAL + snapshots, the restart factory recovers from them.
        let mut durables: std::collections::BTreeMap<usize, SharedDurable> =
            std::collections::BTreeMap::new();
        for (v, _, _) in &self.crashes {
            durables.entry(v.index()).or_insert_with(|| shared(MemDurable::new()));
        }
        // State-fault targets too: durable-image faults need an image
        // to corrupt, and counter faults only bite when persistence is
        // actually running.
        for (v, _, _) in &self.state_faults {
            durables.entry(v.index()).or_insert_with(|| shared(MemDurable::new()));
        }
        for v in ValidatorId::all(self.n) {
            if let Some(f) = byz_map.remove(&v.index()) {
                builder = builder.byzantine_node(v, f(&store));
            } else {
                let mut val = Validator::new(v, tob_cfg.clone(), &store);
                if let Some(handle) = durables.get(&v.index()) {
                    val = val.with_durable(handle.clone());
                }
                builder = builder.node(v, Box::new(val));
            }
        }
        if !self.crashes.is_empty() {
            let factory_cfg = tob_cfg.clone();
            let factory_store = store.clone();
            let factory_durables = durables.clone();
            builder = builder.crashes(self.crashes.clone()).restart_factory(Box::new(
                move |v, _t| -> Box<dyn Node> {
                    match factory_durables.get(&v.index()) {
                        Some(handle) => Box::new(Validator::recovered(
                            v,
                            factory_cfg.clone(),
                            &factory_store,
                            handle.clone(),
                        )),
                        // Unreachable (only crash targets restart), but
                        // degrade to an inert node rather than panic.
                        None => Box::new(IdleNode),
                    }
                },
            ));
        }
        if !self.state_faults.is_empty() {
            builder = builder.state_faults(self.state_faults.clone());
        }
        if let Some(p) = self.participation {
            builder = builder.participation(p);
        }
        builder = builder.corruption(self.corruption);
        if let Some(d) = self.delay {
            builder = builder.delay(d);
        }
        if let Some(f) = self.filter {
            builder = builder.delivery_filter(f);
        }
        if let Some(c) = self.controller {
            builder = builder.controller(c);
        }
        if let Some(f) = self.byz_factory {
            builder = builder.byzantine_factory(f);
        }
        for inv in self.invariants {
            builder = builder.invariant(inv);
        }

        let mut sim = builder.build();
        let end = horizon + self.delta * 2;
        sim.run_until(end);
        sim.check_end_invariants();

        // Collect per-validator stats.
        let mut validators = Vec::with_capacity(self.n);
        for v in ValidatorId::all(self.n) {
            if byz_slots.get(v.index()).copied().unwrap_or(false) || sim.is_byzantine(v) {
                validators.push(None);
                continue;
            }
            // A non-`Validator` node in an honest slot would be a harness
            // bug; report it as a missing entry rather than panicking.
            let Some(val) = sim.node(v).as_any().downcast_ref::<Validator>() else {
                validators.push(None);
                continue;
            };
            let sync = val.sync();
            validators.push(Some(ValidatorStats {
                validator: v,
                decided_len: val.decided().len(),
                votes_cast: val.votes_cast(),
                proposals_made: val.proposals_made(),
                decisions_made: val.decisions_made(),
                wal_errors: val.wal_errors(),
                persisted_len: val.persisted_len(),
                audits_run: val.audits_run(),
                audit_repairs: val.audit_repairs(),
                crypto: CryptoStats {
                    sig_verifies: val.sig_verifies(),
                    sig_verify_skips: val.sig_verify_skips(),
                    vrf_verifies: val.vrf_verifies(),
                    vrf_verify_skips: val.vrf_verify_skips(),
                    agg_verifies: val.agg_verifies(),
                    agg_verify_skips: val.agg_verify_skips(),
                    certificates_emitted: val.certificates_emitted(),
                    verified_ids: val.verified_ids(),
                    unique_messages_seen: val.unique_messages_seen(),
                },
                sync: SyncStats {
                    pending: sync.pending_len(),
                    oldest_pending_since: sync.oldest_pending_since(),
                    blocks_fetched: sync.blocks_fetched(),
                    requests_sent: sync.requests_sent(),
                    responses_served: sync.responses_served(),
                    parked_total: sync.parked_total(),
                    evicted: sync.evicted(),
                },
            }));
        }

        // Ground-truth good-leader record per view.
        let eff = sim.effective_participation();
        let corruption = sim.corruption().clone();
        let mut leaders = Vec::with_capacity(self.views as usize);
        for view in (0..self.views).map(View::new) {
            let t_v = sched.view_start(view);
            let awake = eff.awake_honest_at(t_v, &corruption);
            let byz = corruption.byzantine_at(t_v + self.delta);
            leaders.push((view, good_leader(view, &awake, &byz)));
        }

        Ok(TobReport {
            views: self.views,
            delta: self.delta,
            report: sim.report(),
            validators,
            good_leaders: leaders,
            store,
        })
    }
}

/// Per-validator summary statistics.
#[derive(Clone, Copy, Debug)]
pub struct ValidatorStats {
    /// The validator.
    pub validator: ValidatorId,
    /// Length of its highest decided log.
    pub decided_len: u64,
    /// `LOG` broadcasts (votes) made.
    pub votes_cast: u64,
    /// Proposals made.
    pub proposals_made: u64,
    /// Decide-phase outputs reported.
    pub decisions_made: u64,
    /// Durable-storage operations that failed (0 without a storage
    /// plane attached; faults degrade durability, never safety).
    pub wal_errors: u64,
    /// Decided log length durably persisted (1 without a storage plane).
    pub persisted_len: u64,
    /// Stabilization local-audit passes run (one per phase boundary).
    pub audits_run: u64,
    /// Stabilization anomalies detected and repaired (0 when no state
    /// corruption struck — every repair is a caught fault).
    pub audit_repairs: u64,
    /// Verification fast-path statistics.
    pub crypto: CryptoStats,
    /// Delta-sync statistics.
    pub sync: SyncStats,
}

/// Per-validator verification fast-path statistics — the evidence for
/// the "one signature check per unique message per validator" budget.
#[derive(Clone, Copy, Debug, Default)]
pub struct CryptoStats {
    /// Signature verifications performed.
    pub sig_verifies: u64,
    /// Deliveries that skipped verification (duplicate ids).
    pub sig_verify_skips: u64,
    /// VRF verifications performed.
    pub vrf_verifies: u64,
    /// Proposal receptions that hit the VRF memo.
    pub vrf_verify_skips: u64,
    /// Aggregate-signature verifications performed on received
    /// certificates.
    pub agg_verifies: u64,
    /// Certificate receptions whose aggregate check was skipped because
    /// every claimed signer was already individually authenticated.
    pub agg_verify_skips: u64,
    /// Quorum certificates this validator assembled and broadcast.
    pub certificates_emitted: u64,
    /// Distinct message ids that passed verification.
    pub verified_ids: usize,
    /// Distinct message ids the gossip layer has seen.
    pub unique_messages_seen: usize,
}

/// Per-validator delta-sync statistics, snapshotted at run end (the
/// evidence base for the checker's `no-stalled-fetch` invariant).
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncStats {
    /// Messages still parked at run end.
    pub pending: usize,
    /// Arrival time of the oldest still-parked message.
    pub oldest_pending_since: Option<Time>,
    /// Blocks learned through fetch responses.
    pub blocks_fetched: u64,
    /// Fetch requests sent (including retries).
    pub requests_sent: u64,
    /// Fetch responses served to peers.
    pub responses_served: u64,
    /// Messages ever parked.
    pub parked_total: u64,
    /// Parked messages evicted by the FIFO cap.
    pub evicted: u64,
}

/// Percentile summary of a latency sample.
///
/// Percentiles use the nearest-rank method on the sorted sample, so
/// they are exact order statistics (p50 of 4 samples is the 2nd), not
/// interpolations — deterministic and comparison-friendly across runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencyStats {
    /// Summarizes a sample; `None` when empty or any value is NaN.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|v| v.is_nan()) {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = samples.len();
        let pick = |p: f64| -> f64 {
            // Nearest-rank: ceil(p × n), 1-based.
            let rank = ((p * count as f64).ceil() as usize).clamp(1, count);
            samples.get(rank - 1).copied().unwrap_or(0.0)
        };
        Some(LatencyStats {
            count,
            mean: samples.iter().sum::<f64>() / count as f64,
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: samples.last().copied().unwrap_or(0.0),
        })
    }
}

/// Result of a [`TobSimulationBuilder::run`].
#[derive(Debug)]
pub struct TobReport {
    /// Number of views simulated.
    pub views: u64,
    /// The Δ used.
    pub delta: Delta,
    /// Engine-level summary (metrics, safety, confirmed txs).
    pub report: SimReport,
    /// Per-validator stats (`None` for Byzantine slots).
    pub validators: Vec<Option<ValidatorStats>>,
    /// Ground truth: the good leader of each view, if one existed.
    pub good_leaders: Vec<(View, Option<ValidatorId>)>,
    /// The shared block store.
    pub store: BlockStore,
}

impl TobReport {
    /// Length of the longest decided log across honest validators.
    pub fn max_decided_len(&self) -> u64 {
        self.report.max_decided_len()
    }

    /// Number of decided blocks beyond genesis.
    pub fn decided_blocks(&self) -> u64 {
        self.max_decided_len().saturating_sub(1)
    }

    /// Panics if any safety violation was observed.
    ///
    /// # Panics
    ///
    /// Panics on conflicting decisions.
    pub fn assert_safety(&self) {
        self.report.assert_safety();
    }

    /// Fraction of views that had a good leader.
    pub fn good_leader_fraction(&self) -> f64 {
        if self.good_leaders.is_empty() {
            return 0.0;
        }
        let good = self.good_leaders.iter().filter(|(_, l)| l.is_some()).count();
        good as f64 / self.good_leaders.len() as f64
    }

    /// Average original `LOG` broadcasts per decided block — the
    /// *voting phases per new block* metric of Table 1, normalized
    /// per validator.
    pub fn voting_phases_per_block(&self) -> Option<f64> {
        let honest: Vec<&ValidatorStats> =
            self.validators.iter().flatten().collect();
        if honest.is_empty() || self.decided_blocks() == 0 {
            return None;
        }
        let avg_votes: f64 = honest.iter().map(|s| s.votes_cast as f64).sum::<f64>()
            / honest.len() as f64;
        Some(avg_votes / self.decided_blocks() as f64)
    }

    /// Mempool admission counters of the run (all-zero unless a bounded
    /// [`AdmissionPolicy`] was installed).
    pub fn admission(&self) -> AdmissionStats {
        self.report.admission
    }

    /// Percentile summary of confirmed-transaction latencies, in Δ
    /// (`None` if nothing confirmed).
    pub fn tx_latency_stats(&self) -> Option<LatencyStats> {
        LatencyStats::from_samples(self.tx_latencies_deltas())
    }

    /// Confirmation latencies of all confirmed transactions, in Δ.
    pub fn tx_latencies_deltas(&self) -> Vec<f64> {
        self.report
            .confirmed
            .iter()
            .map(|c| c.latency() as f64 / self.delta.ticks() as f64)
            .collect()
    }

    /// Per-block decision latency in Δ: time from the proposal of each
    /// decided block (its view's start) to the *first* decision by any
    /// honest validator whose log covers it, taken over the full
    /// decision history (not just final transcripts — early blocks are
    /// credited with their actual first coverage, mid-run).
    pub fn block_decision_latencies_deltas(&self) -> Vec<f64> {
        let sched = ViewSchedule::new(self.delta);
        let mut latencies = Vec::new();
        let history: &[DecisionRecord] = &self.report.decisions;
        if let Some(longest) = self.report.longest_decided {
            if let Some(chain) = self.store.chain_range(longest.tip(), 1) {
                for (offset, id) in chain.into_iter().enumerate() {
                    let Some(block) = self.store.get(id) else { continue };
                    let proposed_at = sched.view_start(block.view());
                    let height = 2 + offset as u64; // log length covering this block
                    // Earliest decision record covering this block.
                    let decided_at = history
                        .iter()
                        .filter(|r| {
                            r.log.len() >= height && self.store.is_ancestor(id, r.log.tip())
                        })
                        .map(|r| r.at)
                        .min();
                    if let Some(at) = decided_at {
                        latencies
                            .push((at - proposed_at) as f64 / self.delta.ticks() as f64);
                    }
                }
            }
        }
        latencies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_decides_every_view() {
        let report = TobSimulationBuilder::new(6).views(8).seed(1).run().expect("runs");
        report.assert_safety();
        // With no faults every view has a good leader and decides one
        // block; the last two views' proposals decide after the horizon
        // extension, so at least views−1 blocks are decided.
        assert!(
            report.decided_blocks() >= report.views - 1,
            "decided {} of {} views",
            report.decided_blocks(),
            report.views
        );
        assert!((report.good_leader_fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn all_honest_validators_agree() {
        let report = TobSimulationBuilder::new(5).views(6).seed(2).run().expect("runs");
        report.assert_safety();
        let lens: Vec<u64> = report
            .validators
            .iter()
            .flatten()
            .map(|s| s.decided_len)
            .collect();
        assert_eq!(lens.len(), 5);
        // All validators within one view of each other.
        let max = *lens.iter().max().unwrap();
        for l in lens {
            assert!(max - l <= 1, "decided lengths too far apart");
        }
    }

    #[test]
    fn single_vote_per_view() {
        let report = TobSimulationBuilder::new(4).views(10).seed(3).run().expect("runs");
        for stats in report.validators.iter().flatten() {
            // One LOG broadcast per view (±1 for the trailing view).
            assert!(
                stats.votes_cast <= report.views + 1,
                "more votes than views: {}",
                stats.votes_cast
            );
            assert!(stats.votes_cast >= report.views - 1);
        }
        // Best case: 1 voting phase per decided block.
        let phases = report.voting_phases_per_block().expect("blocks decided");
        assert!(phases < 1.5, "voting phases per block = {phases}");
    }

    #[test]
    fn transactions_confirm_with_bounded_latency() {
        let report = TobSimulationBuilder::new(5)
            .views(8)
            .seed(4)
            .workload(TxWorkload::PerView { count: 3, size: 32 })
            .run()
            .expect("runs");
        report.assert_safety();
        assert!(!report.report.confirmed.is_empty(), "txs must confirm");
        for lat in report.tx_latencies_deltas() {
            // Fault-free: submitted right before a proposal, decided 6Δ
            // later (small slack for the tick discretization).
            assert!(lat <= 7.0, "latency {lat}Δ too high for fault-free run");
        }
    }

    #[test]
    fn open_loop_workload_confirms_and_reports_latency_stats() {
        let spec = OpenLoopSpec {
            users: 1_000_000,
            zipf_milli: 900,
            rate_milli: 1_500,
            burst_every: 64,
            burst_len: 8,
            burst_mult: 4,
            tx_bytes: 48,
            fee_levels: 8,
        };
        let report = TobSimulationBuilder::new(5)
            .views(8)
            .seed(9)
            .workload(TxWorkload::OpenLoop(spec))
            .run()
            .expect("runs");
        report.assert_safety();
        let stats = report.tx_latency_stats().expect("open-loop txs confirm");
        assert!(stats.count > 50, "only {} confirmations", stats.count);
        assert!(stats.p50 <= stats.p99 && stats.p99 <= stats.max);
        // Unbounded default: nothing shed.
        assert_eq!(report.admission().busy, 0);
        assert!(report.admission().accepted > 0);
    }

    #[test]
    fn open_loop_overload_sheds_at_bounded_capacity() {
        let spec = OpenLoopSpec {
            users: 100_000,
            zipf_milli: 1_100,
            rate_milli: 6_000,
            burst_every: 32,
            burst_len: 8,
            burst_mult: 6,
            tx_bytes: 32,
            fee_levels: 8,
        };
        let report = TobSimulationBuilder::new(5)
            .views(8)
            .seed(11)
            .workload(TxWorkload::OpenLoop(spec))
            .admission(AdmissionPolicy { capacity: 256, rate_cap: 0, rate_window: 1 })
            .run()
            .expect("runs");
        report.assert_safety();
        let adm = report.admission();
        // Overload: shedding and/or priority eviction must kick in, and
        // pending occupancy never exceeded the hard capacity.
        assert!(adm.busy + adm.evicted > 0, "no backpressure under overload: {adm:?}");
        assert!(adm.pending_peak <= 256, "capacity breached: {adm:?}");
        // The system still makes progress and confirms transactions.
        assert!(report.tx_latency_stats().is_some());
    }

    #[test]
    fn open_loop_stream_does_not_perturb_legacy_fingerprints() {
        // Two identical Random-workload runs, one executed after an
        // OpenLoop run has consumed its own RNG stream: byte-identical
        // decided logs prove stream isolation.
        let run = || {
            TobSimulationBuilder::new(4)
                .views(6)
                .seed(13)
                .workload(TxWorkload::Random { total: 24, size: 16 })
                .run()
                .expect("runs")
        };
        let a = run();
        let _interleaved = TobSimulationBuilder::new(4)
            .views(4)
            .seed(13)
            .workload(TxWorkload::OpenLoop(OpenLoopSpec::default()))
            .run()
            .expect("runs");
        let b = run();
        assert_eq!(a.max_decided_len(), b.max_decided_len());
        assert_eq!(
            a.report.confirmed.len(),
            b.report.confirmed.len(),
            "legacy workload stream was perturbed"
        );
    }

    #[test]
    fn crash_restart_recovers_durably_and_reconverges() {
        // Validator 2 is killed mid-view-5 and restarted at view 8's
        // start. Its restart incarnation recovers from the MemDurable
        // snapshot + WAL, catches the rest up over §2 recovery and the
        // delta-sync fetch plane, and re-converges with the network.
        let v = ValidatorId::new(2);
        let report = TobSimulationBuilder::new(5)
            .views(14)
            .seed(6)
            .recovery(true)
            .drop_while_asleep(true)
            .snapshot_every(4)
            .crash_restart(v, Time::new(5 * 32 + 3), Time::new(8 * 32))
            .run()
            .expect("runs");
        report.assert_safety();
        assert_eq!(report.report.metrics.crashes, 1);
        let restarted = report.validators[2].as_ref().expect("restarted slot reports stats");
        assert_eq!(restarted.wal_errors, 0);
        assert!(
            restarted.persisted_len > 1,
            "the durable plane must have persisted decisions across the restart"
        );
        let max = report.max_decided_len();
        assert!(
            restarted.decided_len + 2 >= max,
            "restarted validator re-converged to {} of {max}",
            restarted.decided_len
        );
    }

    #[test]
    fn crash_validation() {
        let err = TobSimulationBuilder::new(3)
            .crash_restart(ValidatorId::new(9), Time::new(1), Time::new(2))
            .run()
            .unwrap_err();
        assert!(matches!(err, TobError::BadCrash(_)));
        let err = TobSimulationBuilder::new(3)
            .crash_restart(ValidatorId::new(1), Time::new(5), Time::new(5))
            .run()
            .unwrap_err();
        assert!(matches!(err, TobError::BadCrash(_)));
    }

    #[test]
    fn config_validation() {
        assert!(matches!(
            TobSimulationBuilder::new(0).run().unwrap_err(),
            TobError::NoValidators
        ));
        assert!(matches!(
            TobSimulationBuilder::new(3).views(0).run().unwrap_err(),
            TobError::NoViews
        ));
        let err = TobSimulationBuilder::new(3)
            .byzantine(
                ValidatorId::new(9),
                Box::new(|_| Box::new(tobsvd_sim::IdleNode)),
            )
            .run()
            .unwrap_err();
        assert!(matches!(err, TobError::BadByzantineSlot(_)));
    }
}
