//! VRF-based leader election (paper §3.3).
//!
//! "Whenever a proposal has to be made to extend the current log,
//! validators broadcast one together with their VRF value for the
//! current view, and priority is given to proposals with a higher VRF
//! value."
//!
//! A *good leader* for view v starting at `t_v` is a validator in
//! `H_{t_v} \ B_{t_v+Δ}` holding the highest VRF value among
//! `H_{t_v} ∪ B_{t_v+Δ}` (all validators a proposal might be received
//! from by `t_v + Δ`). Lemma 2 shows a good leader exists with
//! probability > ½; [`good_leader`] computes the ground truth for a
//! concrete schedule so experiments can verify both the probability and
//! the consequences (Lemmas 3–4).

use tobsvd_crypto::{KeyCache, Vrf, VrfOutput, VrfProof};
use tobsvd_types::{BlockStore, Log, ValidatorId, View};

/// Evaluates validator `v`'s VRF for `view` using the conventional
/// deterministic key derivation (cached per process — evaluation costs
/// one keyed hash, not a key derivation plus a hash).
pub fn vrf_for(v: ValidatorId, view: View) -> (VrfOutput, VrfProof) {
    Vrf::new(KeyCache::keypair(v.key_seed())).eval(view.number())
}

/// Verifies a claimed VRF pair for `(sender, view)` against the cached
/// public key.
pub fn verify_vrf(sender: ValidatorId, view: View, out: &VrfOutput, proof: &VrfProof) -> bool {
    let public = KeyCache::public(sender.key_seed());
    Vrf::verify(&public, view.number(), out, proof)
}

/// The *good leader* of `view`, if one exists: the highest-VRF validator
/// among `awake ∪ byzantine_by_tv_plus_delta` must lie in
/// `awake \ byzantine_by_tv_plus_delta`.
///
/// `awake` is `H_{t_v}` (honest validators awake at `t_v`);
/// `byz` is `B_{t_v+Δ}`.
///
/// Returns `None` — never panics — when the candidate set is empty
/// (every validator asleep and none Byzantine: a view nobody can lead)
/// or when the maximum lies outside `awake \ byz`. Callers treat both
/// the same way: the view has no good leader and liveness for it is not
/// guaranteed.
pub fn good_leader(view: View, awake: &[ValidatorId], byz: &[ValidatorId]) -> Option<ValidatorId> {
    let candidates: std::collections::BTreeSet<ValidatorId> =
        awake.iter().chain(byz.iter()).copied().collect();
    // An empty candidate pool (all validators asleep, none corrupted)
    // falls out of `max_by_key` as None: no proposal can even be
    // received by t_v + Δ, so the view trivially has no good leader.
    let best = candidates
        .into_iter()
        .max_by_key(|v| vrf_for(*v, view).0)?;
    let is_good = awake.contains(&best) && !byz.contains(&best);
    is_good.then_some(best)
}

/// Per-view proposal bookkeeping with equivocation discarding.
///
/// "After discarding equivocating proposals, input to GA_v the proposal
/// with the highest VRF value extending L_{v−1}" (Figure 4, Vote phase).
#[derive(Clone, Debug, Default)]
pub struct ProposalTracker {
    /// `Some((log, vrf))` = unique proposal; `None` = equivocated.
    proposals: std::collections::BTreeMap<ValidatorId, Option<(Log, VrfOutput)>>,
    /// VRF `(output, proof)` pairs that passed verification for this
    /// view, per sender. Both halves are unique per `(sender, view)`
    /// (the proof is the deterministic signature over the view), so a
    /// later proposal claiming the identical pair needs no
    /// re-verification — this is what makes an equivocation burst cost
    /// one VRF check, not one per distinct proposal. Matching on the
    /// *pair* (not the output alone) keeps honest validators uniform: a
    /// proposal with a correct output but garbage proof fails
    /// verification at a cold validator, so it must also miss the memo
    /// at a warm one.
    verified_vrfs: std::collections::BTreeMap<ValidatorId, (VrfOutput, VrfProof)>,
}

impl ProposalTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the claimed `(output, proof)` pair has already been
    /// verified for `sender` in this view (memo hit ⇒ the claim is
    /// authentic and verification can be skipped; any mismatching claim
    /// must still be verified, and uniqueness makes it fail).
    pub fn vrf_verified(&self, sender: ValidatorId, out: &VrfOutput, proof: &VrfProof) -> bool {
        self.verified_vrfs.get(&sender).is_some_and(|(o, p)| o == out && p == proof)
    }

    /// Memoizes a `(output, proof)` pair that passed [`verify_vrf`] for
    /// `sender` in this view.
    pub fn note_vrf_verified(&mut self, sender: ValidatorId, out: VrfOutput, proof: VrfProof) {
        self.verified_vrfs.entry(sender).or_insert((out, proof));
    }

    /// Records a (VRF-verified) proposal from `sender`. A second,
    /// different proposal from the same sender discards both.
    pub fn record(&mut self, sender: ValidatorId, log: Log, vrf: VrfOutput) {
        match self.proposals.get_mut(&sender) {
            None => {
                self.proposals.insert(sender, Some((log, vrf)));
            }
            Some(slot) => match slot {
                Some((existing, _)) if *existing == log => {}
                Some(_) => *slot = None, // equivocation: discard
                None => {}
            },
        }
    }

    /// The proposal with the highest VRF value whose log extends `lock`,
    /// among non-equivocating proposers.
    pub fn best_extending(&self, lock: &Log, store: &BlockStore) -> Option<(ValidatorId, Log)> {
        self.proposals
            .iter()
            .filter_map(|(v, slot)| slot.map(|(log, vrf)| (*v, log, vrf)))
            .filter(|(_, log, _)| log.extends(lock, store))
            .max_by_key(|(v, _, vrf)| (*vrf, std::cmp::Reverse(*v)))
            .map(|(v, log, _)| (v, log))
    }

    /// Number of distinct proposers seen.
    pub fn proposer_count(&self) -> usize {
        self.proposals.len()
    }

    /// Whether `v` is a known proposal equivocator for this view.
    pub fn is_equivocator(&self, v: ValidatorId) -> bool {
        matches!(self.proposals.get(&v), Some(None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_types::View;

    fn v(i: u32) -> ValidatorId {
        ValidatorId::new(i)
    }

    #[test]
    fn vrf_verification_roundtrip() {
        let (out, proof) = vrf_for(v(3), View::new(9));
        assert!(verify_vrf(v(3), View::new(9), &out, &proof));
        assert!(!verify_vrf(v(4), View::new(9), &out, &proof));
        assert!(!verify_vrf(v(3), View::new(10), &out, &proof));
    }

    #[test]
    fn good_leader_requires_honest_max() {
        let all: Vec<ValidatorId> = (0..6).map(v).collect();
        // No Byzantine: the max-VRF awake validator is always good.
        for view in (0..20).map(View::new) {
            let leader = good_leader(view, &all, &[]).expect("always good");
            let max = all.iter().copied().max_by_key(|x| vrf_for(*x, view).0).unwrap();
            assert_eq!(leader, max);
        }
    }

    #[test]
    fn corrupting_the_max_kills_the_good_leader() {
        let all: Vec<ValidatorId> = (0..6).map(v).collect();
        let view = View::new(3);
        let max = all.iter().copied().max_by_key(|x| vrf_for(*x, view).0).unwrap();
        assert!(good_leader(view, &all, &[max]).is_none());
        // Corrupting someone else leaves the good leader in place.
        let other = all.iter().copied().find(|x| *x != max).unwrap();
        assert_eq!(good_leader(view, &all, &[other]), Some(max));
    }

    #[test]
    fn empty_candidate_set_has_no_leader_and_does_not_panic() {
        // All validators asleep, none Byzantine — the Lemma 2 candidate
        // pool `H_{t_v} ∪ B_{t_v+Δ}` is empty.
        for view in (0..8).map(View::new) {
            assert_eq!(good_leader(view, &[], &[]), None);
        }
    }

    #[test]
    fn all_asleep_with_byzantine_awake_has_no_good_leader() {
        // Every honest validator asleep: whatever the VRF maximum is, it
        // lies in the Byzantine set, so the view has no good leader.
        let byz: Vec<ValidatorId> = (0..3).map(v).collect();
        assert_eq!(good_leader(View::new(2), &[], &byz), None);
    }

    #[test]
    fn asleep_max_is_not_a_leader_but_second_best_can_be() {
        let all: Vec<ValidatorId> = (0..6).map(v).collect();
        let view = View::new(5);
        let mut sorted = all.clone();
        sorted.sort_by_key(|x| std::cmp::Reverse(vrf_for(*x, view).0));
        let (max, second) = (sorted[0], sorted[1]);
        // max asleep: the candidate pool is awake ∪ byz; second-best wins.
        let awake: Vec<ValidatorId> = all.iter().copied().filter(|x| *x != max).collect();
        assert_eq!(good_leader(view, &awake, &[]), Some(second));
    }

    #[test]
    fn proposal_tracker_picks_highest_extending() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let lock = g.extend_empty(&store, v(0), View::new(1));
        let ext1 = lock.extend_empty(&store, v(1), View::new(2));
        let ext2 = lock.extend_empty(&store, v(2), View::new(2));
        let off_lock = g.extend_empty(&store, v(3), View::new(2));

        let mut tr = ProposalTracker::new();
        let vrf1 = vrf_for(v(1), View::new(2)).0;
        let vrf2 = vrf_for(v(2), View::new(2)).0;
        let vrf3 = vrf_for(v(3), View::new(2)).0;
        tr.record(v(1), ext1, vrf1);
        tr.record(v(2), ext2, vrf2);
        tr.record(v(3), off_lock, vrf3); // does not extend the lock
        let (winner, log) = tr.best_extending(&lock, &store).expect("one extends");
        let expect = if vrf1 > vrf2 { (v(1), ext1) } else { (v(2), ext2) };
        assert_eq!((winner, log), expect);
    }

    #[test]
    fn vrf_memo_covers_only_noted_pairs() {
        let mut tr = ProposalTracker::new();
        let (vrf, proof) = vrf_for(v(1), View::new(1));
        assert!(!tr.vrf_verified(v(1), &vrf, &proof), "empty tracker memoizes nothing");
        tr.note_vrf_verified(v(1), vrf, proof);
        assert!(tr.vrf_verified(v(1), &vrf, &proof));
        // A different claimed value — even another validator's genuine
        // one — is not covered and must go through verification.
        let (other, other_proof) = vrf_for(v(2), View::new(1));
        assert!(!tr.vrf_verified(v(1), &other, &other_proof));
        assert!(!tr.vrf_verified(v(2), &other, &other_proof));
        // The memo matches the full (output, proof) pair: a correct
        // output with a tampered proof must miss, so warm and cold
        // validators treat the same frame identically.
        let garbage = VrfProof(tobsvd_crypto::Digest::from_bytes([0xab; 32]));
        assert!(!tr.vrf_verified(v(1), &vrf, &garbage));
    }

    #[test]
    fn proposal_equivocation_discards() {
        let store = BlockStore::new();
        let g = Log::genesis(&store);
        let a = g.extend_empty(&store, v(1), View::new(1));
        let b = g.extend_empty(&store, v(2), View::new(1));
        let mut tr = ProposalTracker::new();
        let vrf = vrf_for(v(1), View::new(1)).0;
        tr.record(v(1), a, vrf);
        tr.record(v(1), b, vrf);
        assert!(tr.is_equivocator(v(1)));
        assert_eq!(tr.best_extending(&g, &store), None);
        // Duplicate of the same proposal is not equivocation.
        let mut tr = ProposalTracker::new();
        tr.record(v(1), a, vrf);
        tr.record(v(1), a, vrf);
        assert!(!tr.is_equivocator(v(1)));
        assert_eq!(tr.best_extending(&g, &store), Some((v(1), a)));
    }
}
