//! Per-validator delta-sync state: block knowledge tracking, the
//! bounded pending-message set, and fetch bookkeeping.
//!
//! Under content-addressed delta sync, protocol messages *reference*
//! chains (tip hash + a one-block inline window on the wire) instead of
//! shipping them. A validator therefore tracks which block ids it
//! *knows* — has received content for, either inline in a message's
//! window, in a `BlockResponse`, or by building the block itself. A
//! message whose referenced chain bottoms out in an unknown block is
//! **parked** in a bounded FIFO pending set and a
//! [`tobsvd_types::Payload::BlockRequest`] is emitted; when the blocks
//! arrive, parked messages are replayed through the normal processing
//! path. This is the same machinery for both worlds the sans-io
//! validator runs in:
//!
//! * in the simulator the [`tobsvd_types::BlockStore`] is shared, so
//!   *content* is always available — the knowledge set models which
//!   bytes actually crossed the (accounted) wire;
//! * under the TCP runtime each node's private store converges through
//!   the very same announcements and fetch responses the knowledge set
//!   tracks.
//!
//! The invariant maintained throughout: **an id enters the known set
//! only when its entire ancestor chain is known** (genesis is known from
//! the start). Resolution of a reference is therefore a single
//! membership test at the base of the inline window, not a chain walk.
//!
//! The pending set is capped at [`SyncState::PENDING_CAP`] with FIFO
//! eviction (like the mempool's inclusion-memo cap), so a Byzantine
//! flood of messages referencing never-resolvable chains cannot grow
//! memory without bound; an evicted message's fetch is cancelled unless
//! another parked message still needs it. Outstanding fetches are
//! retried — re-broadcast to all peers — every
//! [`SyncState::RETRY_AFTER_DELTAS`]·Δ until answered, so a dropped
//! request or response only delays resolution.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use tobsvd_types::{wire, BlockId, BlockStore, Log, SignedMessage, Time};

/// Outcome of [`SyncState::resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Every referenced block is known (the inline window was absorbed).
    Resolved,
    /// The chain bottoms out in this unknown block below the window.
    Missing(BlockId),
}

#[derive(Clone, Debug)]
struct Parked {
    missing: BlockId,
    msg: SignedMessage,
    since: Time,
}

#[derive(Clone, Copy, Debug)]
struct Inflight {
    last_sent: Time,
}

/// Delta-sync bookkeeping for one validator.
#[derive(Debug)]
pub struct SyncState {
    known: BTreeSet<BlockId>,
    genesis: BlockId,
    pending: VecDeque<Parked>,
    /// Outstanding fetches by missing block id. `BTreeMap` so retry
    /// iteration order is deterministic (verdicts are replayed).
    inflight: BTreeMap<BlockId, Inflight>,
    requests_sent: u64,
    responses_served: u64,
    blocks_fetched: u64,
    parked_total: u64,
    evicted: u64,
}

impl SyncState {
    /// Maximum parked messages held at once; older entries are evicted
    /// FIFO (a Byzantine hash flood displaces, never grows).
    pub const PENDING_CAP: usize = 128;

    /// An unanswered fetch is re-broadcast after this many Δ.
    pub const RETRY_AFTER_DELTAS: u64 = 2;

    /// Fresh state: only genesis is known.
    pub fn new(store: &BlockStore) -> Self {
        let genesis = store.genesis();
        let mut known = BTreeSet::new();
        known.insert(genesis);
        SyncState {
            known,
            genesis,
            pending: VecDeque::new(),
            inflight: BTreeMap::new(),
            requests_sent: 0,
            responses_served: 0,
            blocks_fetched: 0,
            parked_total: 0,
            evicted: 0,
        }
    }

    /// Whether this validator knows the content of `id`.
    pub fn knows(&self, id: BlockId) -> bool {
        id == self.genesis || self.known.contains(&id)
    }

    /// Marks a locally-built block (own proposal extension) as known.
    pub fn mark_own(&mut self, id: BlockId) {
        self.known.insert(id);
        self.inflight.remove(&id);
    }

    /// Whether any parked message's missing block has since become
    /// known (cheap emptiness probe before draining).
    pub fn has_resolvable(&self) -> bool {
        self.pending.iter().any(|p| self.knows(p.missing))
    }

    /// Resolves a log reference against the knowledge set, absorbing the
    /// message's inline window ([`wire::INLINE_WINDOW`] newest blocks)
    /// on success.
    pub fn resolve(&mut self, log: &Log, store: &BlockStore) -> Resolution {
        let len = log.len();
        let k = (len - 1).min(wire::INLINE_WINDOW);
        let base_height = len - 1 - k;
        let base = match store.ancestor_at(log.tip(), base_height) {
            Some(id) => id,
            // The reference does not resolve in the local store at all
            // (runtime decode normally prevents this): everything below
            // the tip is missing.
            None => return Resolution::Missing(log.tip()),
        };
        if !self.knows(base) {
            return Resolution::Missing(base);
        }
        // Absorb the window, newest-last so the chain-known invariant
        // holds at every insertion. A block learned this way needs no
        // outstanding fetch anymore.
        if k > 0 {
            if let Some(ids) = store.chain_range(log.tip(), base_height + 1) {
                for id in ids {
                    self.known.insert(id);
                    self.inflight.remove(&id);
                }
            }
        }
        Resolution::Resolved
    }

    /// Start height for a fetch of the chain ending at `missing`: one
    /// above the nearest known ancestor (full resync when the walk
    /// leaves the local store).
    pub fn fetch_start(&self, missing: BlockId, store: &BlockStore) -> u64 {
        let mut cur = missing;
        loop {
            if self.knows(cur) {
                return store.height(cur).map_or(1, |h| h + 1);
            }
            match store.get(cur) {
                Some(block) => cur = block.parent(),
                None => return 1,
            }
        }
    }

    /// Parks `msg` until `missing` becomes known. Deduplicates by
    /// message id; enforces the FIFO cap. Returns whether the fetch for
    /// `missing` still needs to be issued (not already in flight).
    pub fn park(&mut self, missing: BlockId, msg: SignedMessage, now: Time) -> bool {
        if !self.pending.iter().any(|p| p.msg.id() == msg.id()) {
            self.pending.push_back(Parked { missing, msg, since: now });
            self.parked_total += 1;
            while self.pending.len() > Self::PENDING_CAP {
                // `len > CAP ≥ 0` implies non-empty today, but eviction
                // must never be a panic path: a refactor of the cap (or
                // a CAP of 0) degrades to "stop evicting", not a crash.
                let Some(evicted) = self.pending.pop_front() else {
                    break;
                };
                self.evicted += 1;
                // Cancel the orphaned fetch unless another parked
                // message still waits on the same block.
                if !self.pending.iter().any(|p| p.missing == evicted.missing) {
                    self.inflight.remove(&evicted.missing);
                }
            }
        }
        !self.inflight.contains_key(&missing)
    }

    /// Whether a fetch for `missing` still needs to be issued (none in
    /// flight yet) — the anchor-fetch fallback's gate.
    pub fn should_fetch(&self, missing: BlockId) -> bool {
        !self.inflight.contains_key(&missing)
    }

    /// Records that a fetch for `missing` was sent at `now`.
    pub fn note_requested(&mut self, missing: BlockId, now: Time) {
        self.requests_sent += 1;
        self.inflight.insert(missing, Inflight { last_sent: now });
    }

    /// Records a served fetch response.
    pub fn note_served(&mut self) {
        self.responses_served += 1;
    }

    /// Absorbs a `BlockResponse` covering `[from_height, height(tip)]`.
    /// Ignored (returns 0) unless the block below the range is already
    /// known — the chain-known invariant is never weakened by an
    /// unsolicited or misaligned response. Returns newly-known blocks.
    pub fn accept_response(&mut self, tip: BlockId, from_height: u64, store: &BlockStore) -> u64 {
        if from_height == 0 {
            return 0;
        }
        let Some(anchor) = store.ancestor_at(tip, from_height - 1) else {
            return 0;
        };
        if !self.knows(anchor) {
            return 0;
        }
        let Some(ids) = store.chain_range(tip, from_height) else {
            return 0;
        };
        let mut newly = 0;
        for id in ids {
            if self.known.insert(id) {
                newly += 1;
            }
            self.inflight.remove(&id);
        }
        self.blocks_fetched += newly;
        newly
    }

    /// Drains parked messages whose missing block is now known, in
    /// arrival order, for replay through the normal processing path.
    pub fn take_resolved(&mut self) -> Vec<SignedMessage> {
        let mut out = Vec::new();
        let mut kept = VecDeque::with_capacity(self.pending.len());
        while let Some(p) = self.pending.pop_front() {
            if self.knows(p.missing) {
                out.push(p.msg);
            } else {
                kept.push_back(p);
            }
        }
        self.pending = kept;
        out
    }

    /// Outstanding fetches not answered within the retry window,
    /// stamped as re-sent at `now`. Deterministic order (by block id).
    pub fn stale_requests(&mut self, now: Time, retry_after: u64) -> Vec<BlockId> {
        let mut stale = Vec::new();
        for (id, inflight) in self.inflight.iter_mut() {
            // Checked: a deadline past the end of time (Δ near
            // u64::MAX) means "never stale", not a wrap into the past.
            let deadline = inflight.last_sent.ticks().checked_add(retry_after);
            if deadline.is_some_and(|d| d <= now.ticks()) {
                inflight.last_sent = now;
                stale.push(*id);
            }
        }
        // Re-sent requests count as requests.
        self.requests_sent += stale.len() as u64;
        stale
    }

    /// Number of currently parked messages.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Arrival time of the oldest still-parked message.
    pub fn oldest_pending_since(&self) -> Option<Time> {
        self.pending.iter().map(|p| p.since).min()
    }

    /// Fetch requests sent (including retries).
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// Fetch responses served to peers.
    pub fn responses_served(&self) -> u64 {
        self.responses_served
    }

    /// Blocks learned through fetch responses.
    pub fn blocks_fetched(&self) -> u64 {
        self.blocks_fetched
    }

    /// Messages ever parked.
    pub fn parked_total(&self) -> u64 {
        self.parked_total
    }

    /// Parked messages evicted by the FIFO cap.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Fault injection: forces a raw id into the knowledge set,
    /// breaking the chain-known invariant (the id's content and
    /// ancestry need not exist anywhere). Exists only for the
    /// stabilization plane's state-corruption experiments.
    pub fn poison_known(&mut self, id: BlockId) {
        self.known.insert(id);
    }

    /// Fault injection: total delta-sync amnesia — all block knowledge
    /// (except genesis), parked messages and in-flight fetches are
    /// erased, as if the sync plane's memory arena was wiped.
    pub fn forget_all(&mut self) {
        self.known.clear();
        self.known.insert(self.genesis);
        self.pending.clear();
        self.inflight.clear();
    }

    /// Stabilization audit: re-establishes the structural invariants a
    /// [`SyncState::poison_known`]-shaped corruption can break and
    /// returns how many anomalies were repaired.
    ///
    /// * Every known id (except genesis) must have its content in the
    ///   store — honest ids enter `known` only via store-backed
    ///   resolution, so an absent body is corruption; the id is
    ///   quarantined (dropped) and, if truly needed, re-learned through
    ///   the ordinary fetch path.
    /// * No in-flight fetch may target an already-known id (the honest
    ///   paths clear these on resolution).
    ///
    /// The chain-known invariant is restored transitively: a poisoned
    /// id with no store body is dropped here, and any id whose ancestry
    /// ran through it could only have entered `known` via the same
    /// corruption, so it too fails the store check.
    pub fn audit(&mut self, store: &BlockStore) -> u64 {
        let mut repaired = 0u64;
        let genesis = self.genesis;
        let before = self.known.len();
        self.known.retain(|id| *id == genesis || store.contains(*id));
        repaired += (before - self.known.len()) as u64;
        let known = &self.known;
        let before = self.inflight.len();
        self.inflight.retain(|id, _| !known.contains(id));
        repaired += (before - self.inflight.len()) as u64;
        repaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tobsvd_crypto::Keypair;
    use tobsvd_types::{InstanceId, Payload, Transaction, ValidatorId, View};

    fn msg_with_log(_store: &BlockStore, sender: u32, instance: u64, log: Log) -> SignedMessage {
        let v = ValidatorId::new(sender);
        let kp = Keypair::from_seed(v.key_seed());
        SignedMessage::sign(&kp, v, Payload::Log { instance: InstanceId(instance), log })
    }

    fn chain(store: &BlockStore, blocks: u64) -> Log {
        let mut log = Log::genesis(store);
        for i in 0..blocks {
            log = log.extend(
                store,
                ValidatorId::new(0),
                View::new(i + 1),
                vec![Transaction::synthetic(i, 16)],
            );
        }
        log
    }

    #[test]
    fn genesis_is_known_and_single_extensions_resolve() {
        let store = BlockStore::new();
        let mut sync = SyncState::new(&store);
        let l1 = chain(&store, 1);
        assert_eq!(sync.resolve(&l1, &store), Resolution::Resolved);
        assert!(sync.knows(l1.tip()));
        // The next extension now resolves too (its base is l1's tip).
        let l2 = l1.extend_empty(&store, ValidatorId::new(1), View::new(2));
        assert_eq!(sync.resolve(&l2, &store), Resolution::Resolved);
    }

    #[test]
    fn gap_below_window_reports_missing_base() {
        let store = BlockStore::new();
        let mut sync = SyncState::new(&store);
        let l3 = chain(&store, 3);
        let base = store.ancestor_at(l3.tip(), 3 - wire::INLINE_WINDOW).unwrap();
        assert_eq!(sync.resolve(&l3, &store), Resolution::Missing(base));
        // Not even the window was absorbed.
        assert!(!sync.knows(l3.tip()));
    }

    #[test]
    fn response_fills_gap_and_releases_parked_messages() {
        let store = BlockStore::new();
        let mut sync = SyncState::new(&store);
        let l3 = chain(&store, 3);
        let Resolution::Missing(base) = sync.resolve(&l3, &store) else {
            panic!("expected a gap");
        };
        let m = msg_with_log(&store, 1, 7, l3);
        assert!(sync.park(base, m, Time::new(5)), "first park triggers a fetch");
        sync.note_requested(base, Time::new(5));
        assert!(!sync.park(base, m, Time::new(6)), "duplicate park does not re-fetch");
        assert_eq!(sync.pending_len(), 1, "parking dedups by message id");

        // A response anchored at genesis covering heights 1..=2.
        let newly = sync.accept_response(base, 1, &store);
        assert_eq!(newly, 2);
        let released = sync.take_resolved();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].id(), m.id());
        assert_eq!(sync.pending_len(), 0);
        // Replay now resolves.
        assert_eq!(sync.resolve(&l3, &store), Resolution::Resolved);
    }

    #[test]
    fn misaligned_response_is_ignored() {
        let store = BlockStore::new();
        let mut sync = SyncState::new(&store);
        let l3 = chain(&store, 3);
        // Anchor at height 1 is unknown: the response must not be
        // absorbed (would break the chain-known invariant).
        assert_eq!(sync.accept_response(l3.tip(), 2, &store), 0);
        assert!(!sync.knows(l3.tip()));
    }

    #[test]
    fn pending_set_is_capped_with_fifo_eviction() {
        let store = BlockStore::new();
        let mut sync = SyncState::new(&store);
        // A hostile flood: many distinct 3-block forks, none resolvable.
        let genesis = Log::genesis(&store);
        let mut first_missing = None;
        for i in 0..(SyncState::PENDING_CAP as u64 + 40) {
            let fork = genesis
                .extend(&store, ValidatorId::new(2), View::new(1), vec![Transaction::synthetic(i, 8)])
                .extend_empty(&store, ValidatorId::new(2), View::new(2))
                .extend_empty(&store, ValidatorId::new(2), View::new(3));
            let Resolution::Missing(base) = sync.resolve(&fork, &store) else {
                panic!("fork must not resolve");
            };
            let m = msg_with_log(&store, 2, i, fork);
            if sync.park(base, m, Time::new(i)) {
                sync.note_requested(base, Time::new(i));
            }
            first_missing.get_or_insert(base);
        }
        assert_eq!(sync.pending_len(), SyncState::PENDING_CAP);
        assert_eq!(sync.evicted(), 40);
        // The evicted entries' fetches were cancelled.
        assert!(
            !sync.stale_requests(Time::new(10_000), 1).contains(&first_missing.unwrap()),
            "evicted message's fetch must be cancelled"
        );
    }

    /// Regression (issue 6): filling the pending set to exactly the cap
    /// evicts nothing, and one message past the cap evicts exactly the
    /// oldest entry — gracefully, never through a panic path.
    #[test]
    fn cap_boundary_exact_then_one_past() {
        let store = BlockStore::new();
        let mut sync = SyncState::new(&store);
        let genesis = Log::genesis(&store);
        let park_fork = |sync: &mut SyncState, i: u64| {
            let fork = genesis
                .extend(&store, ValidatorId::new(2), View::new(1), vec![Transaction::synthetic(i, 8)])
                .extend_empty(&store, ValidatorId::new(2), View::new(2))
                .extend_empty(&store, ValidatorId::new(2), View::new(3));
            let Resolution::Missing(base) = sync.resolve(&fork, &store) else {
                panic!("fork must not resolve");
            };
            let m = msg_with_log(&store, 2, i, fork);
            sync.park(base, m, Time::new(i));
            (m.id(), base)
        };

        let mut first = None;
        for i in 0..SyncState::PENDING_CAP as u64 {
            let entry = park_fork(&mut sync, i);
            first.get_or_insert(entry);
        }
        // Exactly at the cap: everything retained.
        assert_eq!(sync.pending_len(), SyncState::PENDING_CAP);
        assert_eq!(sync.evicted(), 0);

        // One past the cap: the oldest entry (and only it) goes.
        park_fork(&mut sync, SyncState::PENDING_CAP as u64);
        assert_eq!(sync.pending_len(), SyncState::PENDING_CAP);
        assert_eq!(sync.evicted(), 1);
        let (first_id, first_missing) = first.unwrap();
        assert!(
            !sync.take_resolved().iter().any(|m| m.id() == first_id),
            "evicted message must not be replayable"
        );
        assert!(
            sync.should_fetch(first_missing),
            "evicted message's orphaned fetch must be cancelled"
        );
    }

    /// Regression (issue 6): a retry window near `u64::MAX` must mean
    /// "never stale", not a wrapping add that fires the retry instantly.
    #[test]
    fn huge_retry_window_never_goes_stale() {
        let store = BlockStore::new();
        let mut sync = SyncState::new(&store);
        let l3 = chain(&store, 3);
        let Resolution::Missing(base) = sync.resolve(&l3, &store) else {
            panic!()
        };
        sync.park(base, msg_with_log(&store, 1, 1, l3), Time::new(u64::MAX - 4));
        sync.note_requested(base, Time::new(u64::MAX - 4));
        assert!(
            sync.stale_requests(Time::new(u64::MAX), u64::MAX).is_empty(),
            "saturating deadline must not wrap into the past"
        );
        // A finite window elapsing at the edge of time still retries.
        assert_eq!(sync.stale_requests(Time::new(u64::MAX), 4), vec![base]);
    }

    #[test]
    fn stale_requests_retry_then_back_off_until_window_passes() {
        let store = BlockStore::new();
        let mut sync = SyncState::new(&store);
        let l3 = chain(&store, 3);
        let Resolution::Missing(base) = sync.resolve(&l3, &store) else {
            panic!()
        };
        sync.park(base, msg_with_log(&store, 1, 1, l3), Time::new(0));
        sync.note_requested(base, Time::new(0));
        assert!(sync.stale_requests(Time::new(1), 8).is_empty(), "not stale yet");
        assert_eq!(sync.stale_requests(Time::new(8), 8), vec![base]);
        assert!(sync.stale_requests(Time::new(9), 8).is_empty(), "stamp was refreshed");
        assert_eq!(sync.stale_requests(Time::new(16), 8), vec![base]);
    }

    #[test]
    fn fetch_start_is_one_above_nearest_known_ancestor() {
        let store = BlockStore::new();
        let mut sync = SyncState::new(&store);
        let l2 = chain(&store, 2);
        assert_eq!(sync.resolve(&l2.prefix(2, &store).unwrap(), &store), Resolution::Resolved);
        let l5 = {
            let mut log = l2;
            for i in 2..5u64 {
                log = log.extend_empty(&store, ValidatorId::new(0), View::new(i + 1));
            }
            log
        };
        let Resolution::Missing(base) = sync.resolve(&l5, &store) else {
            panic!()
        };
        // Knows height 1 (and genesis); missing 2..=3 below the window.
        assert_eq!(sync.fetch_start(base, &store), 2);
    }
}
