//! Protocol configuration.

use tobsvd_types::Delta;

/// Static configuration of a TOB-SVD validator.
#[derive(Clone, Debug)]
pub struct TobConfig {
    /// Number of validators `n`.
    pub n: usize,
    /// The network delay bound Δ.
    pub delta: Delta,
    /// Maximum transactions batched into one proposed block.
    pub max_txs_per_block: usize,
    /// Enables the §2 recovery protocol: on waking, broadcast a
    /// `RECOVERY` request and serve peers' requests from a bounded
    /// archive of recent messages. Required for liveness when the
    /// network does not buffer for asleep validators.
    pub recovery: bool,
    /// Cap on messages re-sent per recovery request served.
    pub recovery_response_cap: usize,
    /// Enables the aggregation plane: vote relaying is deferred to the
    /// next phase boundary and quorate vote groups cross the wire as one
    /// `Payload::Certificate` instead of per-receiver vote forwards,
    /// collapsing per-view traffic from O(n³) to O(n²) deliveries.
    /// Disable to reproduce the per-vote baseline (Table 1's cubic fit).
    pub certificates: bool,
    /// Snapshot cadence of the durable storage plane: a checkpoint is
    /// written every time the decided log has grown by this many blocks
    /// since the last one. Only consulted when a durable backend is
    /// attached.
    pub snapshot_every: u64,
}

impl TobConfig {
    /// Default configuration for `n` validators.
    pub fn new(n: usize) -> Self {
        TobConfig {
            n,
            delta: Delta::default(),
            max_txs_per_block: 256,
            recovery: false,
            recovery_response_cap: 1024,
            certificates: true,
            snapshot_every: 8,
        }
    }

    /// Sets Δ.
    pub fn with_delta(mut self, delta: Delta) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the block size cap.
    pub fn with_max_txs(mut self, max: usize) -> Self {
        self.max_txs_per_block = max;
        self
    }

    /// Enables the §2 recovery protocol.
    pub fn with_recovery(mut self, recovery: bool) -> Self {
        self.recovery = recovery;
        self
    }

    /// Enables or disables the quorum-certificate aggregation plane.
    pub fn with_certificates(mut self, certificates: bool) -> Self {
        self.certificates = certificates;
        self
    }

    /// Sets the durable-storage snapshot cadence (decided blocks
    /// between checkpoints); 0 disables snapshots (WAL only).
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = TobConfig::new(10).with_delta(Delta::new(4)).with_max_txs(5);
        assert_eq!(cfg.n, 10);
        assert_eq!(cfg.delta.ticks(), 4);
        assert_eq!(cfg.max_txs_per_block, 5);
    }
}
