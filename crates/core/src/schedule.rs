//! The view/GA timing algebra of Figure 3.
//!
//! Views span 4Δ with `t_v = 4Δ·v`. `GA_v` runs over
//! `[t_v + Δ, t_v + 6Δ]`, i.e. it finishes only during view `v+1`, and
//! `GA_v` overlaps `GA_{v+1}` during `[t_{v+1} + Δ, t_{v+1} + 2Δ]`.
//! The TOB phase at each boundary consumes a GA output:
//!
//! * Propose at `t_v` = grade-0 output time of `GA_{v−1}`;
//! * Vote at `t_v + Δ` = grade-1 output time of `GA_{v−1}` = input time
//!   of `GA_v`;
//! * Decide at `t_v + 2Δ` = grade-2 output time of `GA_{v−1}`.
//!
//! [`ViewSchedule::render_timeline`] reproduces the Figure 3 diagram as
//! ASCII art; the `fig3_timeline` bench prints it and asserts every
//! alignment.

use tobsvd_types::{Delta, Time, View};

/// Phase within a view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewPhase {
    /// `t_v`: proposal phase.
    Propose,
    /// `t_v + Δ`: voting phase (input of `GA_v`).
    Vote,
    /// `t_v + 2Δ`: decision phase.
    Decide,
    /// `t_v + 3Δ`: only the ongoing `GA_v` bookkeeping.
    Idle,
}

/// Timing algebra for TOB-SVD views and their GA instances.
#[derive(Clone, Copy, Debug)]
pub struct ViewSchedule {
    delta: Delta,
}

impl ViewSchedule {
    /// Creates the schedule for a given Δ.
    pub fn new(delta: Delta) -> Self {
        ViewSchedule { delta }
    }

    /// The Δ this schedule is built on.
    pub fn delta(&self) -> Delta {
        self.delta
    }

    /// `t_v = 4Δ·v`.
    pub fn view_start(&self, v: View) -> Time {
        v.start_time(self.delta)
    }

    /// Proposal time `t_v`.
    pub fn propose_time(&self, v: View) -> Time {
        self.view_start(v)
    }

    /// Voting time `t_v + Δ`.
    pub fn vote_time(&self, v: View) -> Time {
        self.view_start(v) + self.delta
    }

    /// Decision time `t_v + 2Δ`.
    pub fn decide_time(&self, v: View) -> Time {
        self.view_start(v) + self.delta * 2
    }

    /// Input-phase time of `GA_v`: `t_v + Δ`.
    pub fn ga_start(&self, v: View) -> Time {
        self.vote_time(v)
    }

    /// End of `GA_v` (its grade-2 output phase): `t_v + 6Δ`.
    pub fn ga_end(&self, v: View) -> Time {
        self.view_start(v) + self.delta * 6
    }

    /// Output-phase time for `grade` of `GA_v` (3Δ, 4Δ, 5Δ after its
    /// start).
    ///
    /// # Panics
    ///
    /// Panics if `grade ≥ 3`.
    pub fn ga_output_time(&self, v: View, grade: u8) -> Time {
        assert!(grade < 3, "GA_v has grades 0..3");
        self.ga_start(v) + self.delta * (3 + u64::from(grade))
    }

    /// The overlap window of `GA_v` and `GA_{v+1}`:
    /// `[t_{v+1} + Δ, t_{v+1} + 2Δ]`.
    pub fn overlap(&self, v: View) -> (Time, Time) {
        (self.ga_start(v.next()), self.ga_end(v))
    }

    /// The phase at time `t`, with its view.
    pub fn phase_at(&self, t: Time) -> (View, ViewPhase) {
        let v = View::of_time(t, self.delta);
        let offset = (t - self.view_start(v)) / self.delta.ticks();
        let phase = match offset {
            0 => ViewPhase::Propose,
            1 => ViewPhase::Vote,
            2 => ViewPhase::Decide,
            _ => ViewPhase::Idle,
        };
        (v, phase)
    }

    /// Renders the Figure 3 timeline for views `center−1 … center+1`.
    pub fn render_timeline(&self, center: View) -> String {
        let vm1 = center.prev().unwrap_or(View::ZERO);
        let views = [vm1, vm1.next(), vm1.next().next()];
        // One column per Δ across the three views.
        let cols = 12usize;
        let colw = 7usize;
        let mut out = String::new();

        // Header: Δ ruler.
        out.push_str("        ");
        for _ in 0..cols {
            out.push_str(&format!("{:<width$}", "|--Δ--", width = colw));
        }
        out.push('\n');

        // View row.
        out.push_str("views:  ");
        for v in views {
            out.push_str(&format!("{:<width$}", format!("[{v}"), width = colw * 4));
        }
        out.push('\n');

        // Phase row.
        out.push_str("phases: ");
        for _ in views {
            for name in ["Prop", "Vote", "Decide", "·"] {
                out.push_str(&format!("{:<width$}", name, width = colw));
            }
        }
        out.push('\n');

        // GA rows: GA_{center-1} and GA_{center}, drawn relative to the
        // first rendered view.
        let origin = self.view_start(vm1);
        for ga_view in [vm1, vm1.next()] {
            let start_col =
                ((self.ga_start(ga_view) - origin) / self.delta.ticks()) as usize;
            let mut row = format!("GA_{:<4} ", ga_view.number());
            for c in 0..cols {
                let label = if c == start_col {
                    "Input"
                } else if c == start_col + 3 {
                    "Out0"
                } else if c == start_col + 4 {
                    "Out1"
                } else if c == start_col + 5 {
                    "Out2"
                } else if c > start_col && c < start_col + 3 {
                    "·····"
                } else {
                    ""
                };
                row.push_str(&format!("{:<width$}", label, width = colw));
            }
            out.push_str(row.trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> ViewSchedule {
        ViewSchedule::new(Delta::new(8))
    }

    #[test]
    fn phase_times() {
        let s = sched();
        let v = View::new(2);
        assert_eq!(s.view_start(v), Time::new(64));
        assert_eq!(s.propose_time(v), Time::new(64));
        assert_eq!(s.vote_time(v), Time::new(72));
        assert_eq!(s.decide_time(v), Time::new(80));
    }

    #[test]
    fn figure3_alignments() {
        // The arrows of Figure 3: outputs of GA_{v-1} land exactly on the
        // phases of view v.
        let s = sched();
        for v in (1..6).map(View::new) {
            let prev = v.prev().unwrap();
            assert_eq!(s.ga_output_time(prev, 0), s.propose_time(v), "candidate");
            assert_eq!(s.ga_output_time(prev, 1), s.vote_time(v), "lock");
            assert_eq!(s.ga_output_time(prev, 2), s.decide_time(v), "decision");
            // Vote time of view v == input phase of GA_v.
            assert_eq!(s.ga_start(v), s.vote_time(v));
            // GA_v ends during view v+1.
            assert_eq!(s.ga_end(v), s.decide_time(v.next()));
        }
    }

    #[test]
    fn overlap_window_is_one_delta() {
        let s = sched();
        let v = View::new(3);
        let (from, to) = s.overlap(v);
        assert_eq!(to - from, s.delta().ticks());
        assert_eq!(from, s.vote_time(v.next()));
        assert_eq!(to, s.decide_time(v.next()));
    }

    #[test]
    fn phase_classification() {
        let s = sched();
        let v = View::new(1);
        assert_eq!(s.phase_at(s.propose_time(v)), (v, ViewPhase::Propose));
        assert_eq!(s.phase_at(s.vote_time(v)), (v, ViewPhase::Vote));
        assert_eq!(s.phase_at(s.decide_time(v)), (v, ViewPhase::Decide));
        assert_eq!(s.phase_at(s.view_start(v) + Delta::new(8) * 3), (v, ViewPhase::Idle));
    }

    #[test]
    fn timeline_renders() {
        let s = sched();
        let art = s.render_timeline(View::new(5));
        assert!(art.contains("GA_4"));
        assert!(art.contains("GA_5"));
        assert!(art.contains("Decide"));
        assert!(art.lines().count() >= 5);
    }
}
