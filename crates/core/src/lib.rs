//! TOB-SVD — the Total-Order Broadcast protocol of Figure 4.
//!
//! TOB-SVD proceeds in views of 4Δ. Each view `v` runs one
//! [`tobsvd_ga::Ga3`] instance `GA_v` over `[t_v + Δ, t_v + 6Δ]`,
//! overlapping the next view's instance for one Δ. The three view phases
//! each consume one grade of the *previous* view's GA:
//!
//! ```text
//! Propose (t_v):      grade-0 output of GA_{v−1} = the candidate;
//!                     every awake validator proposes an extension with
//!                     its VRF value.
//! Vote (t_v + Δ):     grade-1 output of GA_{v−1} = the lock; input to
//!                     GA_v the highest-VRF non-equivocating proposal
//!                     extending the lock, or the lock itself.
//! Decide (t_v + 2Δ):  grade-2 output of GA_{v−1} is decided.
//! (t_v + 3Δ):         nothing beyond the ongoing GA_v bookkeeping.
//! ```
//!
//! One `LOG` broadcast per view — the *single vote* of the protocol's
//! name — suffices to decide a block in the best case; the protocol
//! works in the (5Δ, 2Δ, ½)-sleepy model.
//!
//! [`Validator`] is the sans-io state machine (also a simulator
//! [`tobsvd_sim::Node`]); [`TobSimulationBuilder`] assembles whole-network
//! simulations; [`ViewSchedule`] carries the Figure 3 timing algebra;
//! [`leader`] has the VRF election helpers used by the Lemma 2
//! experiments; [`sync`] implements the content-addressed delta-sync
//! plane (block knowledge tracking, the bounded pending set, and the
//! `BlockRequest`/`BlockResponse` fetch subprotocol that also carries
//! the §2 recovery path's block content).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod leader;
mod protocol;
mod schedule;
pub mod sync;
mod validator;

pub use config::TobConfig;
pub use leader::ProposalTracker;
pub use protocol::{CryptoStats, LatencyStats, SyncStats, TobReport, TobSimulationBuilder, TxWorkload};
pub use schedule::ViewSchedule;
pub use sync::{Resolution, SyncState};
pub use validator::Validator;
