//! Length-prefixed framing over TCP streams.
//!
//! Frame layout: `u32` big-endian payload length, then the payload (a
//! [`tobsvd_types::wire`]-encoded message). Frames above
//! [`MAX_FRAME_BYTES`] are rejected on both sides.

use std::io::{self, Read, Write};

use bytes::Bytes;

/// Upper bound on frame payload size (16 MiB).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Framing errors.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure (including clean EOF between frames).
    Io(io::Error),
    /// Peer announced a frame longer than [`MAX_FRAME_BYTES`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame.
///
/// # Errors
///
/// [`FrameError::TooLarge`] if `payload` exceeds the limit, otherwise
/// any underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame.
///
/// # Errors
///
/// I/O errors (including `UnexpectedEof` on a closed connection) and
/// [`FrameError::TooLarge`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Bytes, FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Bytes::from(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(&read_frame(&mut cur).unwrap()[..], b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().len(), 0);
        assert_eq!(read_frame(&mut cur).unwrap().len(), 1000);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversize_rejected_on_write() {
        let mut buf = Vec::new();
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(matches!(write_frame(&mut buf, &huge), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn oversize_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }
}
