//! Client-side connection to a node's ingest plane.
//!
//! [`ClientConn`] wraps one nonblocking socket speaking the client wire
//! protocol (`tobsvd_types::client`): length-prefixed `Submit` frames
//! out, `SubmitAck` frames back. It never blocks — submissions queue in
//! an internal out-buffer and [`ClientConn::pump`] moves bytes in both
//! directions as far as the socket allows — so one driver thread can
//! multiplex hundreds of connections, which is exactly how the ingest
//! bench models large client populations without a thread per user.

use std::io::{Read, Write};
use std::net::SocketAddr;

use tobsvd_types::client::{
    decode_client_frame, encode_client_frame, submit_transaction, AckStatus, ClientFrame,
    MAX_SUBMIT_FRAME_BYTES,
};
use tobsvd_types::TxId;

/// One received acknowledgment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ack {
    /// Content-addressed id of the acknowledged transaction.
    pub tx: TxId,
    /// The node's admission verdict.
    pub status: AckStatus,
}

/// A nonblocking client connection to a node's listener.
#[derive(Debug)]
pub struct ClientConn {
    stream: std::net::TcpStream,
    client: u64,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    out_pos: usize,
    closed: bool,
}

impl ClientConn {
    /// Connects to `addr` as logical client `client` (the identity the
    /// node's per-client rate caps key on) and switches the socket to
    /// nonblocking mode.
    ///
    /// # Errors
    ///
    /// Propagates connection/socket errors.
    pub fn connect(addr: SocketAddr, client: u64) -> std::io::Result<ClientConn> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(ClientConn {
            stream,
            client,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            closed: false,
        })
    }

    /// The logical client identity.
    pub fn client(&self) -> u64 {
        self.client
    }

    /// Whether the node closed the connection (slow-client shed or
    /// protocol error).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Bytes queued but not yet accepted by the socket.
    pub fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    /// Queues one submission and returns the content-addressed id its
    /// ack will carry. Call [`ClientConn::pump`] to move bytes.
    pub fn submit(&mut self, fee: u64, payload: Vec<u8>) -> TxId {
        let id = submit_transaction(payload.clone()).id();
        let frame =
            encode_client_frame(&ClientFrame::Submit { client: self.client, fee, payload });
        let len = frame.len() as u32;
        self.outbuf.extend_from_slice(&len.to_be_bytes());
        self.outbuf.extend_from_slice(&frame);
        id
    }

    /// Writes queued submissions and reads available acks, without
    /// blocking. Returns the acks received this call.
    ///
    /// # Errors
    ///
    /// Propagates unexpected socket errors (`WouldBlock` is not an
    /// error; EOF marks the connection closed and returns normally).
    pub fn pump(&mut self) -> std::io::Result<Vec<Ack>> {
        self.pump_writes()?;
        self.pump_reads()
    }

    fn pump_writes(&mut self) -> std::io::Result<()> {
        while self.out_pos < self.outbuf.len() {
            let Some(pending) = self.outbuf.get(self.out_pos..) else {
                break;
            };
            match self.stream.write(pending) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::BrokenPipe
                        || e.kind() == std::io::ErrorKind::ConnectionReset =>
                {
                    self.closed = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.outbuf.len() && self.out_pos > 0 {
            self.outbuf.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    fn pump_reads(&mut self) -> std::io::Result<Vec<Ack>> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    if let Some(data) = chunk.get(..n) {
                        self.inbuf.extend_from_slice(data);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::BrokenPipe
                        || e.kind() == std::io::ErrorKind::ConnectionReset =>
                {
                    self.closed = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        let mut acks = Vec::new();
        while let Some(prefix) = self.inbuf.get(..4) {
            let mut len_bytes = [0u8; 4];
            len_bytes.copy_from_slice(prefix);
            let len = u32::from_be_bytes(len_bytes) as usize;
            if len == 0 || len > MAX_SUBMIT_FRAME_BYTES {
                // Garbled stream: nothing sane can follow.
                self.closed = true;
                break;
            }
            let Some(payload) = self.inbuf.get(4..4 + len) else { break };
            let frame = bytes::Bytes::copy_from_slice(payload);
            self.inbuf.drain(..4 + len);
            if let Ok(ClientFrame::SubmitAck { tx, status }) = decode_client_frame(frame) {
                acks.push(Ack { tx, status });
            }
        }
        Ok(acks)
    }
}
