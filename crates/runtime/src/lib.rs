//! Real multi-node TOB-SVD deployment over localhost TCP.
//!
//! The same sans-io [`tobsvd_core::Validator`] that runs under the
//! discrete-event simulator runs here against a real network: per node,
//! one protocol thread plus one readiness-polled I/O thread (the
//! [`IngestStats`]-instrumented event loop in `ingest`) that serves
//! every inbound socket — peers *and* thousands of client sessions —
//! without a thread per connection. The mesh speaks length-prefixed
//! frames encoded by [`tobsvd_types::wire`] (content-addressed delta
//! sync: hash announcements plus `BlockRequest`/`BlockResponse`
//! fetches, so wire bytes per message are O(1) in chain length);
//! clients speak the separate `tobsvd_types::client` protocol on the
//! same listener (classified by the first payload byte) through
//! [`client::ClientConn`]. A shared-epoch tick clock stands in for the
//! model's synchronized clocks, and a bounded
//! [`tobsvd_sim::AdmissionPolicy`] mempool acknowledges every
//! submission with explicit backpressure instead of unbounded queueing.
//!
//! This crate is the "would a downstream user actually deploy this?"
//! proof: no simulator types cross the boundary — only wire bytes.
//!
//! ```no_run
//! use tobsvd_runtime::{ClusterConfig, LocalCluster};
//!
//! let report = LocalCluster::run(ClusterConfig::new(4).views(6)).expect("cluster runs");
//! report.assert_agreement();
//! println!("every node decided {} blocks", report.min_decided_len() - 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod clock;
mod cluster;
mod codec;
mod ingest;
mod node;

pub use client::{Ack, ClientConn};
pub use clock::TickClock;
pub use cluster::{
    ClusterConfig, ClusterError, ClusterReport, LocalCluster, NodeOutcome, RunningCluster,
};
pub use codec::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use ingest::{IngestStats, CLIENT_OUTBUF_CAP};
pub use node::{DecidedEvent, NodeConfig, NodeHandle, WireStats};
