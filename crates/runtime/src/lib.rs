//! Real multi-node TOB-SVD deployment over localhost TCP.
//!
//! The same sans-io [`tobsvd_core::Validator`] that runs under the
//! discrete-event simulator runs here against a real network: one OS
//! thread per node, a full TCP mesh with length-prefixed frames encoded
//! by [`tobsvd_types::wire`] (content-addressed delta sync: hash
//! announcements plus `BlockRequest`/`BlockResponse` fetches, so wire
//! bytes per message are O(1) in chain length), and a shared-epoch tick
//! clock standing in for the model's synchronized clocks.
//!
//! This crate is the "would a downstream user actually deploy this?"
//! proof: no simulator types cross the boundary — only wire bytes.
//!
//! ```no_run
//! use tobsvd_runtime::{ClusterConfig, LocalCluster};
//!
//! let report = LocalCluster::run(ClusterConfig::new(4).views(6)).expect("cluster runs");
//! report.assert_agreement();
//! println!("every node decided {} blocks", report.min_decided_len() - 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod cluster;
mod codec;
mod node;

pub use clock::TickClock;
pub use cluster::{ClusterConfig, ClusterError, ClusterReport, LocalCluster, NodeOutcome};
pub use codec::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use node::{NodeConfig, NodeHandle, WireStats};
